//! Umbrella crate for the ScalAna reproduction workspace.
//!
//! Hosts the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`). Re-exports the member crates under one roof so
//! examples can use a single dependency.

pub use scalana_apps as apps;
pub use scalana_core as core;
pub use scalana_detect as detect;
pub use scalana_graph as graph;
pub use scalana_lang as lang;
pub use scalana_mpisim as mpisim;
pub use scalana_profile as profile;
