//! SST case study (paper §VI-D2, Fig. 14/15): the O(n) pending-request
//! scan behind the rank-sync stalls.
//!
//! ```sh
//! cargo run --release --example sst_case_study
//! ```

use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

fn main() {
    let broken = scalana_apps::sst::build(false);
    let fixed = scalana_apps::sst::build(true);
    let config = ScalAnaConfig::default();

    // The paper analyzes SST at 32 ranks.
    let analysis = analyze_app(&broken, &[4, 8, 16, 32], &config).expect("analysis");
    println!("{}", analysis.report.render());

    let expected = broken.expected_root_cause.as_deref().unwrap();
    assert!(
        analysis.report.found_at(expected),
        "SST root cause {expected} must be identified"
    );
    println!(
        "OK: root cause found at {expected} (paper: LOOP in \
              RequestGenCPU::handleEvent at mirandaCPU.cc:247).\n"
    );

    // Fig. 15: per-rank TOT_INS before and after the fix.
    let show_pmu = |name: &str, app: &scalana_apps::App| -> (f64, f64) {
        let psg = build_psg(&app.program, &PsgOptions::default());
        let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .run()
            .expect("runs");
        let ins: Vec<f64> = res.rank_pmu.iter().map(|p| p.tot_ins).collect();
        let max = ins.iter().copied().fold(f64::MIN, f64::max);
        let min = ins.iter().copied().fold(f64::MAX, f64::min);
        println!(
            "{name}: TOT_INS per rank min {min:.3e} max {max:.3e} (imbalance {:.2}x)",
            max / min
        );
        (ins.iter().sum::<f64>(), res.total_time())
    };
    let (ins_before, t_before) = show_pmu("before fix", &broken);
    let (ins_after, t_after) = show_pmu("after fix ", &fixed);

    println!(
        "\nTOT_INS reduction: {:.2}% (paper: 99.92%)",
        (1.0 - ins_after / ins_before) * 100.0
    );
    println!(
        "runtime at 32 ranks: {t_before:.4} s -> {t_after:.4} s \
         ({:+.1}%; paper reports +73.12% throughput)",
        (t_before / t_after - 1.0) * 100.0
    );
    assert!(t_after < t_before);
    assert!(
        ins_after < ins_before * 0.2,
        "order-of-magnitude TOT_INS drop"
    );
}
