//! Nekbone case study (paper §VI-D3, Fig. 16): the memory-bound dgemm
//! loop on heterogeneous cores behind the halo waitall.
//!
//! ```sh
//! cargo run --release --example nekbone_case_study
//! ```

use scalana_core::{analyze_app, speedup_curve, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

fn variance(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

fn main() {
    let broken = scalana_apps::nekbone::build(false);
    let fixed = scalana_apps::nekbone::build(true);
    let config = ScalAnaConfig::default();

    let analysis = analyze_app(&broken, &[4, 8, 16, 32, 64], &config).expect("analysis");
    println!("{}", analysis.report.render());

    let expected = broken.expected_root_cause.as_deref().unwrap();
    assert!(
        analysis.report.found_at(expected),
        "Nekbone root cause {expected} must be identified"
    );
    println!("OK: root cause found at {expected} (paper: LOOP in dgemm at blas.f:8941).\n");

    // Fig. 16: TOT_LST_INS equal across ranks, TOT_CYC divergent; the
    // fix slashes loads/stores and the cross-rank time variance.
    let pmu = |app: &scalana_apps::App| {
        let psg = build_psg(&app.program, &PsgOptions::default());
        let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .run()
            .expect("runs");
        let lst: f64 = res.rank_pmu.iter().map(|p| p.lst_ins).sum();
        let var = variance(&res.rank_elapsed);
        (lst, var, res.total_time())
    };
    let (lst_b, var_b, t_b) = pmu(&broken);
    let (lst_f, var_f, t_f) = pmu(&fixed);
    println!(
        "TOT_LST_INS reduction: {:.2}% (paper: 89.78%)",
        (1.0 - lst_f / lst_b) * 100.0
    );
    println!(
        "cross-rank time variance reduction: {:.2}% (paper: 94.03%)",
        (1.0 - var_f / var_b.max(1e-30)) * 100.0
    );
    println!("runtime at 32 ranks: {t_b:.4} s -> {t_f:.4} s");

    let scales = [1, 2, 4, 8, 16, 32, 64];
    let cfg = ScalAnaConfig {
        machine: broken.machine.clone(),
        ..Default::default()
    };
    let before = speedup_curve(&broken.program, &scales, &cfg).expect("before");
    let after = speedup_curve(&fixed.program, &scales, &cfg).expect("after");
    let (p, sb) = before.last().unwrap();
    let (_, sa) = after.last().unwrap();
    println!(
        "speedup at {p} ranks (1-rank baseline): {sb:.2}x -> {sa:.2}x \
         (paper: 31.95x -> 51.96x at 64)."
    );
    assert!(lst_f < lst_b * 0.2);
    assert!(sa > sb);
}
