//! Quickstart: write a MiniMPI program, analyze it with ScalAna, read
//! the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program plants a classic scaling bug: every rank computes a
//! shrinking share of work, but rank 0 additionally executes a serial
//! section that does not shrink (Amdahl). ScalAna should flag the
//! serial loop as the root cause behind the growing barrier wait.

use scalana_core::{analyze, viewer, ScalAnaConfig};
use scalana_lang::parse_program;

const SOURCE: &str = r#"
// A deliberately non-scalable program.
param WORK = 6_000_000;

fn main() {
    for it in 0 .. 10 {
        // Perfectly parallel part: shrinks with the process count.
        comp(cycles = WORK / nprocs, ins = WORK / nprocs,
             lst = WORK / (nprocs * 4), miss = WORK / (nprocs * 400));
        // Serial part on rank 0 only: does NOT shrink. The Amdahl bug.
        if rank == 0 {
            for s in 0 .. 4 {                       // serial.mmpi:14
                comp(cycles = WORK / 8, ins = WORK / 8, lst = WORK / 32);
            }
        }
        barrier();
    }
    allreduce(bytes = 8);
}
"#;

fn main() {
    let program = parse_program("serial.mmpi", SOURCE).expect("program parses");

    // Analyze across four job scales; the PSG is built once, the runs
    // execute in the deterministic MPI simulator with the ScalAna
    // profiler attached, and detection compares vertices across scales.
    let scales = [4, 8, 16, 32];
    let analysis = analyze(&program, &scales, &ScalAnaConfig::default()).expect("analysis runs");

    println!("PSG: {}", analysis.psg.stats);
    for run in &analysis.runs {
        println!(
            "run @ {:>3} ranks: {:.3} s virtual, {} profile bytes, {} samples",
            run.nprocs, run.total_time, run.storage_bytes, run.sample_count
        );
    }
    println!();
    println!(
        "{}",
        viewer::render_with_snippets(&program, &analysis.report, 3)
    );

    // The serial loop lives on line 14 of the embedded source.
    let found = analysis
        .report
        .root_causes
        .iter()
        .any(|c| c.kind == "Loop" && c.location.starts_with("serial.mmpi"));
    assert!(found, "expected the serial loop to be reported");
    println!("OK: the serial Amdahl loop was identified as a root cause.");
}
