//! Zeus-MP case study (paper §VI-D1, Fig. 12): diagnose the scaling
//! loss, apply the fix, measure the improvement.
//!
//! ```sh
//! cargo run --release --example zeusmp_case_study
//! ```

use scalana_core::{analyze_app, speedup_curve, ScalAnaConfig};

fn main() {
    let broken = scalana_apps::zeusmp::build(false);
    let fixed = scalana_apps::zeusmp::build(true);
    let config = ScalAnaConfig::default();

    // Diagnose on 4..128 ranks, like the paper's Gorgon runs.
    let scales = [4, 8, 16, 32, 64, 128];
    let analysis = analyze_app(&broken, &scales, &config).expect("analysis");

    println!("{}", analysis.report.render());

    let expected = broken.expected_root_cause.as_deref().unwrap();
    assert!(
        analysis.report.found_at(expected),
        "Zeus-MP root cause {expected} must be identified"
    );
    println!("OK: root cause found at {expected} (paper: LOOP at bval3d.F:155).\n");

    // Fix applied: hybrid MPI+OpenMP boundary loop + tiled hsmoc loops.
    let cfg = ScalAnaConfig {
        machine: broken.machine.clone(),
        ..Default::default()
    };
    let before = speedup_curve(&broken.program, &scales, &cfg).expect("before");
    let after = speedup_curve(&fixed.program, &scales, &cfg).expect("after");

    println!("speedup (baseline = 4 ranks):");
    println!("  {:>6} {:>10} {:>10}", "ranks", "before", "after");
    for ((p, sb), (_, sa)) in before.iter().zip(&after) {
        println!("  {p:>6} {sb:>9.2}x {sa:>9.2}x");
    }
    let (p, sb) = before.last().unwrap();
    let (_, sa) = after.last().unwrap();
    let improvement = (sa - sb) / sb * 100.0;
    println!(
        "\nat {p} ranks the fix improves speedup from {sb:.2}x to {sa:.2}x \
         ({improvement:+.1}%; paper reports +9.55% on Gorgon at 128)."
    );
    assert!(sa > sb, "fix must improve scaling");
}
