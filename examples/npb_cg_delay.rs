//! The paper's motivating example (Fig. 2): NPB-CG with a delay
//! injected into process 4.
//!
//! ```sh
//! cargo run --release --example npb_cg_delay
//! ```
//!
//! The injected delay makes rank 4 late into CG's transpose-exchange
//! chain; the lateness propagates through the sendrecv partners and
//! manifests in everyone's allreduce. Backtracking walks the dependence
//! edges across ranks back to the planted delay loop at `cg.f:441`.

use scalana_apps::{cg, CgOptions};
use scalana_core::{analyze_app, ScalAnaConfig};

fn main() {
    let delayed = cg::build(&CgOptions {
        na: 60_000,
        iterations: 5,
        delay_rank: Some(4),
    });
    let clean = cg::build(&CgOptions {
        na: 60_000,
        iterations: 5,
        delay_rank: None,
    });

    let scales = [8, 16, 32];
    let config = ScalAnaConfig::default();

    let clean_analysis = analyze_app(&clean, &scales, &config).expect("clean run");
    let delayed_analysis = analyze_app(&delayed, &scales, &config).expect("delayed run");

    println!("== clean CG ==");
    for run in &clean_analysis.runs {
        println!("  {:>3} ranks: {:.4} s", run.nprocs, run.total_time);
    }
    println!("== CG with a delay injected into rank 4 ==");
    for run in &delayed_analysis.runs {
        println!("  {:>3} ranks: {:.4} s", run.nprocs, run.total_time);
    }

    println!("\n{}", delayed_analysis.report.render());

    // The report must point at the injected delay.
    let expected = delayed.expected_root_cause.as_deref().unwrap();
    assert!(
        delayed_analysis.report.found_at(expected),
        "expected the injected delay at {expected} to be identified"
    );
    // And the abnormal-vertex list must implicate rank 4.
    let rank4_abnormal = delayed_analysis
        .report
        .abnormal
        .iter()
        .any(|a| a.ranks.contains(&4));
    assert!(rank4_abnormal, "rank 4 should appear abnormal");
    println!("OK: injected delay at {expected} identified, rank 4 flagged abnormal.");
}
