//! End-to-end pipeline integration tests: source → PSG → simulation →
//! PPG → detection, across all workloads.

use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

/// Every registered app builds, simulates at multiple scales (including
/// a non-power-of-two), and produces a non-empty analysis.
#[test]
fn all_apps_run_through_the_full_pipeline() {
    for app in scalana_apps::all_apps() {
        let analysis = analyze_app(&app, &[4, 6, 16], &ScalAnaConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", app.name));
        assert_eq!(analysis.runs.len(), 3, "{}", app.name);
        assert!(
            analysis.runs.iter().all(|r| r.total_time > 0.0),
            "{} has empty runs",
            app.name
        );
        assert!(
            analysis.runs.windows(2).all(|w| w[0].nprocs < w[1].nprocs),
            "{} scales ascend",
            app.name
        );
        // Profile storage grows with rank count (more perf vectors).
        assert!(analysis.runs[2].storage_bytes >= analysis.runs[0].storage_bytes);
    }
}

/// The three case studies identify the paper's root-cause locations.
#[test]
fn case_studies_find_their_root_causes() {
    let cases = [
        (scalana_apps::zeusmp::build(false), vec![4, 8, 16, 32]),
        (scalana_apps::sst::build(false), vec![4, 8, 16, 32]),
        (scalana_apps::nekbone::build(false), vec![4, 8, 16, 32]),
    ];
    for (app, scales) in cases {
        let expected = app.expected_root_cause.clone().unwrap();
        let analysis = analyze_app(&app, &scales, &ScalAnaConfig::default()).unwrap();
        assert!(
            analysis.report.found_at(&expected),
            "{}: {expected} missing from report:\n{}",
            app.name,
            analysis.report.render()
        );
    }
}

/// The injected CG delay (Fig. 2) is found and attributed to rank 4.
#[test]
fn cg_injected_delay_is_diagnosed() {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 60_000,
        iterations: 5,
        delay_rank: Some(4),
    });
    let analysis = analyze_app(&app, &[8, 16, 32], &ScalAnaConfig::default()).unwrap();
    assert!(analysis.report.found_at("cg.f:441"));
    // The winning path must end on rank 4.
    let path = analysis
        .report
        .paths
        .iter()
        .find(|p| p.root_cause().location == "cg.f:441")
        .expect("a path reaches the injected delay");
    assert_eq!(path.root_cause().rank, 4);
    assert!(path.steps.iter().any(|s| s.via_comm), "path crosses ranks");
}

/// A clean (delay-free) CG produces no high-imbalance root cause at the
/// injection site — no false positive.
#[test]
fn clean_cg_has_no_injected_root_cause() {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 60_000,
        iterations: 5,
        delay_rank: None,
    });
    let analysis = analyze_app(&app, &[8, 16, 32], &ScalAnaConfig::default()).unwrap();
    assert!(!analysis.report.found_at("cg.f:441"));
    for cause in &analysis.report.root_causes {
        assert!(
            cause.time_imbalance < 2.0,
            "clean run should have no heavy imbalance: {cause:?}"
        );
    }
}

/// Whole-pipeline determinism: two identical analyses produce identical
/// reports.
#[test]
fn analysis_is_deterministic() {
    let app = scalana_apps::by_name("MG").unwrap();
    let a = analyze_app(&app, &[4, 8], &ScalAnaConfig::default()).unwrap();
    let b = analyze_app(&app, &[4, 8], &ScalAnaConfig::default()).unwrap();
    assert_eq!(a.report.render(), b.report.render());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.total_time, rb.total_time);
        assert_eq!(ra.storage_bytes, rb.storage_bytes);
    }
}

/// The simulator handles the full workload suite at 256 ranks (a scaled
/// version of the paper's 2,048-rank Tianhe-2 runs; CG alone is also
/// exercised at 1,024 below).
#[test]
fn apps_run_at_large_scale() {
    for name in ["CG", "EP", "IS"] {
        let app = scalana_apps::by_name(name).unwrap();
        let psg = build_psg(&app.program, &PsgOptions::default());
        let mut config = SimConfig::with_nprocs(256);
        config.machine = std::sync::Arc::new(app.machine.clone());
        let res = Simulation::new(&app.program, &psg, config)
            .run()
            .unwrap_or_else(|e| panic!("{name} failed at 256 ranks: {e}"));
        assert_eq!(res.rank_elapsed.len(), 256);
    }
}

/// CG completes at 1,024 ranks — the order of the paper's largest runs.
#[test]
fn cg_completes_at_1024_ranks() {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 150_000,
        iterations: 3,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(1024))
        .run()
        .unwrap();
    assert_eq!(res.nprocs, 1024);
    assert!(res.total_time() > 0.0);
}
