//! Integration tests of the tool-comparison machinery (Table I,
//! Fig. 10/11 claims) and baseline tool behaviour.

use scalana_graph::{build_psg, PsgOptions, VertexKind};
use scalana_mpisim::{SimConfig, Simulation};
use scalana_profile::overhead::ToolKind;
use scalana_profile::{
    measure_overhead, FlatConfig, FlatProfilerHook, ProfilerConfig, TracerConfig,
};

fn cg_app() -> scalana_apps::App {
    scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 60_000,
        iterations: 10,
        delay_rank: None,
    })
}

/// Table I shape on CG: storage ordering tracing > profiling > ScalAna
/// and overhead ordering tracing > ScalAna.
#[test]
fn table1_shape_holds_on_cg() {
    let app = cg_app();
    let psg = build_psg(&app.program, &PsgOptions::default());
    let tools = vec![
        ToolKind::Tracer(TracerConfig::default()),
        ToolKind::Flat(FlatConfig {
            per_rank_metadata: 2048,
            ..FlatConfig::default()
        }),
        ToolKind::ScalAna(ProfilerConfig::default()),
    ];
    let report = measure_overhead(&app.program, &psg, &SimConfig::with_nprocs(64), &tools).unwrap();
    let tracer = report.tool("Scalasca-like tracer").unwrap();
    let flat = report.tool("HPCToolkit-like profiler").unwrap();
    let scalana = report.tool("ScalAna").unwrap();
    assert!(tracer.storage_bytes > flat.storage_bytes);
    assert!(flat.storage_bytes > scalana.storage_bytes);
    assert!(tracer.overhead_pct > scalana.overhead_pct);
}

/// ScalAna's storage scales with vertices × ranks, not with events:
/// doubling the iteration count must not double the profile.
#[test]
fn scalana_storage_independent_of_run_length() {
    let measure = |iterations| {
        let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
            na: 60_000,
            iterations,
            delay_rank: None,
        });
        let psg = build_psg(&app.program, &PsgOptions::default());
        let mut hook = scalana_profile::ScalAnaProfiler::with_defaults();
        Simulation::new(&app.program, &psg, SimConfig::with_nprocs(16))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        hook.take_data().storage_bytes
    };
    let short = measure(5);
    let long = measure(20);
    assert!(
        (long as f64) < (short as f64) * 1.3,
        "4x iterations should barely grow the profile: {short} -> {long}"
    );
}

/// The tracer's storage, in contrast, grows linearly with run length.
#[test]
fn tracer_storage_grows_with_run_length() {
    let measure = |iterations| {
        let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
            na: 60_000,
            iterations,
            delay_rank: None,
        });
        let psg = build_psg(&app.program, &PsgOptions::default());
        let mut hook = scalana_profile::TracerHook::with_defaults();
        Simulation::new(&app.program, &psg, SimConfig::with_nprocs(16))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        hook.storage_bytes()
    };
    let short = measure(5);
    let long = measure(20);
    assert!(
        long as f64 > short as f64 * 3.0,
        "4x iterations ≈ 4x trace: {short} -> {long}"
    );
}

/// The flat profiler localizes the hot MPI symptom but (structurally)
/// cannot produce the causal chain — its output has no dependence
/// information at all.
#[test]
fn flat_profiler_sees_symptom_without_causality() {
    let app = scalana_apps::zeusmp::build(false);
    let psg = build_psg(&app.program, &PsgOptions::default());
    let mut flat = FlatProfilerHook::new(FlatConfig {
        sampling_hz: 50_000.0,
        ..FlatConfig::default()
    });
    Simulation::new(&app.program, &psg, SimConfig::with_nprocs(16))
        .with_hook(&mut flat)
        .run()
        .unwrap();
    let spots = flat.hot_spots(8);
    // The waitall/allreduce symptoms and the hsmoc loops are hot...
    assert!(
        spots.iter().any(|s| psg.vertex(s.vertex).is_mpi()),
        "MPI wait shows up as hot: {spots:?}"
    );
    assert!(
        spots
            .iter()
            .any(|s| psg.vertex(s.vertex).kind == VertexKind::Comp),
        "compute shows up as hot"
    );
    // ...but nothing in the output connects them (no edges, no paths) —
    // the "significant human effort" gap the paper describes.
}

/// Deterministic workloads: measuring twice gives identical numbers.
#[test]
fn overhead_measurement_is_deterministic() {
    let app = cg_app();
    let psg = build_psg(&app.program, &PsgOptions::default());
    let tools = vec![ToolKind::ScalAna(ProfilerConfig::default())];
    let a = measure_overhead(&app.program, &psg, &SimConfig::with_nprocs(8), &tools).unwrap();
    let b = measure_overhead(&app.program, &psg, &SimConfig::with_nprocs(8), &tools).unwrap();
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.tools[0].elapsed, b.tools[0].elapsed);
    assert_eq!(a.tools[0].storage_bytes, b.tools[0].storage_bytes);
}
