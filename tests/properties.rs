//! Cross-crate property-based tests: invariants of the whole stack on
//! generated ring/stencil workloads.

use proptest::prelude::*;
use scalana_graph::{build_psg, PsgOptions, VertexKind};
use scalana_lang::builder::*;
use scalana_lang::Program;
use scalana_mpisim::hook::{CommDepEvent, Hook, MpiEnterEvent, MpiExitEvent};
use scalana_mpisim::{NoiseConfig, SimConfig, Simulation};

/// A randomized but deadlock-free SPMD workload: iterations of compute,
/// a ring sendrecv, optional nonblocking exchange, and a collective.
fn build_workload(
    iters: i64,
    cycles: i64,
    bytes: i64,
    use_nonblocking: bool,
    collective: u8,
) -> Program {
    let mut b = ProgramBuilder::new("prop.mmpi");
    b.function("main", &[], |f| {
        f.for_("it", int(0), int(iters), |f| {
            f.comp_cycles(int(cycles) + var("it") * int(7));
            f.sendrecv(
                (rank() + int(1)) % nprocs(),
                (rank() + nprocs() - int(1)) % nprocs(),
                var("it"),
                int(bytes),
            );
            if use_nonblocking {
                f.isend(
                    "s",
                    (rank() + int(2)) % nprocs(),
                    var("it") + int(100),
                    int(256),
                );
                f.irecv(
                    "q",
                    (rank() + nprocs() - int(2)) % nprocs(),
                    var("it") + int(100),
                );
                f.waitall();
            }
            match collective {
                0 => f.barrier(),
                1 => f.allreduce(int(8)),
                _ => f.bcast(int(0), int(64)),
            }
        });
    });
    b.finish().expect("workload builds")
}

/// Counts messages sent vs dependence events (each matched message
/// yields exactly one dependence on the receiving side).
#[derive(Default)]
struct Conservation {
    sends: u64,
    deps_p2p: u64,
    enters: u64,
    exits: u64,
}

impl Hook for Conservation {
    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        self.enters += 1;
        if matches!(
            ev.kind,
            scalana_graph::MpiKind::Send
                | scalana_graph::MpiKind::Isend
                | scalana_graph::MpiKind::Sendrecv
        ) {
            self.sends += 1;
        }
        0.0
    }
    fn on_mpi_exit(&mut self, _ev: &MpiExitEvent) -> f64 {
        self.exits += 1;
        0.0
    }
    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        if ev.tag >= 0 {
            self.deps_p2p += 1;
        }
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Message conservation: every point-to-point send is matched by
    /// exactly one receive-side dependence, at any scale.
    #[test]
    fn message_conservation(
        iters in 1i64..6,
        cycles in 1_000i64..200_000,
        bytes in 8i64..32_768,
        nb in proptest::bool::ANY,
        coll in 0u8..3,
        nprocs in 2usize..17,
    ) {
        let program = build_workload(iters, cycles, bytes, nb, coll);
        let psg = build_psg(&program, &PsgOptions::default());
        let mut hook = Conservation::default();
        Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        prop_assert_eq!(hook.sends, hook.deps_p2p, "every send matched exactly once");
        prop_assert_eq!(hook.enters, hook.exits, "every MPI enter has an exit");
    }

    /// Determinism: identical seeds give bit-identical timelines even
    /// with noise enabled.
    #[test]
    fn simulation_is_deterministic(
        iters in 1i64..5,
        cycles in 1_000i64..100_000,
        nprocs in 2usize..13,
        seed in 0u64..1000,
    ) {
        let program = build_workload(iters, cycles, 1024, false, 1);
        let psg = build_psg(&program, &PsgOptions::default());
        let mk = || {
            let mut c = SimConfig::with_nprocs(nprocs);
            c.machine_mut().noise = NoiseConfig { amplitude: 0.05, seed };
            c
        };
        let a = Simulation::new(&program, &psg, mk()).run().unwrap();
        let b = Simulation::new(&program, &psg, mk()).run().unwrap();
        prop_assert_eq!(a, b);
    }

    /// Contraction safety: every MPI vertex of the raw PSG survives into
    /// the contracted one, and the contracted graph is never larger.
    #[test]
    fn contraction_preserves_mpi_vertices(
        iters in 1i64..4,
        nb in proptest::bool::ANY,
        coll in 0u8..3,
        depth in 0u32..4,
    ) {
        let program = build_workload(iters, 10_000, 512, nb, coll);
        let raw = build_psg(&program, &PsgOptions { contract: false, ..Default::default() });
        let contracted = build_psg(
            &program,
            &PsgOptions { contract: true, max_loop_depth: depth },
        );
        let count_mpi = |psg: &scalana_graph::Psg| {
            psg.vertices
                .iter()
                .filter(|v| matches!(v.kind, VertexKind::Mpi(_)))
                .count()
        };
        prop_assert_eq!(count_mpi(&raw), count_mpi(&contracted));
        prop_assert!(contracted.vertex_count() <= raw.vertex_count());
    }

    /// End-to-end analysis determinism: the same (program, scales,
    /// config) analyzed twice yields a byte-identical rendered report
    /// and byte-identical persisted profile images — the invariant the
    /// service's content-addressed result cache silently relies on when
    /// it serves a previous job's artifacts for a repeated submission.
    #[test]
    fn analysis_is_byte_deterministic(
        iters in 1i64..4,
        cycles in 1_000i64..100_000,
        nb in proptest::bool::ANY,
        coll in 0u8..3,
        seed in 0u64..500,
    ) {
        use scalana_core::pipeline::{assemble, profile_runs};
        use scalana_core::ScalAnaConfig;

        let program = build_workload(iters, cycles, 2048, nb, coll);
        let mut config = ScalAnaConfig::default();
        config.machine.noise = NoiseConfig { amplitude: 0.03, seed };
        let scales = [2usize, 4, 8];
        let run = || {
            let runs = profile_runs(&program, &scales, &config).unwrap();
            let images: Vec<Vec<u8>> = runs
                .profiles
                .iter()
                .map(|data| scalana_profile::store::save(data).to_vec())
                .collect();
            let report = assemble(runs, &config).report.render();
            (images, report)
        };
        let (images_a, report_a) = run();
        let (images_b, report_b) = run();
        prop_assert_eq!(images_a, images_b, "profile images must be byte-identical");
        prop_assert_eq!(report_a, report_b, "rendered reports must be byte-identical");
    }

    /// Virtual time sanity: elapsed time is positive and at least the
    /// pure compute lower bound on every rank.
    #[test]
    fn elapsed_time_bounds(
        iters in 1i64..5,
        cycles in 10_000i64..500_000,
        nprocs in 2usize..9,
    ) {
        let program = build_workload(iters, cycles, 1024, false, 1);
        let psg = build_psg(&program, &PsgOptions::default());
        let res = Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .run()
            .unwrap();
        // Lower bound: the comp cycles alone at nominal frequency.
        let comp_secs = (0..iters).map(|it| (cycles + it * 7) as f64).sum::<f64>() / 2.3e9;
        for t in &res.rank_elapsed {
            prop_assert!(*t >= comp_secs, "elapsed {t} < compute bound {comp_secs}");
            prop_assert!(t.is_finite());
        }
    }
}
