#!/usr/bin/env bash
# Service smoke: boot `scalana serve` on an ephemeral port, submit the
# same job twice, and assert the second submission is answered from the
# content-addressed cache (via the response's `cached` flag AND the
# /stats hit counter) without re-running the simulator. Then: crash
# recovery on a durable store (kill -9 + warm restart), and a
# three-daemon federation leg (cross-daemon cache serving, dead-peer
# fallback).
#
#   scripts/service_smoke.sh [path/to/scalana]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/scalana}"
if [ ! -x "$BIN" ]; then
    echo "service smoke: $BIN not built (run cargo build --release first)" >&2
    exit 1
fi

WORKDIR="$(mktemp -d)"
SERVE_LOG="$WORKDIR/serve.log"
cleanup() {
    for pid in "${SERVE_PID:-}" "${FED_A_PID:-}" "${FED_B_PID:-}" "${FED_C_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Boot one daemon in the background with the given log file and extra
# flags; sets BOOTED_ADDR and BOOTED_PID (no subshell, so both
# propagate to the caller).
boot_daemon() {
    local log="$1"; shift
    "$BIN" serve --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
    BOOTED_PID=$!
    BOOTED_ADDR=""
    for _ in $(seq 1 100); do
        BOOTED_ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log")"
        [ -n "$BOOTED_ADDR" ] && break
        kill -0 "$BOOTED_PID" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$BOOTED_ADDR" ] \
        || { echo "service smoke: daemon never announced its address" >&2; return 1; }
}

cat > "$WORKDIR/demo.mmpi" <<'EOF'
param N = 500_000;
fn main() {
    for it in 0 .. 6 {
        comp(cycles = N / nprocs, ins = N / nprocs);
        if rank == 0 {
            for s in 0 .. 2 { comp(cycles = N / 4, ins = N / 4); }
        }
        barrier();
    }
    allreduce(bytes = 8);
}
EOF

echo "==> scalana serve --addr 127.0.0.1:0 (ephemeral port)"
"$BIN" serve --addr 127.0.0.1:0 --workers 2 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "service smoke: daemon never announced its address" >&2; exit 1; }
echo "    daemon at $ADDR"

echo "==> first submission (must run the pipeline)"
FIRST="$("$BIN" submit --addr "$ADDR" "$WORKDIR/demo.mmpi" --scales 2,4 --wait)"
echo "$FIRST" | grep -q '"cached":false' || { echo "first submit unexpectedly cached: $FIRST" >&2; exit 1; }
echo "$FIRST" | grep -q '"status":"done"' || { echo "first job did not finish: $FIRST" >&2; exit 1; }

echo "==> second identical submission (must be a cache hit)"
SECOND="$("$BIN" submit --addr "$ADDR" "$WORKDIR/demo.mmpi" --scales 2,4)"
echo "$SECOND" | grep -q '"cached":true' || { echo "second submit missed the cache: $SECOND" >&2; exit 1; }

STATS="$("$BIN" status --addr "$ADDR")"
echo "$STATS" | grep -q '"cache_hits":1' || { echo "stats disagree about the hit: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"executed":1' || { echo "cache hit re-ran the simulator: $STATS" >&2; exit 1; }

echo "==> overlapping-scales submission (must hit the per-scale cache)"
# Scales 2 and 4 were profiled by the first job; only 8 may simulate.
THIRD="$("$BIN" submit --addr "$ADDR" "$WORKDIR/demo.mmpi" --scales 2,4,8 --wait)"
echo "$THIRD" | grep -q '"status":"done"' || { echo "overlap job did not finish: $THIRD" >&2; exit 1; }
STATS="$("$BIN" status --addr "$ADDR")"
echo "$STATS" | grep -q '"scale_hits":2' || { echo "overlap submission missed the per-scale cache: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"scale_misses":3' || { echo "unexpected per-scale miss count: $STATS" >&2; exit 1; }

echo "==> /v1/metrics agrees with /stats on the per-tier cache counters"
METRICS="$("$BIN" top --addr "$ADDR" --raw)"
echo "$METRICS" | grep -q '^scalana_cache_scale_hits_total 2$' \
    || { echo "metrics disagree with /stats on scale hits: $METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '^scalana_cache_scale_misses_total 3$' \
    || { echo "metrics disagree with /stats on scale misses: $METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '^scalana_cache_result_hits_total 1$' \
    || { echo "metrics disagree with /stats on result hits: $METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '^# TYPE scalana_stage_simulate_ns summary$' \
    || { echo "metrics lack the simulate stage histogram: $METRICS" >&2; exit 1; }

JOB="$(echo "$SECOND" | sed -n 's/.*"job":"\([0-9a-f]*\)".*/\1/p')"
"$BIN" result --addr "$ADDR" "$JOB" | grep -q '"report"' \
    || { echo "result endpoint did not serve the cached report" >&2; exit 1; }

echo "==> /v1/diff end-to-end (both sides reuse cached profiles)"
# A second program: the demo with a heavier serial section. Side `a`
# re-references the fully cached demo job; side `b` is fresh work.
sed 's/N \/ 4/N \/ 2/' "$WORKDIR/demo.mmpi" > "$WORKDIR/demo_slow.mmpi"
DIFF="$("$BIN" diff --addr "$ADDR" "$WORKDIR/demo.mmpi" "$WORKDIR/demo_slow.mmpi" --scales 2,4)"
echo "$DIFF" | grep -q '"summary"' || { echo "diff produced no summary: $DIFF" >&2; exit 1; }
echo "$DIFF" | grep -q '"root_causes"' || { echo "diff produced no root_causes: $DIFF" >&2; exit 1; }
# Side `a` hit the whole-job cache, so per-scale counters moved only
# for side `b`'s two scales (both fresh simulations).
STATS="$("$BIN" status --addr "$ADDR")"
echo "$STATS" | grep -q '"scale_hits":2' || { echo "diff disturbed the per-scale cache: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"scale_misses":5' || { echo "unexpected per-scale misses after diff: $STATS" >&2; exit 1; }
# The identical diff again is fully cached and byte-identical.
AGAIN="$("$BIN" diff --addr "$ADDR" "$WORKDIR/demo.mmpi" "$WORKDIR/demo_slow.mmpi" --scales 2,4)"
[ "$DIFF" = "$AGAIN" ] || { echo "diff output is not deterministic" >&2; exit 1; }

echo "==> shutdown"
"$BIN" shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

# ---------------------------------------------------------------------
# Crash recovery: a fresh daemon with a durable store, killed with
# SIGKILL (no shutdown hook, no flush), must warm-restart from the
# store directory and answer the same submission with zero per-scale
# misses and an identical report.
# ---------------------------------------------------------------------
STORE="$WORKDIR/store"
SERVE_LOG="$WORKDIR/serve_store.log"

echo "==> scalana serve --store-dir (durable store)"
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --store-dir "$STORE" > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "service smoke: store daemon never announced its address" >&2; exit 1; }
echo "    daemon at $ADDR (store at $STORE)"

BEFORE="$("$BIN" submit --addr "$ADDR" "$WORKDIR/demo.mmpi" --scales 2,4 --wait)"
echo "$BEFORE" | grep -q '"status":"done"' || { echo "store job did not finish: $BEFORE" >&2; exit 1; }
JOB="$(echo "$BEFORE" | sed -n 's/.*"job":"\([0-9a-f]*\)".*/\1/p' | head -n1)"
# detect_seconds is wall-clock; everything else in the result document
# is the byte-stable contract the restart must reproduce.
REPORT_BEFORE="$("$BIN" result --addr "$ADDR" "$JOB" | sed 's/"detect_seconds":[0-9.eE+-]*//')"

# Wait for the write-behind queue to flush all three artifacts
# (2 profile images + 1 PSG trace) before pulling the plug.
for _ in $(seq 1 100); do
    "$BIN" status --addr "$ADDR" | grep -q '"store_entries":3' && break
    sleep 0.1
done
"$BIN" status --addr "$ADDR" | grep -q '"store_entries":3' \
    || { echo "store never flushed the job's artifacts" >&2; exit 1; }
"$BIN" top --addr "$ADDR" --raw | grep -q '^scalana_store_writes_total 3$' \
    || { echo "metrics disagree about store writes" >&2; exit 1; }

echo "==> kill -9 (no shutdown, no flush)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "==> warm restart on the same --store-dir"
SERVE_LOG="$WORKDIR/serve_warm.log"
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --store-dir "$STORE" > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "service smoke: restarted daemon never announced its address" >&2; exit 1; }

STATS="$("$BIN" status --addr "$ADDR")"
echo "$STATS" | grep -q '"store_loaded":3' || { echo "warm boot did not reload the store: $STATS" >&2; exit 1; }

AFTER="$("$BIN" submit --addr "$ADDR" "$WORKDIR/demo.mmpi" --scales 2,4 --wait)"
echo "$AFTER" | grep -q '"status":"done"' || { echo "warm resubmission did not finish: $AFTER" >&2; exit 1; }
STATS="$("$BIN" status --addr "$ADDR")"
echo "$STATS" | grep -q '"scale_misses":0' || { echo "warm resubmission re-simulated: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"scale_hits":2' || { echo "warm resubmission missed the store: $STATS" >&2; exit 1; }

REPORT_AFTER="$("$BIN" result --addr "$ADDR" "$JOB" | sed 's/"detect_seconds":[0-9.eE+-]*//')"
[ "$REPORT_BEFORE" = "$REPORT_AFTER" ] \
    || { echo "post-crash report diverges from the pre-crash answer" >&2; exit 1; }

echo "==> scalana store ls / gc"
"$BIN" store ls --addr "$ADDR" | grep -q '"entries":3' \
    || { echo "store ls does not see the durable entries" >&2; exit 1; }
"$BIN" store gc --addr "$ADDR" | grep -q '"evicted":0' \
    || { echo "unquota'd store gc evicted something" >&2; exit 1; }

echo "==> shutdown (store daemon)"
"$BIN" shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

# ---------------------------------------------------------------------
# Federation: three daemons on one rendezvous ring. A program analysed
# on daemon A must be served by B and C with zero per-scale misses and
# zero simulator runs (remote read-through + write-through); killing A
# must degrade the fleet to local simulation, never to failure.
# ---------------------------------------------------------------------
echo "==> scalana serve --peer (three-daemon fleet)"
boot_daemon "$WORKDIR/fed_a.log" --workers 2
ADDR_A=$BOOTED_ADDR
FED_A_PID=$BOOTED_PID
boot_daemon "$WORKDIR/fed_b.log" --workers 2 --peer "$ADDR_A"
ADDR_B=$BOOTED_ADDR
FED_B_PID=$BOOTED_PID
boot_daemon "$WORKDIR/fed_c.log" --workers 2 --peer "$ADDR_A" --peer "$ADDR_B"
ADDR_C=$BOOTED_ADDR
FED_C_PID=$BOOTED_PID
echo "    fleet at $ADDR_A / $ADDR_B / $ADDR_C"

# Announce gossip is asynchronous; wait until every daemon sees the
# full three-member ring.
for addr in "$ADDR_A" "$ADDR_B" "$ADDR_C"; do
    for _ in $(seq 1 100); do
        "$BIN" top --addr "$addr" --raw | grep -q '^scalana_peer_ring_size 3$' && break
        sleep 0.1
    done
    "$BIN" top --addr "$addr" --raw | grep -q '^scalana_peer_ring_size 3$' \
        || { echo "$addr never converged on the three-member ring" >&2; exit 1; }
done

echo "==> cold analysis on daemon A"
FED_FIRST="$("$BIN" submit --addr "$ADDR_A" "$WORKDIR/demo.mmpi" --scales 2,4 --wait)"
echo "$FED_FIRST" | grep -q '"status":"done"' || { echo "fleet cold job did not finish: $FED_FIRST" >&2; exit 1; }
# Wait for A's write-behind to settle so every ring owner holds its
# shard before the other daemons are asked.
for _ in $(seq 1 100); do
    "$BIN" status --addr "$ADDR_A" | grep -q '"peer_backlog":0' && break
    sleep 0.1
done
"$BIN" status --addr "$ADDR_A" | grep -q '"peer_backlog":0' \
    || { echo "A's peer write-behind never settled" >&2; exit 1; }

echo "==> overlapping-scale resubmission on B and C (zero misses, zero simulator runs)"
for addr in "$ADDR_B" "$ADDR_C"; do
    FED_WARM="$("$BIN" submit --addr "$addr" "$WORKDIR/demo.mmpi" --scales 2,4 --wait)"
    echo "$FED_WARM" | grep -q '"status":"done"' || { echo "fleet warm job on $addr did not finish: $FED_WARM" >&2; exit 1; }
    STATS="$("$BIN" status --addr "$addr")"
    echo "$STATS" | grep -q '"scale_misses":0' || { echo "$addr missed scales the fleet holds: $STATS" >&2; exit 1; }
    "$BIN" top --addr "$addr" --raw | grep -q '^scalana_sim_runs_total 0$' \
        || { echo "$addr ran the simulator for a fleet-warm program" >&2; exit 1; }
done
# Remote hits: every key has exactly one owner, so serving the program
# on both B and C must involve at least one peer fetch somewhere.
HITS_B="$("$BIN" status --addr "$ADDR_B" | sed -n 's/.*"peer_hits":\([0-9]*\).*/\1/p')"
HITS_C="$("$BIN" status --addr "$ADDR_C" | sed -n 's/.*"peer_hits":\([0-9]*\).*/\1/p')"
[ "$((HITS_B + HITS_C))" -gt 0 ] \
    || { echo "no remote hits recorded on B ($HITS_B) or C ($HITS_C)" >&2; exit 1; }

echo "==> kill -9 daemon A; the fleet degrades to local simulation"
kill -9 "$FED_A_PID"
wait "$FED_A_PID" 2>/dev/null || true
FED_A_PID=""
FED_AFTER="$("$BIN" submit --addr "$ADDR_B" "$WORKDIR/demo.mmpi" --scales 2,4,8 --wait)"
echo "$FED_AFTER" | grep -q '"status":"done"' \
    || { echo "resubmission after killing a peer failed: $FED_AFTER" >&2; exit 1; }

echo "==> shutdown (fleet)"
"$BIN" shutdown --addr "$ADDR_B" > /dev/null
"$BIN" shutdown --addr "$ADDR_C" > /dev/null
wait "$FED_B_PID" 2>/dev/null || true
wait "$FED_C_PID" 2>/dev/null || true
FED_B_PID=""
FED_C_PID=""

echo "service smoke: all green"
