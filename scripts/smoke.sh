#!/usr/bin/env bash
# Tier-1 smoke: everything CI enforces, runnable locally in one shot.
#
#   scripts/smoke.sh          # full check
#   PROPTEST_CASES=16 scripts/smoke.sh   # faster property-test pass
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo bench --no-run"
cargo bench --no-run --quiet

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> service smoke (serve / submit twice / cache hit / v1 diff)"
scripts/service_smoke.sh target/release/scalana

echo "==> wgen differential fuzz sweep (30 generated cases, all oracles)"
# A quick pass through the generative differential tester: 30 programs
# per oracle set, against a live in-process daemon, with shrinking on
# failure. The full 200-case run already happened under
# `cargo test --workspace`; this sweep exercises a second fixed seed.
WGEN_SEED=1337 WGEN_CASES=30 cargo test --quiet --release -p scalana-wgen

echo "==> perfgate --quick (all eight bench suites, gated vs BENCH_pr10.json)"
mkdir -p target/perfgate
# Generous factor (matching CI): the committed medians come from one
# specific machine; the gate is for panics and order-of-magnitude
# regressions, not machine variance.
PERFGATE_FACTOR="${PERFGATE_FACTOR:-25}" cargo run --release -q -p scalana-bench --bin perfgate -- \
  --quick --out target/perfgate/BENCH_quick.json --gate BENCH_pr10.json

echo "smoke: all green"
