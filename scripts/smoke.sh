#!/usr/bin/env bash
# Tier-1 smoke: everything CI enforces, runnable locally in one shot.
#
#   scripts/smoke.sh          # full check
#   PROPTEST_CASES=16 scripts/smoke.sh   # faster property-test pass
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo bench --no-run"
cargo bench --no-run --quiet

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> service smoke (serve / submit twice / cache hit / v1 diff)"
scripts/service_smoke.sh target/release/scalana

echo "==> perfgate --quick (all six bench suites, gated vs BENCH_pr5.json)"
mkdir -p target/perfgate
# Generous factor (matching CI): the committed medians come from one
# specific machine; the gate is for panics and order-of-magnitude
# regressions, not machine variance.
PERFGATE_FACTOR="${PERFGATE_FACTOR:-25}" cargo run --release -q -p scalana-bench --bin perfgate -- \
  --quick --out target/perfgate/BENCH_quick.json --gate BENCH_pr5.json

echo "smoke: all green"
