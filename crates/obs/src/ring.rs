//! Lock-free per-thread event rings, merged on demand.
//!
//! Every thread that records an event owns one fixed-capacity [`Ring`]
//! of seqlock-protected slots. The hot path (`record`) touches only the
//! calling thread's ring with a handful of relaxed/release atomic
//! stores — no locks, no allocation, no contention with other writers.
//! Readers ([`merge`]) walk every registered ring, skip slots caught
//! mid-write, and return the surviving events sorted by timestamp, so a
//! consistent global timeline is assembled only when somebody asks for
//! one (the `scalana trace` path), never on the record path.
//!
//! Labels are interned once into a process-wide table ([`label`]); the
//! per-event payload is therefore four machine words: a seqlock stamp,
//! a monotonic timestamp, a packed `(kind, label)` pair, and a value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::now_ns;

/// Events a ring slot can hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; `value` is unused (0).
    SpanEnter,
    /// A span closed; `value` is the span's duration in nanoseconds.
    SpanExit,
    /// A counter moved; `value` is the delta.
    Counter,
    /// A gauge was set; `value` is the new level.
    Gauge,
}

impl EventKind {
    fn encode(self) -> u64 {
        match self {
            EventKind::SpanEnter => 0,
            EventKind::SpanExit => 1,
            EventKind::Counter => 2,
            EventKind::Gauge => 3,
        }
    }

    fn decode(raw: u64) -> EventKind {
        match raw {
            0 => EventKind::SpanEnter,
            1 => EventKind::SpanExit,
            2 => EventKind::Counter,
            _ => EventKind::Gauge,
        }
    }
}

/// One merged event, resolved back to its label text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process observability epoch.
    pub ts_ns: u64,
    /// The recording thread's ring id (stable for the thread's life).
    pub thread: u64,
    pub kind: EventKind,
    pub label: String,
    pub value: u64,
}

/// An interned event label; obtain via [`label`], reuse freely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(u32);

/// Interner state: label texts by id, plus the reverse index.
type Labels = (Vec<String>, HashMap<String, u32>);

fn interner() -> &'static Mutex<Labels> {
    static LABELS: OnceLock<Mutex<Labels>> = OnceLock::new();
    LABELS.get_or_init(|| Mutex::new((Vec::new(), HashMap::new())))
}

/// Intern `name`, returning a compact id for the record path. Interning
/// takes a lock; callers cache the id (typically in a struct built once
/// at startup) so recording itself stays lock-free.
pub fn label(name: &str) -> LabelId {
    let mut guard = interner().lock().unwrap();
    let (names, index) = &mut *guard;
    if let Some(&id) = index.get(name) {
        return LabelId(id);
    }
    let id = names.len() as u32;
    names.push(name.to_string());
    index.insert(name.to_string(), id);
    LabelId(id)
}

fn label_name(id: u32) -> String {
    let guard = interner().lock().unwrap();
    guard
        .0
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("label#{id}"))
}

/// Events each thread ring retains before the oldest are overwritten.
pub const RING_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Slot {
    /// Seqlock stamp: 0 = never written, odd = write in progress,
    /// even = committed (the stamp of the write that produced it).
    seq: AtomicU64,
    ts: AtomicU64,
    /// `kind << 32 | label`.
    meta: AtomicU64,
    value: AtomicU64,
}

/// A single-writer ring of seqlock slots. The owning thread pushes;
/// any thread may snapshot.
#[derive(Debug)]
pub struct Ring {
    id: u64,
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Ring {
    fn new(id: u64, capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                value: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            id,
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Push one event. Single writer (the owning thread), so `head`
    /// needs no CAS; the seqlock stamp makes concurrent readers safe.
    fn push(&self, ts_ns: u64, kind: EventKind, label: LabelId, value: u64) {
        let index = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(index as usize) % self.slots.len()];
        slot.seq.store(index * 2 + 1, Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(
            (kind.encode() << 32) | u64::from(label.0),
            Ordering::Relaxed,
        );
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store((index + 1) * 2, Ordering::Release);
        self.head.store(index + 1, Ordering::Release);
    }

    /// Collect every committed event currently resident. Slots caught
    /// mid-write (odd stamp, or stamp changed under us) are skipped —
    /// the merge is a best-effort snapshot, never a blocking read.
    fn snapshot(&self, out: &mut Vec<Event>) {
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if before != after {
                continue;
            }
            out.push(Event {
                ts_ns: ts,
                thread: self.id,
                kind: EventKind::decode(meta >> 32),
                label: label_name((meta & 0xffff_ffff) as u32),
                value,
            });
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let ring = Arc::new(Ring::new(
            NEXT_ID.fetch_add(1, Ordering::Relaxed),
            RING_CAPACITY,
        ));
        rings().lock().unwrap().push(Arc::clone(&ring));
        ring
    };
}

/// Record one event into the calling thread's ring (creating and
/// registering the ring on the thread's first event).
pub fn record(kind: EventKind, label: LabelId, value: u64) {
    let ts = now_ns();
    LOCAL_RING.with(|ring| ring.push(ts, kind, label, value));
}

/// Merge every thread's ring into one timeline, oldest event first.
/// Ties are broken by ring id so the order is deterministic for a
/// quiesced process.
pub fn merge() -> Vec<Event> {
    let rings = rings().lock().unwrap();
    let mut events = Vec::new();
    for ring in rings.iter() {
        ring.snapshot(&mut events);
    }
    drop(rings);
    events.sort_by(|a, b| (a.ts_ns, a.thread, &a.label).cmp(&(b.ts_ns, b.thread, &b.label)));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_intern_to_stable_ids() {
        let a = label("ring-test-alpha");
        let b = label("ring-test-beta");
        assert_ne!(a, b);
        assert_eq!(a, label("ring-test-alpha"));
    }

    #[test]
    fn events_survive_the_recording_thread() {
        let marker = "ring-test-crossthread";
        std::thread::spawn(move || {
            record(EventKind::Counter, label(marker), 7);
        })
        .join()
        .unwrap();
        let merged = merge();
        let found = merged
            .iter()
            .find(|e| e.label == marker)
            .expect("event from the dead thread survives in its ring");
        assert_eq!(found.kind, EventKind::Counter);
        assert_eq!(found.value, 7);
    }

    #[test]
    fn merge_is_sorted_and_ring_wraps() {
        let marker = "ring-test-wrap";
        std::thread::spawn(move || {
            let id = label(marker);
            for i in 0..(RING_CAPACITY as u64 + 10) {
                record(EventKind::Gauge, id, i);
            }
        })
        .join()
        .unwrap();
        let merged = merge();
        let values: Vec<u64> = merged
            .iter()
            .filter(|e| e.label == marker)
            .map(|e| e.value)
            .collect();
        assert_eq!(values.len(), RING_CAPACITY);
        // Oldest ten events were overwritten by the wrap.
        assert!(values.iter().all(|&v| v >= 10));
        let mut sorted = merged.clone();
        sorted.sort_by(|a, b| (a.ts_ns, a.thread, &a.label).cmp(&(b.ts_ns, b.thread, &b.label)));
        assert_eq!(merged, sorted);
    }
}
