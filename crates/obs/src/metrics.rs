//! Counters, gauges, log-bucketed histograms, and the registry that
//! renders them as deterministic Prometheus-style text.
//!
//! Handles are `Arc`-backed clones of the registered atomics, so the
//! update path after registration is a single atomic RMW — cheap enough
//! to leave on in production, which is the whole point. Rendering sorts
//! families by name and emits samples in a fixed order per kind, so the
//! exposition is byte-deterministic for a given set of values and can
//! be pinned by golden tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere — for callers (tests, library
    /// consumers) that want the increment sites without an exposition.
    pub fn detached() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a level that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `b` holds values whose bit width is
/// `b`, i.e. `[2^(b-1), 2^b)`; bucket 0 holds exactly 0.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-bucketed latency histogram.
///
/// Values land in power-of-two buckets (one atomic increment), so
/// recording costs two RMWs plus a `fetch_max` regardless of the value
/// range, and quantiles are estimated from the bucket boundaries —
/// exactly the resolution needed to tell a 50 µs parse from a 5 ms
/// simulate, at always-on cost.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// A histogram read at one instant: totals plus estimated quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl Histogram {
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Record one observation (typically nanoseconds).
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (0 < q <= 1) from the bucket counts:
    /// the geometric midpoint of the bucket where the cumulative count
    /// crosses the target, clamped to the observed maximum.
    fn quantile(&self, counts: &[u64; BUCKETS], total: u64, max: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &n) in counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                if bucket == 0 {
                    return 0;
                }
                let low = 1u64 << (bucket - 1);
                let mid = low + low / 2;
                return mid.min(max);
            }
        }
        max
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.0.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // Totals re-derived from the bucket reads so the snapshot is
        // internally consistent even while writers race.
        let count: u64 = counts.iter().sum();
        let max = self.0.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            max,
            p50: self.quantile(&counts, count, max, 0.50),
            p90: self.quantile(&counts, count, max, 0.90),
            p99: self.quantile(&counts, count, max, 0.99),
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One exposition family, ready to render: a metric name, its TYPE
/// line kind, and the `(sample suffix, value)` pairs under it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Family {
    pub name: String,
    pub kind: &'static str,
    /// `(suffix, value)`: the suffix is appended verbatim to the family
    /// name (empty for plain counters/gauges, `{quantile="0.5"}` or
    /// `_count` for summaries).
    pub samples: Vec<(String, u64)>,
}

impl Family {
    /// A single-sample counter family computed outside the registry
    /// (e.g. mirrored from an existing cache's own atomics).
    pub fn counter(name: &str, value: u64) -> Family {
        Family {
            name: name.to_string(),
            kind: "counter",
            samples: vec![(String::new(), value)],
        }
    }

    /// A single-sample gauge family.
    pub fn gauge(name: &str, value: u64) -> Family {
        Family {
            name: name.to_string(),
            kind: "gauge",
            samples: vec![(String::new(), value)],
        }
    }

    /// Replace every sample's suffix (e.g. a `{label="..."}` set on an
    /// info-style gauge such as `build_info 1`).
    pub fn with_sample_suffix(mut self, suffix: &str) -> Family {
        for sample in &mut self.samples {
            sample.0 = suffix.to_string();
        }
        self
    }
}

fn histogram_family(name: &str, snap: HistogramSnapshot) -> Family {
    Family {
        name: name.to_string(),
        kind: "summary",
        samples: vec![
            ("{quantile=\"0.5\"}".to_string(), snap.p50),
            ("{quantile=\"0.9\"}".to_string(), snap.p90),
            ("{quantile=\"0.99\"}".to_string(), snap.p99),
            ("_max".to_string(), snap.max),
            ("_count".to_string(), snap.count),
            ("_sum".to_string(), snap.sum),
        ],
    }
}

/// A named collection of metrics with a deterministic text exposition.
///
/// Registration (`counter`/`gauge`/`histogram`) takes the registry lock
/// once and hands back an `Arc`-backed handle; every subsequent update
/// through the handle is lock-free. Asking twice for the same name
/// returns a handle to the same underlying atomic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Snapshot every registered metric as render-ready families.
    pub fn families(&self) -> Vec<Family> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => Family::counter(name, c.get()),
                Metric::Gauge(g) => Family::gauge(name, g.get()),
                Metric::Histogram(h) => histogram_family(name, h.snapshot()),
            })
            .collect()
    }

    /// Render the registry plus caller-supplied extra families (values
    /// mirrored from elsewhere) as Prometheus-style text, sorted by
    /// family name — byte-deterministic for a given set of values.
    pub fn render(&self, extra: Vec<Family>) -> String {
        let mut families = self.families();
        families.extend(extra);
        render_families(families)
    }
}

/// Render families as Prometheus-style text exposition, sorted by name.
pub fn render_families(mut families: Vec<Family>) -> String {
    families.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for family in &families {
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind);
        out.push('\n');
        for (suffix, value) in &family.samples {
            out.push_str(&family.name);
            out.push_str(suffix);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::detached();
        for v in [0u64, 1, 2, 3, 1000, 1000, 1000, 1000, 1000, 50_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum, 55_006);
        assert_eq!(snap.max, 50_000);
        // p50 lands in the 1000s bucket [512, 1024) -> mid 768.
        assert_eq!(snap.p50, 768);
        assert!(snap.p90 >= snap.p50);
        assert!(snap.p99 >= snap.p90);
        assert!(snap.p99 <= snap.max);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        assert_eq!(
            Histogram::detached().snapshot(),
            HistogramSnapshot::default()
        );
    }

    #[test]
    fn registry_hands_back_the_same_atomic() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total");
        let b = registry.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter("scalana_b_total").add(2);
        registry.gauge("scalana_a_level").set(7);
        registry.histogram("scalana_c_ns").record(3);
        let extra = vec![Family::counter("scalana_aa_total", 1)];
        let text = registry.render(extra.clone());
        assert_eq!(text, registry.render(extra));
        let expected = "# TYPE scalana_a_level gauge\n\
                        scalana_a_level 7\n\
                        # TYPE scalana_aa_total counter\n\
                        scalana_aa_total 1\n\
                        # TYPE scalana_b_total counter\n\
                        scalana_b_total 2\n\
                        # TYPE scalana_c_ns summary\n\
                        scalana_c_ns{quantile=\"0.5\"} 3\n\
                        scalana_c_ns{quantile=\"0.9\"} 3\n\
                        scalana_c_ns{quantile=\"0.99\"} 3\n\
                        scalana_c_ns_max 3\n\
                        scalana_c_ns_count 1\n\
                        scalana_c_ns_sum 3\n";
        assert_eq!(text, expected);
    }
}
