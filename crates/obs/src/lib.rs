//! # scalana-obs — the daemon observing itself
//!
//! The paper's thesis is that scaling loss should be located with
//! low-overhead, always-on instrumentation. This crate turns that
//! philosophy back onto the analysis daemon: every stage of a job's
//! life (HTTP read → parse → queue wait → per-scale cache probe →
//! simulate → assemble → render → write) is wrapped in a [`Span`]
//! whose cost is small enough to never switch off, and the aggregate
//! picture is served from a [`MetricsRegistry`] whose text exposition
//! is byte-deterministic (and therefore golden-testable).
//!
//! Three layers, cheapest first:
//!
//! - [`ring`] — lock-free per-thread seqlock rings of typed events
//!   (`span_enter`/`span_exit`/`counter`/`gauge`, monotonic timestamps
//!   from one process [`clock::epoch`]), merged into a global timeline
//!   only on demand;
//! - [`metrics`] — `Arc`-backed [`Counter`]/[`Gauge`] handles and
//!   log-bucketed latency [`Histogram`]s (p50/p90/p99/max from
//!   power-of-two buckets), registered by name and rendered as sorted
//!   Prometheus-style text;
//! - [`mod@span`] — RAII glue: one guard object records the ring events
//!   and feeds the latency histogram on drop.
//!
//! The crate is dependency-free on purpose: it sits underneath
//! everything else in the workspace (the service, the simulator hook
//! layer, the caches) and must never drag the wire contract or the
//! analysis types into those layers.

pub mod clock;
pub mod metrics;
pub mod ring;
pub mod span;

pub use clock::{epoch, now_ns};
pub use metrics::{
    render_families, Counter, Family, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
};
pub use ring::{label, merge, record, Event, EventKind, LabelId, RING_CAPACITY};
pub use span::{span, span_timed, Span};
