//! RAII spans: enter on construction, exit on drop, with the duration
//! recorded both as a ring event (for timeline reconstruction) and,
//! optionally, into a latency [`Histogram`] (for `/v1/metrics`).

use crate::clock::now_ns;
use crate::metrics::Histogram;
use crate::ring::{record, EventKind, LabelId};

/// An open span. Dropping it records the exit event; the duration is
/// also fed to the attached histogram, if any.
#[derive(Debug)]
pub struct Span {
    label: LabelId,
    start_ns: u64,
    histogram: Option<Histogram>,
}

/// Open a span identified by an interned label.
pub fn span(label: LabelId) -> Span {
    record(EventKind::SpanEnter, label, 0);
    Span {
        label,
        start_ns: now_ns(),
        histogram: None,
    }
}

/// Open a span whose duration also lands in `histogram` on exit.
pub fn span_timed(label: LabelId, histogram: &Histogram) -> Span {
    record(EventKind::SpanEnter, label, 0);
    Span {
        label,
        start_ns: now_ns(),
        histogram: Some(histogram.clone()),
    }
}

impl Span {
    /// Nanoseconds since the span opened.
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.start_ns)
    }

    /// The offset of the span's start from the process epoch.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_ns();
        record(EventKind::SpanExit, self.label, elapsed);
        if let Some(histogram) = &self.histogram {
            histogram.record(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{label, merge};

    #[test]
    fn span_records_enter_exit_and_histogram() {
        let hist = Histogram::detached();
        let id = label("span-test-roundtrip");
        {
            let _span = span_timed(id, &hist);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        let events: Vec<_> = merge()
            .into_iter()
            .filter(|e| e.label == "span-test-roundtrip")
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanEnter);
        assert_eq!(events[1].kind, EventKind::SpanExit);
        assert!(events[1].ts_ns >= events[0].ts_ns);
    }
}
