//! The process observability epoch: one `Instant` captured on first
//! use, from which every recorded timestamp is a monotonic nanosecond
//! offset. Offsets from one epoch are directly comparable across
//! threads, which is what lets [`crate::ring::merge`] interleave rings
//! into a single timeline.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared epoch (captured on first call).
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since [`epoch`].
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
