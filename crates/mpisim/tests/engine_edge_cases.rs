//! Edge-case integration tests for the MPI engine: protocol corners,
//! ordering semantics, and failure modes.

use scalana_graph::{build_psg, PsgOptions};
use scalana_lang::parse_program;
use scalana_mpisim::hook::{CommDepEvent, Hook};
use scalana_mpisim::{SimConfig, SimError, Simulation};

fn run(src: &str, nprocs: usize) -> Result<scalana_mpisim::SimResult, SimError> {
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs)).run()
}

/// Hook capturing the source-rank order of matched messages.
struct DepOrder(Vec<(usize, i64)>);
impl Hook for DepOrder {
    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        self.0.push((ev.src_rank, ev.tag));
        0.0
    }
}

fn run_deps(src: &str, nprocs: usize) -> Vec<(usize, i64)> {
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    let mut hook = DepOrder(Vec::new());
    Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
        .with_hook(&mut hook)
        .run()
        .unwrap();
    hook.0
}

#[test]
fn fifo_per_sender_and_tag() {
    // Two same-tag sends from one rank must match two receives in order.
    let src = r#"
        fn main() {
            if rank == 0 {
                send(dst = 1, tag = 7, bytes = 64);
                send(dst = 1, tag = 7, bytes = 128);
            } else {
                recv(src = 0, tag = 7);
                recv(src = 0, tag = 7);
            }
        }
    "#;
    struct Bytes(Vec<u64>);
    impl Hook for Bytes {
        fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
            self.0.push(ev.bytes);
            0.0
        }
    }
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    let mut hook = Bytes(Vec::new());
    Simulation::new(&program, &psg, SimConfig::with_nprocs(2))
        .with_hook(&mut hook)
        .run()
        .unwrap();
    assert_eq!(hook.0, vec![64, 128], "FIFO per (src, tag)");
}

#[test]
fn tag_selectivity_reorders_matches() {
    // The receiver asks for tag 2 first even though tag 1 was sent first.
    let src = r#"
        fn main() {
            if rank == 0 {
                send(dst = 1, tag = 1, bytes = 64);
                send(dst = 1, tag = 2, bytes = 64);
            } else {
                recv(src = 0, tag = 2);
                recv(src = 0, tag = 1);
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert_eq!(deps, vec![(0, 2), (0, 1)]);
}

#[test]
fn wildcard_tag_with_specific_source() {
    let src = r#"
        fn main() {
            if rank == 0 {
                send(dst = 1, tag = 42, bytes = 64);
            } else {
                recv(src = 0, tag = any);
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert_eq!(deps, vec![(0, 42)]);
}

#[test]
fn wildcard_recv_ordering_blocks_later_specific_recv() {
    // A wildcard at the head of the queue must claim the first message;
    // the later specific recv takes the second. No crossover.
    let src = r#"
        fn main() {
            if rank == 0 {
                send(dst = 1, tag = 5, bytes = 64);
                send(dst = 1, tag = 6, bytes = 64);
            } else {
                let a = irecv(src = any, tag = any);
                let b = irecv(src = 0, tag = 6);
                waitall();
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert_eq!(deps.len(), 2);
    assert_eq!(deps[0], (0, 5), "wildcard gets the earlier message");
    assert_eq!(deps[1], (0, 6));
}

#[test]
fn rendezvous_isend_completes_at_wait() {
    // A large isend's request isn't complete until the receiver posts.
    let src = r#"
        fn main() {
            if rank == 0 {
                let s = isend(dst = 1, tag = 0, bytes = 1m);
                wait(s);
            } else {
                comp(cycles = 23_000_000); // 10 ms before posting
                recv(src = 0, tag = 0);
            }
        }
    "#;
    let res = run(src, 2).unwrap();
    assert!(
        res.rank_elapsed[0] >= 0.01,
        "sender's wait() blocked on the rendezvous: {}",
        res.rank_elapsed[0]
    );
}

#[test]
fn waitall_with_no_outstanding_requests_is_a_noop() {
    let res = run("fn main() { waitall(); comp(cycles = 100); }", 4).unwrap();
    assert!(res.total_time() > 0.0);
}

#[test]
fn wait_on_completed_then_reuse_is_error() {
    // Waiting twice on the same request id: second wait targets a
    // request that no longer exists.
    let src = r#"
        fn main() {
            if rank == 0 {
                let q = irecv(src = 1, tag = 0);
                wait(q);
                wait(q);
            } else {
                send(dst = 0, tag = 0, bytes = 8);
            }
        }
    "#;
    let err = run(src, 2).unwrap_err();
    assert!(matches!(err, SimError::UnknownRequest { rank: 0, .. }));
}

#[test]
fn mismatched_p2p_deadlocks_with_detail() {
    let src = "fn main() { if rank == 0 { recv(src = 1, tag = 3); } \
                else { send(dst = 0, tag = 4, bytes = 8); } }";
    let err = run(src, 2).unwrap_err();
    let SimError::Deadlock { detail } = err else {
        panic!("expected deadlock")
    };
    assert!(
        detail.contains("rank 0"),
        "detail names the stuck rank: {detail}"
    );
}

#[test]
fn collective_count_mismatch_is_deadlock_not_hang() {
    // Rank 0 performs one extra barrier.
    let src = "fn main() { barrier(); if rank == 0 { barrier(); } }";
    let err = run(src, 2).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }));
}

#[test]
fn single_rank_collectives_complete_instantly() {
    let res = run(
        "fn main() { barrier(); allreduce(bytes = 8); bcast(root = 0, bytes = 64); \
         alltoall(bytes = 8); allgather(bytes = 8); reduce(root = 0, bytes = 8); }",
        1,
    )
    .unwrap();
    assert!(res.total_time() < 1e-3);
}

#[test]
fn zero_byte_messages_work() {
    let src = r#"
        fn main() {
            if rank == 0 { send(dst = 1, tag = 0, bytes = 0); }
            else { recv(src = 0, tag = 0); }
        }
    "#;
    run(src, 2).unwrap();
}

#[test]
fn interleaved_nonblocking_streams_keep_tags_apart() {
    // Two independent request streams with different tags; waits in
    // reverse posting order.
    let src = r#"
        fn main() {
            let right = (rank + 1) % nprocs;
            let left = (rank + nprocs - 1) % nprocs;
            let a = irecv(src = left, tag = 1);
            let b = irecv(src = left, tag = 2);
            send(dst = right, tag = 2, bytes = 32);
            send(dst = right, tag = 1, bytes = 16);
            wait(b);
            wait(a);
        }
    "#;
    let deps = run_deps(src, 4);
    assert_eq!(deps.len(), 8, "two matched messages per rank");
}

#[test]
fn noise_changes_results_but_not_correctness() {
    let src = r#"
        fn main() {
            for i in 0 .. 5 {
                comp(cycles = 100_000);
                sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
                         sendtag = i, recvtag = i, bytes = 1k);
            }
        }
    "#;
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    let mut quiet = SimConfig::with_nprocs(4);
    quiet.machine_mut().noise.amplitude = 0.0;
    let mut noisy = SimConfig::with_nprocs(4);
    noisy.machine_mut().noise.amplitude = 0.10;
    noisy.machine_mut().noise.seed = 7;
    let a = Simulation::new(&program, &psg, quiet).run().unwrap();
    let b = Simulation::new(&program, &psg, noisy).run().unwrap();
    assert_ne!(a.rank_elapsed, b.rank_elapsed, "noise perturbs timing");
    // Perturbation is bounded by the amplitude (plus wait coupling).
    for (x, y) in a.rank_elapsed.iter().zip(&b.rank_elapsed) {
        assert!((x - y).abs() / x < 0.25, "{x} vs {y}");
    }
}

#[test]
fn heterogeneous_cores_slow_selected_ranks() {
    let src = "fn main() { comp(cycles = 1_000_000); barrier(); }";
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    let mut config = SimConfig::with_nprocs(4);
    config.machine_mut().core_speed = scalana_mpisim::CoreSpeed::PerRank(vec![1.0, 1.0, 0.5, 1.0]);
    let res = Simulation::new(&program, &psg, config).run().unwrap();
    // All exit the barrier together, but PMU cycles are equal while the
    // slow core took twice the time to accrue them (same work).
    assert_eq!(res.rank_pmu[0].tot_cyc, res.rank_pmu[2].tot_cyc);
}

#[test]
fn deep_recursion_is_bounded_by_step_budget() {
    let src = "fn main() { spin(0); } fn spin(n) { spin(n + 1); }";
    let program = parse_program("t.mmpi", src).unwrap();
    let psg = build_psg(&program, &PsgOptions::default());
    let mut config = SimConfig::with_nprocs(1);
    config.max_steps_per_rank = 10_000;
    let err = Simulation::new(&program, &psg, config).run().unwrap_err();
    assert!(matches!(err, SimError::StepLimit { rank: 0 }));
}

#[test]
fn bcast_from_nonzero_root() {
    let src = r#"
        fn main() {
            comp(cycles = rank * 100_000);
            bcast(root = 3, bytes = 1k);
        }
    "#;
    let res = run(src, 8).unwrap();
    // Root 3 leaves at its own arrival; later-arriving ranks gate on
    // themselves, earlier ones on the root's send tree.
    assert!(res.rank_elapsed[3] <= res.rank_elapsed[7]);
}

#[test]
fn zero_count_collectives_complete_and_synchronize() {
    // Every collective kind with a zero-byte payload: completion must
    // still synchronize the ranks (cost models degenerate to latency
    // terms, never to a stall or a division by zero).
    let src = r#"
        fn main() {
            comp(cycles = rank * 10_000);
            barrier();
            allreduce(bytes = 0);
            alltoall(bytes = 0);
            allgather(bytes = 0);
            bcast(root = 0, bytes = 0);
            reduce(root = 0, bytes = 0);
            allreduce(bytes = 0);
        }
    "#;
    let res = run(src, 8).unwrap();
    let t0 = res.rank_elapsed[0];
    for t in &res.rank_elapsed {
        assert!(t.is_finite() && *t > 0.0);
        assert!((t - t0).abs() < 1e-6, "zero-count allreduce still syncs");
    }
}

#[test]
fn wildcard_prefers_send_order_within_one_source_across_tags() {
    // One source, two tags, posted in tag order 9 then 8: per-(src, tag)
    // queues must not let the tag-8 queue jump ahead — wildcard matching
    // follows the sender's send sequence within a source.
    let src = r#"
        fn main() {
            if rank == 1 {
                send(dst = 0, tag = 9, bytes = 64);
                send(dst = 0, tag = 8, bytes = 64);
            } else if rank == 2 {
                comp(cycles = 23_000_000); // 10 ms: arrives last
                send(dst = 0, tag = 7, bytes = 64);
            } else if rank == 0 {
                recv(src = any, tag = any);
                recv(src = any, tag = any);
                recv(src = any, tag = any);
            }
        }
    "#;
    let deps = run_deps(src, 3);
    assert_eq!(
        deps,
        vec![(1, 9), (1, 8), (2, 7)],
        "send order within rank 1, late rank 2 last"
    );
}

#[test]
fn wildcard_tag_picks_lowest_sequence_across_queues_of_one_source() {
    // src-specific + wildcard tag: the match must take the source's
    // earliest send sequence even though a later-sent message sits at
    // the front of a different (src, tag) queue.
    let src = r#"
        fn main() {
            if rank == 1 {
                send(dst = 0, tag = 3, bytes = 64);
                send(dst = 0, tag = 2, bytes = 64);
                send(dst = 0, tag = 1, bytes = 64);
            } else if rank == 0 {
                recv(src = 1, tag = any);
                recv(src = 1, tag = any);
                recv(src = 1, tag = any);
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert_eq!(
        deps,
        vec![(1, 3), (1, 2), (1, 1)],
        "sequence order, not tag order"
    );
}

#[test]
fn unmatched_isend_outstanding_at_finalize_is_not_an_error() {
    // An eager isend whose request is never waited on and whose message
    // is never received: the rank finishes, the run completes, and no
    // dependence is emitted for the dangling message.
    let src = r#"
        fn main() {
            if rank == 0 {
                let s = isend(dst = 1, tag = 99, bytes = 512);
                comp(cycles = 1000);
            } else {
                comp(cycles = 1000);
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert!(deps.is_empty(), "dangling isend matched nothing: {deps:?}");
}

#[test]
fn unmatched_rendezvous_isend_outstanding_at_finalize_completes() {
    // Rendezvous flavor: the request can never complete (no receiver
    // ever posts), but nobody waits on it — finalize must not deadlock.
    let src = r#"
        fn main() {
            if rank == 0 {
                let s = isend(dst = 1, tag = 99, bytes = 1m);
                comp(cycles = 1000);
            } else {
                comp(cycles = 1000);
            }
        }
    "#;
    let res = run(src, 2).unwrap();
    assert_eq!(res.rank_elapsed.len(), 2);
}

#[test]
fn wildcard_tie_break_across_tags_survives_collective_fence() {
    // Per-source send sequence drives wildcard matching in both phases
    // of a barrier-fenced exchange: the collective must neither perturb
    // the sequence counters nor leave stale queue state, so the second
    // phase re-matches in send order even though the tag order flips.
    let src = r#"
        fn main() {
            if rank == 1 {
                send(dst = 0, tag = 9, bytes = 64);
                send(dst = 0, tag = 8, bytes = 64);
                barrier();
                send(dst = 0, tag = 8, bytes = 64);
                send(dst = 0, tag = 9, bytes = 64);
            } else if rank == 0 {
                recv(src = any, tag = any);
                recv(src = any, tag = any);
                barrier();
                recv(src = any, tag = any);
                recv(src = any, tag = any);
            } else {
                barrier();
            }
        }
    "#;
    let deps = run_deps(src, 3);
    // Collective dependences carry negative tags; keep the p2p stream.
    let p2p: Vec<_> = deps.iter().copied().filter(|(_, t)| *t >= 0).collect();
    assert_eq!(
        p2p,
        vec![(1, 9), (1, 8), (1, 8), (1, 9)],
        "send-sequence order in each phase, tags alternating"
    );
    assert!(
        deps.iter().any(|(_, t)| *t < 0),
        "the barrier contributed collective dependences: {deps:?}"
    );
}

#[test]
fn looped_rendezvous_isends_drain_in_order_at_waitall() {
    // Rendezvous-sized isends posted in a loop (rebinding the same
    // request variable) with the matching recvs posted only much later:
    // the sender's single waitall must block until the receiver drains
    // every message, and matching follows the send sequence.
    let src = r#"
        fn main() {
            if rank == 0 {
                for i in 0 .. 3 {
                    let s = isend(dst = 1, tag = i, bytes = 1m);
                }
                waitall();
            } else {
                comp(cycles = 23_000_000); // 10 ms before the first recv
                for i in 0 .. 3 {
                    recv(src = 0, tag = i);
                }
            }
        }
    "#;
    let deps = run_deps(src, 2);
    assert_eq!(deps, vec![(0, 0), (0, 1), (0, 2)]);

    let res = run(src, 2).unwrap();
    assert!(
        res.rank_elapsed[0] >= 0.01,
        "waitall blocked on the rendezvous handshakes: {}",
        res.rank_elapsed[0]
    );
}

#[test]
fn waitall_after_unmatched_wildcard_irecv_deadlocks() {
    // The inverse corner: a wildcard irecv with no sender anywhere must
    // surface as a deadlock (not an infinite quiescence loop) when the
    // rank does wait on it.
    let src = r#"
        fn main() {
            if rank == 0 {
                let q = irecv(src = any, tag = any);
                waitall();
            }
        }
    "#;
    let err = run(src, 2).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }));
}
