//! The PMPI-equivalent interposition layer.
//!
//! Performance tools attach to the simulator by implementing [`Hook`].
//! Every callback returns the **virtual-time cost** (seconds) of whatever
//! recording the tool performed for that event; the engine charges it to
//! the rank's clock. This models tool overhead inside the simulation, so
//! "ScalAna adds 3.5%, Scalasca adds 25%" comparisons (paper Table I,
//! Fig. 10, Fig. 13) are measured rather than asserted.
//!
//! The callbacks correspond to what the paper's instrumentation sees:
//! - [`Hook::on_comp`] — computation attributed to a PSG vertex (the
//!   paper's PAPI timer samples),
//! - [`Hook::on_mpi_enter`] / [`Hook::on_mpi_exit`] — PMPI wrappers,
//!   with resolved parameters (the `MPI_Wait` source/tag resolution of
//!   paper Fig. 5 happens in the engine: exit events carry the matched
//!   peer),
//! - [`Hook::on_comm_dep`] — one matched message: the inter-process
//!   dependence edge, with the receiver's wait time,
//! - [`Hook::on_indirect_call`] — a resolved indirect call (paper
//!   §III-B3).

use scalana_graph::{CtxId, MpiKind, VertexId};
use scalana_lang::ast::NodeId;

/// Computation attributed to a vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompEvent {
    /// Executing rank.
    pub rank: usize,
    /// Attributed PSG vertex.
    pub vertex: VertexId,
    /// Rank clock when the interval started.
    pub start: f64,
    /// Interval length in virtual seconds.
    pub duration: f64,
    /// Instructions retired in the interval.
    pub tot_ins: f64,
    /// Cycles in the interval.
    pub tot_cyc: f64,
    /// Load/store instructions.
    pub lst_ins: f64,
    /// L2 misses.
    pub l2_miss: f64,
    /// Branch mispredictions.
    pub br_miss: f64,
}

/// An MPI operation is about to execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpiEnterEvent {
    /// Executing rank.
    pub rank: usize,
    /// The MPI vertex.
    pub vertex: VertexId,
    /// Operation kind.
    pub kind: MpiKind,
    /// Resolved destination rank (sends), if applicable.
    pub dst: Option<i64>,
    /// Resolved source rank (receives; may be the wildcard -1).
    pub src: Option<i64>,
    /// Resolved tag (may be the wildcard -1).
    pub tag: Option<i64>,
    /// Payload bytes, if applicable.
    pub bytes: Option<u64>,
    /// Rank clock at entry.
    pub time: f64,
}

/// An MPI operation completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpiExitEvent {
    /// Executing rank.
    pub rank: usize,
    /// The MPI vertex.
    pub vertex: VertexId,
    /// Operation kind.
    pub kind: MpiKind,
    /// Rank clock at exit.
    pub time: f64,
    /// Total virtual seconds inside the operation.
    pub elapsed: f64,
    /// Of `elapsed`, seconds blocked waiting on other ranks.
    pub wait_time: f64,
}

/// One matched message: the inter-process communication dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommDepEvent {
    /// Sending rank.
    pub src_rank: usize,
    /// Vertex that issued the send.
    pub src_vertex: VertexId,
    /// Receiving rank.
    pub dst_rank: usize,
    /// Vertex at which the receiver consumed the message (`MPI_Recv`,
    /// `MPI_Wait`, `MPI_Waitall`, `MPI_Sendrecv`).
    pub dst_vertex: VertexId,
    /// Message tag (as matched).
    pub tag: i64,
    /// Payload size.
    pub bytes: u64,
    /// Seconds the receiver was blocked on this message (0 when the
    /// message was already available). Algorithm 1 prunes dependence
    /// edges without wait.
    pub wait_time: f64,
    /// Receiver clock when the dependence completed.
    pub time: f64,
}

/// A resolved indirect call.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectCallEvent {
    /// Executing rank.
    pub rank: usize,
    /// Caller context.
    pub ctx: CtxId,
    /// The `call` statement.
    pub stmt: NodeId,
    /// Resolved target function.
    pub callee: String,
}

/// A performance tool attached to the simulation. All methods return the
/// virtual-time cost of the tool's own processing for the event.
#[allow(unused_variables)]
pub trait Hook {
    /// A run is starting.
    fn on_run_start(&mut self, nprocs: usize) {}

    /// Computation attributed to a vertex.
    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        0.0
    }

    /// MPI operation entry.
    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        0.0
    }

    /// MPI operation exit.
    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        0.0
    }

    /// A matched message (communication dependence). Charged to the
    /// *receiving* rank.
    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        0.0
    }

    /// A resolved indirect call.
    fn on_indirect_call(&mut self, ev: &IndirectCallEvent) -> f64 {
        0.0
    }

    /// The run finished; per-rank elapsed virtual time.
    fn on_run_end(&mut self, rank_elapsed: &[f64]) {}
}

/// Forward through mutable references so callers can chain a borrowed
/// hook (including a `&mut dyn Hook`) without giving up ownership —
/// e.g. `ChainHook(&mut profiler, observer)`.
impl<H: Hook + ?Sized> Hook for &mut H {
    fn on_run_start(&mut self, nprocs: usize) {
        (**self).on_run_start(nprocs);
    }
    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        (**self).on_comp(ev)
    }
    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        (**self).on_mpi_enter(ev)
    }
    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        (**self).on_mpi_exit(ev)
    }
    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        (**self).on_comm_dep(ev)
    }
    fn on_indirect_call(&mut self, ev: &IndirectCallEvent) -> f64 {
        (**self).on_indirect_call(ev)
    }
    fn on_run_end(&mut self, rank_elapsed: &[f64]) {
        (**self).on_run_end(rank_elapsed);
    }
}

/// The no-op hook: the uninstrumented baseline run.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl Hook for NullHook {}

/// Chain two hooks (e.g. a tool plus an event counter); costs add.
pub struct ChainHook<A, B>(pub A, pub B);

impl<A: Hook, B: Hook> Hook for ChainHook<A, B> {
    fn on_run_start(&mut self, nprocs: usize) {
        self.0.on_run_start(nprocs);
        self.1.on_run_start(nprocs);
    }
    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        self.0.on_comp(ev) + self.1.on_comp(ev)
    }
    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        self.0.on_mpi_enter(ev) + self.1.on_mpi_enter(ev)
    }
    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        self.0.on_mpi_exit(ev) + self.1.on_mpi_exit(ev)
    }
    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        self.0.on_comm_dep(ev) + self.1.on_comm_dep(ev)
    }
    fn on_indirect_call(&mut self, ev: &IndirectCallEvent) -> f64 {
        self.0.on_indirect_call(ev) + self.1.on_indirect_call(ev)
    }
    fn on_run_end(&mut self, rank_elapsed: &[f64]) {
        self.0.on_run_end(rank_elapsed);
        self.1.on_run_end(rank_elapsed);
    }
}

/// A hook that simply counts events (used in tests and ablations).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingHook {
    /// Comp events seen.
    pub comps: u64,
    /// MPI entries seen.
    pub mpi_enters: u64,
    /// MPI exits seen.
    pub mpi_exits: u64,
    /// Dependence events seen.
    pub comm_deps: u64,
    /// Indirect calls seen.
    pub indirect_calls: u64,
}

impl Hook for CountingHook {
    fn on_comp(&mut self, _ev: &CompEvent) -> f64 {
        self.comps += 1;
        0.0
    }
    fn on_mpi_enter(&mut self, _ev: &MpiEnterEvent) -> f64 {
        self.mpi_enters += 1;
        0.0
    }
    fn on_mpi_exit(&mut self, _ev: &MpiExitEvent) -> f64 {
        self.mpi_exits += 1;
        0.0
    }
    fn on_comm_dep(&mut self, _ev: &CommDepEvent) -> f64 {
        self.comm_deps += 1;
        0.0
    }
    fn on_indirect_call(&mut self, _ev: &IndirectCallEvent) -> f64 {
        self.indirect_calls += 1;
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_hook_sums_costs() {
        struct Fixed(f64);
        impl Hook for Fixed {
            fn on_comp(&mut self, _ev: &CompEvent) -> f64 {
                self.0
            }
        }
        let mut chain = ChainHook(Fixed(0.25), Fixed(0.5));
        let ev = CompEvent {
            rank: 0,
            vertex: 0,
            start: 0.0,
            duration: 1.0,
            tot_ins: 0.0,
            tot_cyc: 0.0,
            lst_ins: 0.0,
            l2_miss: 0.0,
            br_miss: 0.0,
        };
        assert_eq!(chain.on_comp(&ev), 0.75);
    }

    #[test]
    fn null_hook_is_free() {
        let mut h = NullHook;
        let ev = MpiExitEvent {
            rank: 0,
            vertex: 0,
            kind: MpiKind::Barrier,
            time: 1.0,
            elapsed: 0.5,
            wait_time: 0.25,
        };
        assert_eq!(h.on_mpi_exit(&ev), 0.0);
    }
}
