//! Expression evaluation.
//!
//! Total semantics: division/modulo by zero yield zero (the simulator
//! must never trap on a workload expression), arithmetic wraps. Reserved
//! variables `rank`, `nprocs`, and `any` resolve from the evaluation
//! context, program parameters from the run configuration.

use crate::value::{Env, Value};
use scalana_lang::ast::{BinOp, BuiltinFn, Expr, UnOp, ANY_VALUE, VAR_ANY, VAR_NPROCS, VAR_RANK};
use scalana_lang::Program;
use std::collections::HashMap;

/// Program parameters interned to dense slots at simulation setup.
///
/// The interpreter resolves parameters on every expression evaluation;
/// going through a `HashMap<String, i64>` put string hashing in the
/// innermost eval loop. Interning once up front leaves a sorted name
/// table (binary-searched without hashing or allocation) whose hits read
/// a plain `Vec<i64>` shared by every rank of the run.
#[derive(Debug, Clone, Default)]
pub struct ParamTable {
    /// Sorted parameter names, parallel to `values`.
    names: Vec<Box<str>>,
    /// Dense slot array the eval loop reads.
    values: Vec<i64>,
}

impl ParamTable {
    /// Intern a program's declared parameters merged with run overrides
    /// (overrides may introduce names the program does not declare,
    /// matching the historical `HashMap` merge).
    pub fn build(program: &Program, overrides: &HashMap<String, i64>) -> ParamTable {
        let mut table =
            ParamTable::from_pairs(program.params.iter().map(|p| (p.name.as_str(), p.default)));
        // Deterministic override order (HashMap iteration is not).
        let mut sorted: Vec<(&str, i64)> =
            overrides.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        sorted.sort_unstable_by_key(|(k, _)| *k);
        for (name, value) in sorted {
            table.set(name, value);
        }
        table
    }

    /// Intern an explicit name/value list (later entries override).
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, i64)>) -> ParamTable {
        let mut table = ParamTable::default();
        for (name, value) in pairs {
            table.set(name, value);
        }
        table
    }

    /// Insert or overwrite one parameter.
    pub fn set(&mut self, name: &str, value: i64) {
        match self.slot(name) {
            Ok(i) => self.values[i] = value,
            Err(i) => {
                self.names.insert(i, name.into());
                self.values.insert(i, value);
            }
        }
    }

    /// Resolve a parameter by name.
    #[inline]
    pub fn get(&self, name: &str) -> Option<i64> {
        self.slot(name).ok().map(|i| self.values[i])
    }

    /// The dense value slots (sorted-name order).
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    #[inline]
    fn slot(&self, name: &str) -> Result<usize, usize> {
        self.names.binary_search_by(|n| n.as_ref().cmp(name))
    }
}

/// Evaluation context: the rank's identity plus run parameters.
pub struct EvalCtx<'a> {
    /// Executing rank.
    pub rank: i64,
    /// Total rank count.
    pub nprocs: i64,
    /// Interned program parameters (defaults merged with overrides).
    pub params: &'a ParamTable,
}

/// Evaluate an expression to a [`Value`].
pub fn eval(expr: &Expr, env: &Env, ctx: &EvalCtx<'_>) -> Value {
    match expr {
        Expr::Int(v) => Value::Int(*v),
        Expr::Var(name) => lookup(name, env, ctx),
        Expr::FuncRef(name) => Value::Func(name.clone()),
        Expr::Unary { op, expr } => {
            let v = eval_int(expr, env, ctx);
            Value::Int(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => i64::from(v == 0),
            })
        }
        Expr::Binary { op, lhs, rhs } => Value::Int(eval_bin(*op, lhs, rhs, env, ctx)),
        Expr::Builtin { func, args } => {
            let a = eval_int(&args[0], env, ctx);
            Value::Int(match func {
                BuiltinFn::Min => a.min(eval_int(&args[1], env, ctx)),
                BuiltinFn::Max => a.max(eval_int(&args[1], env, ctx)),
                BuiltinFn::Abs => a.wrapping_abs(),
                BuiltinFn::Log2 => {
                    if a <= 1 {
                        0
                    } else {
                        63 - a.leading_zeros() as i64
                    }
                }
            })
        }
    }
}

/// Evaluate to an integer; function references coerce to 0 (checked
/// programs never do arithmetic on them).
pub fn eval_int(expr: &Expr, env: &Env, ctx: &EvalCtx<'_>) -> i64 {
    eval(expr, env, ctx).as_int().unwrap_or(0)
}

fn lookup(name: &str, env: &Env, ctx: &EvalCtx<'_>) -> Value {
    match name {
        VAR_RANK => Value::Int(ctx.rank),
        VAR_NPROCS => Value::Int(ctx.nprocs),
        VAR_ANY => Value::Int(ANY_VALUE),
        _ => {
            if let Some(v) = env.get(name) {
                v.clone()
            } else if let Some(p) = ctx.params.get(name) {
                Value::Int(p)
            } else {
                // Unreachable for checked programs.
                Value::Int(0)
            }
        }
    }
}

fn eval_bin(op: BinOp, lhs: &Expr, rhs: &Expr, env: &Env, ctx: &EvalCtx<'_>) -> i64 {
    // Short-circuit logical operators.
    match op {
        BinOp::And => {
            return if eval(lhs, env, ctx).truthy() && eval(rhs, env, ctx).truthy() {
                1
            } else {
                0
            };
        }
        BinOp::Or => {
            return if eval(lhs, env, ctx).truthy() || eval(rhs, env, ctx).truthy() {
                1
            } else {
                0
            };
        }
        _ => {}
    }
    let a = eval_int(lhs, env, ctx);
    let b = eval_int(rhs, env, ctx);
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Mod => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_lang::builder::*;

    fn ctx(params: &ParamTable) -> EvalCtx<'_> {
        EvalCtx {
            rank: 3,
            nprocs: 8,
            params,
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        let params = ParamTable::default();
        let env = Env::new();
        let e = int(1) + int(2) * int(3);
        assert_eq!(eval_int(&e, &env, &ctx(&params)), 7);
    }

    #[test]
    fn reserved_variables() {
        let params = ParamTable::default();
        let env = Env::new();
        assert_eq!(eval_int(&rank(), &env, &ctx(&params)), 3);
        assert_eq!(eval_int(&nprocs(), &env, &ctx(&params)), 8);
        assert_eq!(eval_int(&any(), &env, &ctx(&params)), -1);
    }

    #[test]
    fn params_resolve_and_locals_shadow() {
        let mut params = ParamTable::default();
        params.set("N", 100);
        let mut env = Env::new();
        assert_eq!(eval_int(&var("N"), &env, &ctx(&params)), 100);
        env.define("N", Value::Int(5));
        assert_eq!(eval_int(&var("N"), &env, &ctx(&params)), 5);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let params = ParamTable::default();
        let env = Env::new();
        assert_eq!(eval_int(&(int(10) / int(0)), &env, &ctx(&params)), 0);
        assert_eq!(eval_int(&(int(10) % int(0)), &env, &ctx(&params)), 0);
    }

    #[test]
    fn comparisons_and_logic() {
        let params = ParamTable::default();
        let env = Env::new();
        assert_eq!(eval_int(&lt(int(1), int(2)), &env, &ctx(&params)), 1);
        assert_eq!(eval_int(&and(int(1), int(0)), &env, &ctx(&params)), 0);
        assert_eq!(eval_int(&or(int(0), int(7)), &env, &ctx(&params)), 1);
        let not_zero = scalana_lang::ast::Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(int(0)),
        };
        assert_eq!(eval_int(&not_zero, &env, &ctx(&params)), 1);
    }

    #[test]
    fn builtins() {
        let params = ParamTable::default();
        let env = Env::new();
        assert_eq!(eval_int(&max(int(3), int(9)), &env, &ctx(&params)), 9);
        assert_eq!(eval_int(&min(int(3), int(9)), &env, &ctx(&params)), 3);
        assert_eq!(eval_int(&abs(-int(5)), &env, &ctx(&params)), 5);
        assert_eq!(eval_int(&log2(int(1)), &env, &ctx(&params)), 0);
        assert_eq!(eval_int(&log2(int(2)), &env, &ctx(&params)), 1);
        assert_eq!(eval_int(&log2(int(1024)), &env, &ctx(&params)), 10);
        assert_eq!(eval_int(&log2(int(1025)), &env, &ctx(&params)), 10);
    }

    #[test]
    fn funcref_value() {
        let params = ParamTable::default();
        let env = Env::new();
        assert_eq!(
            eval(&func_ref("leaf"), &env, &ctx(&params)),
            Value::Func("leaf".to_string())
        );
    }

    #[test]
    fn wrapping_no_panic() {
        let params = ParamTable::default();
        let env = Env::new();
        let e = int(i64::MAX) + int(1);
        let _ = eval_int(&e, &env, &ctx(&params)); // must not panic
    }
}
