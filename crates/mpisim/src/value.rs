//! Runtime values and lexical environments for the interpreter.

use std::fmt;

/// A MiniMPI runtime value: 64-bit integers (which also serve as request
/// handles) or function references for indirect calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Integer (arithmetic, booleans as 0/1, request ids).
    Int(i64),
    /// `&func` reference.
    Func(String),
}

impl Value {
    /// Integer content, or `None` for function references.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Func(_) => None,
        }
    }

    /// Truthiness: nonzero integers are true; function refs are true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Func(_) => true,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Func(name) => write!(f, "&{name}"),
        }
    }
}

/// A block-scoped variable environment (one per call frame).
///
/// Stored as one flat entry stack plus scope start offsets rather than a
/// stack of hash maps: frames hold a handful of live variables, so a
/// reverse linear scan over short strings beats hashing every lookup in
/// the interpreter's hot loop, `push_scope`/`pop_scope` are an integer
/// push/truncate, and popped entries release no per-scope table.
#[derive(Debug, Default)]
pub struct Env {
    entries: Vec<(Box<str>, Value)>,
    /// Start index of each open scope in `entries`.
    scope_starts: Vec<usize>,
}

impl Env {
    /// Fresh environment with one root scope.
    pub fn new() -> Env {
        Env {
            entries: Vec::new(),
            scope_starts: vec![0],
        }
    }

    /// Enter a nested block scope.
    pub fn push_scope(&mut self) {
        self.scope_starts.push(self.entries.len());
    }

    /// Leave the innermost block scope.
    pub fn pop_scope(&mut self) {
        debug_assert!(self.scope_starts.len() > 1, "cannot pop the root scope");
        if let Some(start) = self.scope_starts.pop() {
            self.entries.truncate(start);
        }
    }

    /// Define (or shadow) a variable in the innermost scope.
    pub fn define(&mut self, name: &str, value: Value) {
        let start = *self.scope_starts.last().expect("root scope");
        for (n, v) in self.entries[start..].iter_mut().rev() {
            if **n == *name {
                *v = value;
                return;
            }
        }
        self.entries.push((name.into(), value));
    }

    /// Reassign the nearest definition of `name`. Semantic checking
    /// guarantees it exists.
    pub fn assign(&mut self, name: &str, value: Value) {
        for (n, v) in self.entries.iter_mut().rev() {
            if **n == *name {
                *v = value;
                return;
            }
        }
        // Unreachable for checked programs; define defensively.
        self.entries.push((name.into(), value));
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| **n == *name)
            .map(|(_, v)| v)
    }

    /// Current scope depth (for tests).
    pub fn depth(&self) -> usize {
        self.scope_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_shadows_and_restores() {
        let mut env = Env::new();
        env.define("x", Value::Int(1));
        env.push_scope();
        env.define("x", Value::Int(2));
        assert_eq!(env.get("x"), Some(&Value::Int(2)));
        env.pop_scope();
        assert_eq!(env.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn assign_updates_outer_scope() {
        let mut env = Env::new();
        env.define("x", Value::Int(1));
        env.push_scope();
        env.assign("x", Value::Int(9));
        env.pop_scope();
        assert_eq!(env.get("x"), Some(&Value::Int(9)));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::Func("f".into()).truthy());
        assert_eq!(Value::Func("f".into()).as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Func("foo".into()).to_string(), "&foo");
    }
}
