//! # scalana-mpisim — deterministic discrete-event MPI simulator
//!
//! The paper evaluates ScalAna on real MPI programs running on Gorgon and
//! the Tianhe-2 supercomputer with PAPI-based sampling. Neither real MPI
//! nor PMU hardware is available in this reproduction, so this crate
//! provides the closest synthetic equivalent: a **discrete-event
//! simulator** in which every rank is a suspendable MiniMPI interpreter
//! with its own virtual clock and simulated PMU counters.
//!
//! Why this preserves the paper's behaviour: scaling-loss phenomena —
//! wait states, delay propagation through chains of non-blocking
//! point-to-point communication, load imbalance, non-scaling loops — are
//! *timing structure*. A deterministic event simulation reproduces that
//! structure exactly, at thousands of ranks, on one machine, which is
//! what the detection pipeline consumes.
//!
//! Key pieces:
//! - [`machine`]: the platform model (core frequency, per-rank speed
//!   heterogeneity, LogGP-style network, collective cost models, seeded
//!   noise),
//! - [`interp`]: the per-rank interpreter (explicit control stack so a
//!   rank suspends mid-program at blocking MPI operations),
//! - [`engine`]: the scheduler and message-matching core (eager and
//!   rendezvous point-to-point, wildcard receives, non-blocking request
//!   tracking, sequence-matched collectives),
//! - [`hook`]: the PMPI-equivalent interposition layer. Hooks observe
//!   computation, MPI enter/exit, matched communication dependences, and
//!   indirect-call resolution, and *return the virtual-time cost* of
//!   whatever recording they do — which is how tool overhead (paper
//!   Table I, Fig. 10, Fig. 13) is measured faithfully inside the
//!   simulation.
//!
//! ```
//! use scalana_lang::parse_program;
//! use scalana_graph::{build_psg, PsgOptions};
//! use scalana_mpisim::{Simulation, SimConfig};
//!
//! let src = r#"
//! fn main() {
//!     comp(cycles = 100k);
//!     allreduce(bytes = 8);
//! }
//! "#;
//! let program = parse_program("demo.mmpi", src).unwrap();
//! let psg = build_psg(&program, &PsgOptions::default());
//! let result = Simulation::new(&program, &psg, SimConfig::with_nprocs(8))
//!     .run()
//!     .unwrap();
//! assert_eq!(result.rank_elapsed.len(), 8);
//! assert!(result.total_time() > 0.0);
//! ```

pub mod engine;
pub mod eval;
pub mod hook;
pub mod interp;
pub mod machine;
pub mod value;

pub use engine::{SimConfig, SimError, SimResult, Simulation};
pub use hook::{
    ChainHook, CommDepEvent, CompEvent, Hook, IndirectCallEvent, MpiEnterEvent, MpiExitEvent,
    NullHook,
};
pub use machine::{CoreSpeed, MachineConfig, NoiseConfig};
pub use value::Value;
