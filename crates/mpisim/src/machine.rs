//! Platform model: CPU, memory penalty, network, collectives, noise.
//!
//! Loosely calibrated to the paper's Gorgon testbed (dual Xeon E5-2670v3,
//! 100 Gb/s 4xEDR InfiniBand): 2.3 GHz cores, ~1 µs latency, ~10 GB/s
//! effective point-to-point bandwidth. Collective costs use standard
//! binomial-tree / recursive-doubling models, so wait states scale as
//! `log2(p)` the way real MPI libraries behave.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-rank relative core speed.
#[derive(Debug, Clone)]
pub enum CoreSpeed {
    /// All ranks run at the nominal frequency.
    Uniform,
    /// Rank `r` runs at `factors[r % factors.len()]` times nominal.
    /// Used to reproduce the Nekbone case study, where memory access
    /// speed differs between the cores ranks are bound to.
    PerRank(Vec<f64>),
}

impl CoreSpeed {
    /// Speed factor of one rank (1.0 = nominal).
    pub fn factor(&self, rank: usize) -> f64 {
        match self {
            CoreSpeed::Uniform => 1.0,
            CoreSpeed::PerRank(factors) => {
                if factors.is_empty() {
                    1.0
                } else {
                    factors[rank % factors.len()]
                }
            }
        }
    }
}

/// Multiplicative noise on computation times (OS jitter, turbo, etc.).
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Maximum relative perturbation (0.02 = ±2%). Zero disables noise.
    pub amplitude: f64,
    /// Seed; together with the rank it makes per-rank streams
    /// deterministic.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            amplitude: 0.0,
            seed: 0x5ca1ab1e,
        }
    }
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Core frequency in Hz (cycles of `comp` per virtual second).
    pub freq_hz: f64,
    /// Per-rank speed heterogeneity.
    pub core_speed: CoreSpeed,
    /// One-way network latency in seconds.
    pub net_latency: f64,
    /// Point-to-point bandwidth in bytes/second.
    pub net_bandwidth: f64,
    /// CPU-side cost of posting/completing one MPI operation, seconds.
    pub mpi_overhead: f64,
    /// Messages at or below this size use the eager protocol (the sender
    /// does not block); larger messages rendezvous.
    pub eager_threshold: u64,
    /// Extra cycles charged per L2 miss (memory stall model).
    pub miss_penalty_cycles: f64,
    /// Computation-time noise.
    pub noise: NoiseConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            freq_hz: 2.3e9,
            core_speed: CoreSpeed::Uniform,
            net_latency: 1.0e-6,
            net_bandwidth: 10.0e9,
            mpi_overhead: 0.5e-6,
            eager_threshold: 64 * 1024,
            miss_penalty_cycles: 150.0,
            noise: NoiseConfig::default(),
        }
    }
}

impl MachineConfig {
    /// Seconds to execute `cycles` (plus miss stalls) on `rank`.
    pub fn comp_seconds(&self, rank: usize, cycles: f64, l2_miss: f64) -> f64 {
        let effective = cycles + l2_miss * self.miss_penalty_cycles;
        effective / (self.freq_hz * self.core_speed.factor(rank))
    }

    /// Wire time of one message: latency plus serialization.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.net_latency + bytes as f64 / self.net_bandwidth
    }

    /// Whether a message is sent eagerly.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Collective completion delay beyond the last arrival, for a
    /// `p`-rank communicator moving `bytes` per rank.
    pub fn collective_seconds(&self, kind: CollectiveModel, p: usize, bytes: u64) -> f64 {
        let p = p.max(1);
        let stages = (p as f64).log2().ceil().max(1.0);
        let hop = self.transfer_seconds(bytes);
        match kind {
            CollectiveModel::Barrier => self.net_latency * stages,
            CollectiveModel::Bcast | CollectiveModel::Reduce => hop * stages,
            // Recursive doubling: reduce-scatter + allgather.
            CollectiveModel::Allreduce => 2.0 * hop * stages,
            // Pairwise exchange: p-1 rounds, each paying latency +
            // serialization — the small-message alltoall wall that makes
            // FT/IS communication-bound at scale.
            CollectiveModel::Alltoall => {
                (p as f64 - 1.0) * (self.net_latency + bytes as f64 / self.net_bandwidth)
            }
            CollectiveModel::Allgather => {
                hop * stages + (p as f64 - 1.0) * bytes as f64 / self.net_bandwidth
            }
        }
    }
}

/// Collective cost-model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveModel {
    /// Barrier.
    Barrier,
    /// One-to-all tree.
    Bcast,
    /// All-to-one tree.
    Reduce,
    /// Recursive doubling.
    Allreduce,
    /// Pairwise exchange.
    Alltoall,
    /// Ring/tree gather.
    Allgather,
}

/// Deterministic per-rank noise stream.
#[derive(Debug)]
pub struct NoiseStream {
    rng: SmallRng,
    amplitude: f64,
}

impl NoiseStream {
    /// Stream for one rank.
    pub fn new(config: &NoiseConfig, rank: usize) -> NoiseStream {
        let seed = config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(rank as u64);
        NoiseStream {
            rng: SmallRng::seed_from_u64(seed),
            amplitude: config.amplitude,
        }
    }

    /// Multiplicative factor for the next computation interval
    /// (1.0 when noise is disabled).
    pub fn next_factor(&mut self) -> f64 {
        if self.amplitude == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-self.amplitude..=self.amplitude)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_time_scales_with_cycles_and_speed() {
        let m = MachineConfig::default();
        let t1 = m.comp_seconds(0, 2.3e9, 0.0);
        assert!((t1 - 1.0).abs() < 1e-9, "2.3G cycles at 2.3GHz = 1s");
        let slow = MachineConfig {
            core_speed: CoreSpeed::PerRank(vec![1.0, 0.5]),
            ..MachineConfig::default()
        };
        assert!(slow.comp_seconds(1, 1e9, 0.0) > slow.comp_seconds(0, 1e9, 0.0));
        assert_eq!(slow.core_speed.factor(3), 0.5); // wraps modulo
    }

    #[test]
    fn miss_penalty_adds_stall_cycles() {
        let m = MachineConfig::default();
        let base = m.comp_seconds(0, 1000.0, 0.0);
        let with_misses = m.comp_seconds(0, 1000.0, 10.0);
        assert!(with_misses > base);
        let expected = (1000.0 + 10.0 * m.miss_penalty_cycles) / m.freq_hz;
        assert!((with_misses - expected).abs() < 1e-15);
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let m = MachineConfig::default();
        assert!(m.transfer_seconds(0) >= m.net_latency);
        let small = m.transfer_seconds(8);
        let big = m.transfer_seconds(1 << 20);
        assert!(big > small);
    }

    #[test]
    fn eager_threshold() {
        let m = MachineConfig::default();
        assert!(m.is_eager(1024));
        assert!(m.is_eager(64 * 1024));
        assert!(!m.is_eager(64 * 1024 + 1));
    }

    #[test]
    fn collective_costs_grow_with_scale() {
        let m = MachineConfig::default();
        for kind in [
            CollectiveModel::Barrier,
            CollectiveModel::Bcast,
            CollectiveModel::Allreduce,
            CollectiveModel::Alltoall,
            CollectiveModel::Allgather,
        ] {
            let t8 = m.collective_seconds(kind, 8, 1024);
            let t256 = m.collective_seconds(kind, 256, 1024);
            assert!(t256 > t8, "{kind:?} must cost more at larger scale");
        }
    }

    #[test]
    fn allreduce_costs_twice_bcast() {
        let m = MachineConfig::default();
        let b = m.collective_seconds(CollectiveModel::Bcast, 64, 4096);
        let a = m.collective_seconds(CollectiveModel::Allreduce, 64, 4096);
        assert!((a - 2.0 * b).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_rank() {
        let cfg = NoiseConfig {
            amplitude: 0.05,
            seed: 42,
        };
        let mut a = NoiseStream::new(&cfg, 3);
        let mut b = NoiseStream::new(&cfg, 3);
        let mut c = NoiseStream::new(&cfg, 4);
        let xs: Vec<f64> = (0..8).map(|_| a.next_factor()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.next_factor()).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.next_factor()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        for x in xs {
            assert!((0.95..=1.05).contains(&x));
        }
    }

    #[test]
    fn zero_amplitude_noise_is_identity() {
        let mut s = NoiseStream::new(
            &NoiseConfig {
                amplitude: 0.0,
                seed: 1,
            },
            0,
        );
        assert_eq!(s.next_factor(), 1.0);
    }
}
