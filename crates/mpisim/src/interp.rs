//! Per-rank interpreter with an explicit control stack.
//!
//! Each rank executes the MiniMPI AST directly, but keeps its control
//! state (block cursors, loop counters, call frames) in an explicit stack
//! so execution can *suspend* at blocking MPI operations and resume when
//! the engine completes them — the discrete-event equivalent of a real
//! process sitting inside `MPI_Recv`.
//!
//! Attribution: every executed statement is mapped to its contracted PSG
//! vertex through the `(context, statement)` attribution map. Statements
//! inside *unresolved* indirect calls fall back to the `CallSite` vertex
//! (`attr_override`), exactly the coarse attribution the paper has before
//! runtime refinement fills the graph in.

use crate::eval::{eval, eval_int, EvalCtx, ParamTable};
use crate::hook::{CompEvent, Hook, IndirectCallEvent};
use crate::machine::{MachineConfig, NoiseStream};
use crate::value::{Env, Value};
use scalana_graph::{AttrIndex, CtxId, MpiKind, Psg, VertexId};
use scalana_lang::ast::{Block, CompAttrs, Expr, MpiOp, Program, Stmt, StmtKind};

/// Per-statement interpreter micro-costs, in cycles. These model the
/// instructions a real compiled program spends on bookkeeping and give
/// `Comp` vertices made of scalar statements a small, realistic cost.
#[derive(Debug, Clone, Copy)]
pub struct StmtCosts {
    /// `let` / assignment / `return`.
    pub simple: f64,
    /// One loop-iteration test+increment.
    pub loop_iter: f64,
    /// One branch evaluation.
    pub branch: f64,
    /// One function call (frame setup).
    pub call: f64,
}

impl Default for StmtCosts {
    fn default() -> Self {
        StmtCosts {
            simple: 4.0,
            loop_iter: 4.0,
            branch: 4.0,
            call: 20.0,
        }
    }
}

/// Cumulative simulated PMU counters of one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Pmu {
    /// Instructions retired.
    pub tot_ins: f64,
    /// Cycles.
    pub tot_cyc: f64,
    /// Load/store instructions.
    pub lst_ins: f64,
    /// L2 misses.
    pub l2_miss: f64,
    /// Branch mispredictions.
    pub br_miss: f64,
}

/// Everything a stepping rank needs from the engine.
pub struct StepCtx<'e> {
    /// The contracted PSG (indirect-call transitions, root vertex).
    pub psg: &'e Psg,
    /// Dense attribution/transition snapshot of the PSG (the hot-loop
    /// replacement for its hash-map lookups).
    pub attr: &'e AttrIndex,
    /// Platform model.
    pub machine: &'e MachineConfig,
    /// The attached tool.
    pub hook: &'e mut dyn Hook,
    /// Interned program parameters (defaults merged with run overrides).
    pub params: &'e ParamTable,
    /// Rank count.
    pub nprocs: usize,
    /// Micro-cost table.
    pub costs: StmtCosts,
}

/// An MPI operation with all parameters evaluated, yielded to the engine.
/// Request-variable names are borrowed from the program AST, so yielding
/// a call never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiCall<'p> {
    /// Attributed vertex.
    pub vertex: VertexId,
    /// Operation kind.
    pub kind: MpiKind,
    /// Evaluated operands.
    pub op: EvaluatedOp<'p>,
}

/// Evaluated MPI operands.
#[derive(Debug, Clone, PartialEq)]
pub enum EvaluatedOp<'p> {
    /// Blocking send.
    Send {
        /// Destination rank.
        dst: i64,
        /// Tag.
        tag: i64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive.
    Recv {
        /// Source rank or -1.
        src: i64,
        /// Tag or -1.
        tag: i64,
    },
    /// Combined exchange.
    Sendrecv {
        /// Send destination.
        dst: i64,
        /// Send tag.
        sendtag: i64,
        /// Receive source or -1.
        src: i64,
        /// Receive tag or -1.
        recvtag: i64,
        /// Payload bytes each way.
        bytes: u64,
    },
    /// Non-blocking send; the engine binds `req_name`.
    Isend {
        /// Destination rank.
        dst: i64,
        /// Tag.
        tag: i64,
        /// Payload bytes.
        bytes: u64,
        /// Request variable to bind (borrowed from the AST).
        req_name: &'p str,
    },
    /// Non-blocking receive; the engine binds `req_name`.
    Irecv {
        /// Source rank or -1.
        src: i64,
        /// Tag or -1.
        tag: i64,
        /// Request variable to bind (borrowed from the AST).
        req_name: &'p str,
    },
    /// Wait on one request.
    Wait {
        /// Request id.
        req: i64,
    },
    /// Wait on all outstanding requests.
    Waitall,
    /// A collective operation.
    Collective {
        /// Root rank (bcast/reduce; 0 otherwise).
        root: i64,
        /// Payload bytes.
        bytes: u64,
    },
}

/// Why a stepping rank returned control to the engine.
#[derive(Debug)]
pub enum StepOutcome<'p> {
    /// Hit an MPI operation; the engine must process it.
    Mpi(MpiCall<'p>),
    /// The program finished on this rank.
    Done,
    /// Exceeded the per-rank step budget (runaway loop guard).
    BudgetExhausted,
}

enum Ctl<'p> {
    Seq {
        block: &'p Block,
        idx: usize,
    },
    For {
        var: String,
        next: i64,
        end: i64,
        body: &'p Block,
        stmt_id: scalana_lang::NodeId,
    },
    While {
        cond: &'p Expr,
        body: &'p Block,
        stmt_id: scalana_lang::NodeId,
    },
}

struct Frame<'p> {
    ctx: CtxId,
    attr_override: Option<VertexId>,
    env: Env,
    control: Vec<Ctl<'p>>,
}

/// Execution state of one simulated rank.
pub struct RankState<'p> {
    /// Rank id.
    pub rank: usize,
    /// Virtual clock, seconds.
    pub clock: f64,
    /// Cumulative PMU counters.
    pub pmu: Pmu,
    /// Remaining statement budget.
    pub steps_left: u64,
    program: &'p Program,
    frames: Vec<Frame<'p>>,
    noise: NoiseStream,
    /// Micro-cost batching: (vertex, cycles) accumulated since last flush.
    pending: Option<(VertexId, f64)>,
    finished: bool,
}

impl<'p> RankState<'p> {
    /// Set up a rank at the entry of `main`.
    pub fn new(
        rank: usize,
        program: &'p Program,
        psg: &Psg,
        machine: &MachineConfig,
        max_steps: u64,
    ) -> RankState<'p> {
        let main = program.main();
        let mut env = Env::new();
        env.push_scope();
        let frame = Frame {
            ctx: psg.root_ctx(),
            attr_override: None,
            env,
            control: vec![Ctl::Seq {
                block: &main.body,
                idx: 0,
            }],
        };
        RankState {
            rank,
            clock: 0.0,
            pmu: Pmu::default(),
            steps_left: max_steps,
            program,
            frames: vec![frame],
            noise: NoiseStream::new(&machine.noise, rank),
            pending: None,
            finished: false,
        }
    }

    /// Whether the program completed on this rank.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Define a variable in the current frame (engine binds request ids).
    pub fn define_var(&mut self, name: &str, value: Value) {
        if let Some(frame) = self.frames.last_mut() {
            frame.env.define(name, value);
        }
    }

    fn eval_ctx<'e>(&self, params: &'e ParamTable, nprocs: usize) -> EvalCtx<'e> {
        EvalCtx {
            rank: self.rank as i64,
            nprocs: nprocs as i64,
            params,
        }
    }

    /// The vertex to attribute `stmt` to in the current frame.
    fn attr_vertex(&self, ctx: &StepCtx<'_>, stmt_id: scalana_lang::NodeId) -> VertexId {
        let frame = self.frames.last().expect("running rank has a frame");
        ctx.attr
            .vertex_of(frame.ctx, stmt_id)
            .or(frame.attr_override)
            .unwrap_or(ctx.psg.root)
    }

    /// Accumulate interpreter bookkeeping cycles on a vertex; flushed as
    /// one `CompEvent` when the vertex changes or at MPI boundaries.
    fn charge_micro(&mut self, ctx: &mut StepCtx<'_>, vertex: VertexId, cycles: f64) {
        match &mut self.pending {
            Some((v, acc)) if *v == vertex => *acc += cycles,
            Some(_) => {
                self.flush_pending(ctx);
                self.pending = Some((vertex, cycles));
            }
            None => self.pending = Some((vertex, cycles)),
        }
    }

    /// Emit the pending micro-cost batch as a computation event.
    pub fn flush_pending(&mut self, ctx: &mut StepCtx<'_>) {
        let Some((vertex, cycles)) = self.pending.take() else {
            return;
        };
        let duration = ctx.machine.comp_seconds(self.rank, cycles, 0.0);
        let ev = CompEvent {
            rank: self.rank,
            vertex,
            start: self.clock,
            duration,
            tot_ins: cycles,
            tot_cyc: cycles,
            lst_ins: cycles * 0.3,
            l2_miss: 0.0,
            br_miss: 0.0,
        };
        self.clock += duration;
        self.pmu.tot_ins += ev.tot_ins;
        self.pmu.tot_cyc += ev.tot_cyc;
        self.pmu.lst_ins += ev.lst_ins;
        let cost = ctx.hook.on_comp(&ev);
        self.clock += cost;
    }

    /// Run until the next MPI operation, completion, or budget
    /// exhaustion.
    pub fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepOutcome<'p> {
        loop {
            if self.steps_left == 0 {
                return StepOutcome::BudgetExhausted;
            }
            let Some(frame) = self.frames.last_mut() else {
                self.flush_pending(ctx);
                self.finished = true;
                return StepOutcome::Done;
            };
            let Some(top) = frame.control.last_mut() else {
                self.frames.pop();
                continue;
            };
            match top {
                Ctl::Seq { block, idx } => {
                    if *idx >= block.stmts.len() {
                        frame.env.pop_scope();
                        frame.control.pop();
                        continue;
                    }
                    let stmt = &block.stmts[*idx];
                    *idx += 1;
                    self.steps_left -= 1;
                    if let Some(call) = self.exec_stmt(stmt, ctx) {
                        return StepOutcome::Mpi(call);
                    }
                }
                Ctl::For {
                    var,
                    next,
                    end,
                    body,
                    stmt_id,
                } => {
                    if *next < *end {
                        let value = *next;
                        *next += 1;
                        let var = var.clone();
                        let body: &'p Block = body;
                        let stmt_id = *stmt_id;
                        frame.env.assign(&var, Value::Int(value));
                        frame.env.push_scope();
                        frame.control.push(Ctl::Seq {
                            block: body,
                            idx: 0,
                        });
                        self.steps_left = self.steps_left.saturating_sub(1);
                        let vertex = self.attr_vertex(ctx, stmt_id);
                        self.charge_micro(ctx, vertex, ctx.costs.loop_iter);
                    } else {
                        frame.env.pop_scope();
                        frame.control.pop();
                    }
                }
                Ctl::While {
                    cond,
                    body,
                    stmt_id,
                } => {
                    let cond: &'p Expr = cond;
                    let body: &'p Block = body;
                    let stmt_id = *stmt_id;
                    let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                    let frame = self.frames.last_mut().expect("frame");
                    let take = eval(cond, &frame.env, &ec).truthy();
                    if take {
                        frame.env.push_scope();
                        frame.control.push(Ctl::Seq {
                            block: body,
                            idx: 0,
                        });
                    } else {
                        frame.control.pop();
                    }
                    self.steps_left = self.steps_left.saturating_sub(1);
                    let vertex = self.attr_vertex(ctx, stmt_id);
                    self.charge_micro(ctx, vertex, ctx.costs.loop_iter);
                }
            }
        }
    }

    /// Execute one statement; `Some` means an MPI operation was reached.
    fn exec_stmt(&mut self, stmt: &'p Stmt, ctx: &mut StepCtx<'_>) -> Option<MpiCall<'p>> {
        let vertex = self.attr_vertex(ctx, stmt.id);
        match &stmt.kind {
            StmtKind::Let { name, value } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last_mut().expect("frame");
                let v = eval(value, &frame.env, &ec);
                frame.env.define(name, v);
                self.charge_micro(ctx, vertex, ctx.costs.simple);
                None
            }
            StmtKind::Assign { name, value } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last_mut().expect("frame");
                let v = eval(value, &frame.env, &ec);
                frame.env.assign(name, v);
                self.charge_micro(ctx, vertex, ctx.costs.simple);
                None
            }
            StmtKind::Comp(attrs) => {
                self.exec_comp(stmt, attrs, vertex, ctx);
                None
            }
            StmtKind::For {
                var,
                start,
                end,
                body,
            } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last_mut().expect("frame");
                let s = eval_int(start, &frame.env, &ec);
                let e = eval_int(end, &frame.env, &ec);
                frame.env.push_scope();
                frame.env.define(var, Value::Int(s));
                frame.control.push(Ctl::For {
                    var: var.clone(),
                    next: s,
                    end: e,
                    body,
                    stmt_id: stmt.id,
                });
                self.charge_micro(ctx, vertex, ctx.costs.simple);
                None
            }
            StmtKind::While { cond, body } => {
                let frame = self.frames.last_mut().expect("frame");
                frame.control.push(Ctl::While {
                    cond,
                    body,
                    stmt_id: stmt.id,
                });
                self.charge_micro(ctx, vertex, ctx.costs.simple);
                None
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last_mut().expect("frame");
                let take = eval(cond, &frame.env, &ec).truthy();
                let block = if take {
                    Some(then_block)
                } else {
                    else_block.as_ref()
                };
                if let Some(block) = block {
                    frame.env.push_scope();
                    frame.control.push(Ctl::Seq { block, idx: 0 });
                }
                self.charge_micro(ctx, vertex, ctx.costs.branch);
                None
            }
            StmtKind::Call { callee, args } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last().expect("frame");
                let arg_values: Vec<Value> =
                    args.iter().map(|a| eval(a, &frame.env, &ec)).collect();
                let new_ctx = ctx.attr.enter_call(frame.ctx, stmt.id).unwrap_or(frame.ctx);
                let attr_override = frame.attr_override;
                self.push_call_frame(ctx, callee, arg_values, new_ctx, attr_override);
                self.charge_micro(ctx, vertex, ctx.costs.call);
                None
            }
            StmtKind::CallIndirect { target, args } => {
                let ec = self.eval_ctx(ctx.params, ctx.nprocs);
                let frame = self.frames.last().expect("frame");
                let target_value = eval(target, &frame.env, &ec);
                let Value::Func(callee) = target_value else {
                    // Calling a non-function value: no-op (checked
                    // programs only reach this with valid refs).
                    return None;
                };
                let arg_values: Vec<Value> =
                    args.iter().map(|a| eval(a, &frame.env, &ec)).collect();
                let caller_ctx = frame.ctx;
                let caller_override = frame.attr_override;
                let cost = ctx.hook.on_indirect_call(&IndirectCallEvent {
                    rank: self.rank,
                    ctx: caller_ctx,
                    stmt: stmt.id,
                    callee: callee.clone(),
                });
                self.clock += cost;
                match ctx.psg.enter_indirect(caller_ctx, stmt.id, &callee) {
                    Some(new_ctx) => {
                        self.push_call_frame(ctx, &callee, arg_values, new_ctx, caller_override);
                    }
                    None => {
                        // Unresolved: attribute the whole callee to the
                        // CallSite vertex until the PSG is refined.
                        let override_vertex =
                            ctx.psg.vertex_of(caller_ctx, stmt.id).or(caller_override);
                        self.push_call_frame(ctx, &callee, arg_values, caller_ctx, override_vertex);
                    }
                }
                self.charge_micro(ctx, vertex, ctx.costs.call);
                None
            }
            StmtKind::Return => {
                self.frames.pop();
                None
            }
            StmtKind::Mpi(op) => {
                self.flush_pending(ctx);
                let call = self.eval_mpi(op, vertex, ctx);
                Some(call)
            }
        }
    }

    fn push_call_frame(
        &mut self,
        _ctx: &mut StepCtx<'_>,
        callee: &str,
        args: Vec<Value>,
        new_ctx: CtxId,
        attr_override: Option<VertexId>,
    ) {
        let func = self
            .program
            .function(callee)
            .expect("checked program: callee exists");
        let mut env = Env::new();
        env.push_scope();
        for (param, value) in func.params.iter().zip(args) {
            env.define(param, value);
        }
        self.frames.push(Frame {
            ctx: new_ctx,
            attr_override,
            env,
            control: vec![Ctl::Seq {
                block: &func.body,
                idx: 0,
            }],
        });
    }

    fn exec_comp(
        &mut self,
        _stmt: &'p Stmt,
        attrs: &CompAttrs,
        vertex: VertexId,
        ctx: &mut StepCtx<'_>,
    ) {
        self.flush_pending(ctx);
        let ec = self.eval_ctx(ctx.params, ctx.nprocs);
        let frame = self.frames.last().expect("frame");
        let cycles = eval_int(&attrs.cycles, &frame.env, &ec).max(0) as f64;
        let ins = attrs
            .ins
            .as_ref()
            .map(|e| eval_int(e, &frame.env, &ec).max(0) as f64)
            .unwrap_or(cycles);
        let lst = attrs
            .lst
            .as_ref()
            .map(|e| eval_int(e, &frame.env, &ec).max(0) as f64)
            .unwrap_or(ins / 4.0);
        let l2_miss = attrs
            .l2_miss
            .as_ref()
            .map(|e| eval_int(e, &frame.env, &ec).max(0) as f64)
            .unwrap_or(lst / 100.0);
        let br_miss = attrs
            .br_miss
            .as_ref()
            .map(|e| eval_int(e, &frame.env, &ec).max(0) as f64)
            .unwrap_or(ins / 1000.0);

        let noise = self.noise.next_factor();
        let duration = ctx.machine.comp_seconds(self.rank, cycles, l2_miss) * noise;
        let ev = CompEvent {
            rank: self.rank,
            vertex,
            start: self.clock,
            duration,
            tot_ins: ins,
            tot_cyc: cycles + l2_miss * ctx.machine.miss_penalty_cycles,
            lst_ins: lst,
            l2_miss,
            br_miss,
        };
        self.clock += duration;
        self.pmu.tot_ins += ev.tot_ins;
        self.pmu.tot_cyc += ev.tot_cyc;
        self.pmu.lst_ins += ev.lst_ins;
        self.pmu.l2_miss += ev.l2_miss;
        self.pmu.br_miss += ev.br_miss;
        let cost = ctx.hook.on_comp(&ev);
        self.clock += cost;
    }

    fn eval_mpi(&mut self, op: &'p MpiOp, vertex: VertexId, ctx: &mut StepCtx<'_>) -> MpiCall<'p> {
        let ec = self.eval_ctx(ctx.params, ctx.nprocs);
        let frame = self.frames.last().expect("frame");
        let env = &frame.env;
        let kind = MpiKind::of(op);
        let evaluated = match op {
            MpiOp::Send { dst, tag, bytes } => EvaluatedOp::Send {
                dst: eval_int(dst, env, &ec),
                tag: eval_int(tag, env, &ec),
                bytes: eval_int(bytes, env, &ec).max(0) as u64,
            },
            MpiOp::Recv { src, tag } => EvaluatedOp::Recv {
                src: eval_int(src, env, &ec),
                tag: eval_int(tag, env, &ec),
            },
            MpiOp::Sendrecv {
                dst,
                sendtag,
                src,
                recvtag,
                bytes,
            } => EvaluatedOp::Sendrecv {
                dst: eval_int(dst, env, &ec),
                sendtag: eval_int(sendtag, env, &ec),
                src: eval_int(src, env, &ec),
                recvtag: eval_int(recvtag, env, &ec),
                bytes: eval_int(bytes, env, &ec).max(0) as u64,
            },
            MpiOp::Isend {
                dst,
                tag,
                bytes,
                req,
            } => EvaluatedOp::Isend {
                dst: eval_int(dst, env, &ec),
                tag: eval_int(tag, env, &ec),
                bytes: eval_int(bytes, env, &ec).max(0) as u64,
                req_name: req,
            },
            MpiOp::Irecv { src, tag, req } => EvaluatedOp::Irecv {
                src: eval_int(src, env, &ec),
                tag: eval_int(tag, env, &ec),
                req_name: req,
            },
            MpiOp::Wait { req } => EvaluatedOp::Wait {
                req: eval_int(req, env, &ec),
            },
            MpiOp::Waitall => EvaluatedOp::Waitall,
            MpiOp::Barrier => EvaluatedOp::Collective { root: 0, bytes: 0 },
            MpiOp::Bcast { root, bytes } | MpiOp::Reduce { root, bytes } => {
                EvaluatedOp::Collective {
                    root: eval_int(root, env, &ec),
                    bytes: eval_int(bytes, env, &ec).max(0) as u64,
                }
            }
            MpiOp::Allreduce { bytes } | MpiOp::Alltoall { bytes } | MpiOp::Allgather { bytes } => {
                EvaluatedOp::Collective {
                    root: 0,
                    bytes: eval_int(bytes, env, &ec).max(0) as u64,
                }
            }
        };
        MpiCall {
            vertex,
            kind,
            op: evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NullHook;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;

    fn run_single(src: &str) -> (f64, Pmu) {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let machine = MachineConfig::default();
        let params = ParamTable::build(&program, &Default::default());
        let attr = AttrIndex::build(&psg, program.next_node_id);
        let mut hook = NullHook;
        let mut ctx = StepCtx {
            psg: &psg,
            attr: &attr,
            machine: &machine,
            hook: &mut hook,
            params: &params,
            nprocs: 1,
            costs: StmtCosts::default(),
        };
        let mut rank = RankState::new(0, &program, &psg, &machine, 10_000_000);
        match rank.step(&mut ctx) {
            StepOutcome::Done => {}
            other => panic!("expected completion, got {other:?}"),
        }
        (rank.clock, rank.pmu)
    }

    #[test]
    fn comp_advances_clock_and_pmu() {
        let (clock, pmu) = run_single(
            "fn main() { comp(cycles = 2_300_000, ins = 1000, \
                                        lst = 100, miss = 0, brmiss = 1); }",
        );
        assert!(clock >= 0.001, "2.3M cycles at 2.3GHz >= 1ms, got {clock}");
        assert_eq!(pmu.tot_ins, 1000.0);
        assert_eq!(pmu.lst_ins, 100.0);
        assert_eq!(pmu.br_miss, 1.0);
    }

    #[test]
    fn comp_defaults_derive_from_cycles() {
        let (_, pmu) = run_single("fn main() { comp(cycles = 1000); }");
        assert_eq!(pmu.tot_ins, 1000.0);
        assert_eq!(pmu.lst_ins, 250.0); // ins / 4
        assert_eq!(pmu.l2_miss, 2.5); // lst / 100
        assert_eq!(pmu.br_miss, 1.0); // ins / 1000
    }

    #[test]
    fn loops_execute_correct_iteration_count() {
        let (_, pmu) = run_single(
            "fn main() { for i in 0 .. 10 { comp(cycles = 100, ins = 100, lst = 0, \
             miss = 0, brmiss = 0); } }",
        );
        // 10 iterations * 100 ins of comp, plus interpreter micro-costs.
        assert!(pmu.tot_ins >= 1000.0);
        assert!(
            pmu.tot_ins < 1400.0,
            "micro-costs should stay small: {}",
            pmu.tot_ins
        );
    }

    #[test]
    fn while_and_assign_work() {
        let (_, pmu) = run_single(
            "fn main() { let x = 8; while x > 0 { x = x / 2; comp(cycles = 50, ins = 50, \
             lst = 0, miss = 0, brmiss = 0); } }",
        );
        // x: 8 -> 4 -> 2 -> 1 -> 0 : 4 iterations.
        assert!(pmu.tot_ins >= 200.0);
    }

    #[test]
    fn calls_and_recursion_terminate() {
        let (_, pmu) = run_single(
            "fn main() { rec(5); } \
             fn rec(n) { if n > 0 { comp(cycles = 10, ins = 10, lst = 0, miss = 0, \
             brmiss = 0); rec(n - 1); } }",
        );
        assert!(pmu.tot_ins >= 50.0);
    }

    #[test]
    fn mpi_yields_with_evaluated_params() {
        let program = parse_program(
            "t.mmpi",
            "fn main() { send(dst = (rank + 1) % nprocs, tag = 7, bytes = 4k); }",
        )
        .unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let machine = MachineConfig::default();
        let params = ParamTable::default();
        let attr = AttrIndex::build(&psg, program.next_node_id);
        let mut hook = NullHook;
        let mut ctx = StepCtx {
            psg: &psg,
            attr: &attr,
            machine: &machine,
            hook: &mut hook,
            params: &params,
            nprocs: 4,
            costs: StmtCosts::default(),
        };
        let mut rank = RankState::new(2, &program, &psg, &machine, 1000);
        let StepOutcome::Mpi(call) = rank.step(&mut ctx) else {
            panic!()
        };
        assert_eq!(call.kind, MpiKind::Send);
        assert_eq!(
            call.op,
            EvaluatedOp::Send {
                dst: 3,
                tag: 7,
                bytes: 4096
            }
        );
        // Resuming after the engine would handle the send finishes main.
        let StepOutcome::Done = rank.step(&mut ctx) else {
            panic!()
        };
        assert!(rank.is_finished());
    }

    #[test]
    fn budget_exhaustion_detected() {
        let program =
            parse_program("t.mmpi", "fn main() { let x = 1; while x > 0 { x = 1; } }").unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let machine = MachineConfig::default();
        let params = ParamTable::default();
        let attr = AttrIndex::build(&psg, program.next_node_id);
        let mut hook = NullHook;
        let mut ctx = StepCtx {
            psg: &psg,
            attr: &attr,
            machine: &machine,
            hook: &mut hook,
            params: &params,
            nprocs: 1,
            costs: StmtCosts::default(),
        };
        let mut rank = RankState::new(0, &program, &psg, &machine, 500);
        let StepOutcome::BudgetExhausted = rank.step(&mut ctx) else {
            panic!("expected budget exhaustion")
        };
    }

    #[test]
    fn rank_dependent_branching() {
        let src = "fn main() { if rank == 0 { comp(cycles = 1000, ins = 1000, lst = 0, \
                    miss = 0, brmiss = 0); } }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let machine = MachineConfig::default();
        let params = ParamTable::default();
        let attr = AttrIndex::build(&psg, program.next_node_id);
        let mut hook = NullHook;
        let mut ctx = StepCtx {
            psg: &psg,
            attr: &attr,
            machine: &machine,
            hook: &mut hook,
            params: &params,
            nprocs: 2,
            costs: StmtCosts::default(),
        };
        let mut r0 = RankState::new(0, &program, &psg, &machine, 1000);
        let mut r1 = RankState::new(1, &program, &psg, &machine, 1000);
        let StepOutcome::Done = r0.step(&mut ctx) else {
            panic!()
        };
        let StepOutcome::Done = r1.step(&mut ctx) else {
            panic!()
        };
        assert!(r0.pmu.tot_ins > r1.pmu.tot_ins);
    }
}
