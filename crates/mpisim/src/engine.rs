//! The discrete-event scheduler and MPI semantics.
//!
//! Ranks execute independently on their own virtual clocks and interact
//! only through MPI. The engine runs every runnable rank until it blocks
//! (or finishes), then performs a *quiescence matching phase*: complete
//! collectives whose participants all arrived, match posted receives
//! against deposited messages, and re-check blocked waits. The cycle
//! repeats until all ranks finish; no progress with live ranks is a
//! deadlock (reported with per-rank state).
//!
//! Correctness notes:
//! - Matching is **time-based and deterministic**: a specific-source
//!   receive takes the sender's earliest unconsumed matching message (by
//!   per-sender send sequence); a wildcard receive takes the candidate
//!   with the smallest (arrival, source, sequence). Wildcards are only
//!   matched at quiescence, when every potential sender is blocked or
//!   done, so no earlier message can still appear.
//! - Receives of one rank match in post order (MPI ordering rule); a
//!   wildcard receive at the head of the queue blocks later receives
//!   until quiescence resolves it.
//! - Point-to-point timing: eager messages (≤ threshold) let the sender
//!   proceed after overhead + serialization; rendezvous messages block
//!   the sender until the receiver posts, then both complete after the
//!   transfer. `MPI_Sendrecv` uses buffered sends (deadlock-free, as
//!   real implementations guarantee).
//! - Collectives match by per-rank sequence number; mismatched kinds are
//!   reported as errors. Completion uses the cost models in
//!   [`crate::machine`] and emits straggler → waiter dependence edges so
//!   detection can see who delayed a collective.
//!
//! Hot-path layout: each mailbox is a slab of `Copy` messages indexed by
//! per-`(source, tag)` FIFO queues, so the common specific receive is a
//! queue-front pop instead of a scan over every message ever delivered;
//! wildcard receives fold the (few) queue candidates in deposit order,
//! reproducing the historical scan's tie-breaks exactly. Blocked waits
//! record *which* requests they cover (`ReqWait`) instead of cloning
//! request-id vectors, program parameters are interned once per run
//! ([`ParamTable`]), and statement attribution goes through a dense
//! [`AttrIndex`] snapshot rather than hash-map lookups per statement.

use crate::eval::ParamTable;
use crate::hook::{CommDepEvent, Hook, MpiEnterEvent, MpiExitEvent, NullHook};
use crate::interp::{EvaluatedOp, MpiCall, Pmu, RankState, StepCtx, StepOutcome, StmtCosts};
use crate::machine::{CollectiveModel, MachineConfig};
use crate::value::Value;
use scalana_graph::{AttrIndex, MpiKind, Psg, VertexId};
use scalana_lang::Program;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of ranks.
    pub nprocs: usize,
    /// Program-parameter overrides (merged over the declared defaults).
    pub params: HashMap<String, i64>,
    /// Platform model. Shared behind an `Arc` so configuring many runs
    /// (one per scale, one per tool) never deep-copies the model.
    pub machine: Arc<MachineConfig>,
    /// Per-rank statement budget (runaway-loop guard).
    pub max_steps_per_rank: u64,
    /// Interpreter micro-cost table.
    pub costs: StmtCosts,
}

impl SimConfig {
    /// Default configuration at a given scale.
    pub fn with_nprocs(nprocs: usize) -> SimConfig {
        SimConfig {
            nprocs,
            params: HashMap::new(),
            machine: Arc::new(MachineConfig::default()),
            max_steps_per_rank: 200_000_000,
            costs: StmtCosts::default(),
        }
    }

    /// Builder-style parameter override.
    pub fn with_param(mut self, name: &str, value: i64) -> SimConfig {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Mutable access to the platform model (clones it if shared).
    pub fn machine_mut(&mut self) -> &mut MachineConfig {
        Arc::make_mut(&mut self.machine)
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Rank count.
    pub nprocs: usize,
    /// Per-rank end-to-end virtual time.
    pub rank_elapsed: Vec<f64>,
    /// Per-rank cumulative PMU counters.
    pub rank_pmu: Vec<Pmu>,
}

impl SimResult {
    /// End-to-end runtime (slowest rank).
    pub fn total_time(&self) -> f64 {
        self.rank_elapsed.iter().copied().fold(0.0, f64::max)
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No rank can make progress.
    Deadlock {
        /// Human-readable per-rank state dump.
        detail: String,
    },
    /// Ranks disagreed on the next collective.
    CollectiveMismatch {
        /// Description of the disagreement.
        detail: String,
    },
    /// A rank exceeded its statement budget.
    StepLimit {
        /// The offending rank.
        rank: usize,
    },
    /// An MPI operation addressed a rank outside the communicator.
    InvalidRank {
        /// The executing rank.
        rank: usize,
        /// The operation name.
        op: &'static str,
        /// The bad value.
        value: i64,
    },
    /// `wait` on an unknown (or already-completed) request id.
    UnknownRequest {
        /// The executing rank.
        rank: usize,
        /// The request id.
        req: i64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::CollectiveMismatch { detail } => {
                write!(f, "collective mismatch: {detail}")
            }
            SimError::StepLimit { rank } => write!(f, "rank {rank} exceeded step budget"),
            SimError::InvalidRank { rank, op, value } => {
                write!(f, "rank {rank}: `{op}` addressed invalid rank {value}")
            }
            SimError::UnknownRequest { rank, req } => {
                write!(f, "rank {rank}: wait on unknown request {req}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Entry point: couple a program, its PSG, and a config; optionally
/// attach a [`Hook`]; then [`run`](Simulation::run).
pub struct Simulation<'p, 'g, 'h> {
    program: &'p Program,
    psg: &'g Psg,
    config: SimConfig,
    hook: Option<&'h mut dyn Hook>,
}

impl<'p, 'g, 'h> Simulation<'p, 'g, 'h> {
    /// Create an uninstrumented simulation.
    pub fn new(program: &'p Program, psg: &'g Psg, config: SimConfig) -> Self {
        Simulation {
            program,
            psg,
            config,
            hook: None,
        }
    }

    /// Attach a performance tool.
    pub fn with_hook(mut self, hook: &'h mut dyn Hook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Run to completion.
    pub fn run(self) -> Result<SimResult, SimError> {
        let mut null = NullHook;
        let hook: &mut dyn Hook = match self.hook {
            Some(h) => h,
            None => &mut null,
        };
        let params = ParamTable::build(self.program, &self.config.params);
        Engine::new(self.program, self.psg, self.config, params, hook).run()
    }
}

// ----- internal machinery -----

#[derive(Debug, Clone, Copy)]
struct Message {
    src_rank: usize,
    src_vertex: VertexId,
    tag: i64,
    bytes: u64,
    /// Sender clock when the payload left (after overhead).
    send_time: f64,
    /// Per-sender monotonically increasing sequence (matching order).
    send_seq: u64,
    /// Earliest receiver availability (eager only; rendezvous computed
    /// at match time).
    arrival: f64,
    rendezvous: bool,
    /// For rendezvous: who to release when matched. `req` is `Some` for
    /// `isend`, `None` for a blocked blocking-send.
    rdv_sender: Option<(usize, Option<i64>)>,
    /// Receiver-side delivery order; wildcard matching folds candidates
    /// in this order to reproduce the historical scan's tie-breaks.
    deposit_seq: u64,
}

/// One rank's incoming messages: a slab of live messages indexed by
/// per-`(source, tag)` FIFO queues. Specific receives pop a queue front
/// in O(1); wildcard receives inspect only queue candidates instead of
/// every message ever delivered, and consumed slots are recycled instead
/// of accumulating for the whole run.
#[derive(Debug, Default)]
struct Mailbox {
    slots: Vec<Message>,
    free: Vec<u32>,
    /// Sparse queue table; distinct `(source, tag)` pairs per receiver
    /// are few, so a scanned `Vec` beats hashing and keeps iteration
    /// order deterministic (insertion order).
    queues: Vec<((usize, i64), VecDeque<u32>)>,
    deposits: u64,
}

impl Mailbox {
    fn deposit(&mut self, mut msg: Message) {
        msg.deposit_seq = self.deposits;
        self.deposits += 1;
        let key = (msg.src_rank, msg.tag);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = msg;
                s
            }
            None => {
                self.slots.push(msg);
                (self.slots.len() - 1) as u32
            }
        };
        match self.queues.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => q.push_back(slot),
            None => {
                let mut q = VecDeque::with_capacity(4);
                q.push_back(slot);
                self.queues.push((key, q));
            }
        }
    }

    #[inline]
    fn msg(&self, slot: u32) -> &Message {
        &self.slots[slot as usize]
    }

    /// Deterministic candidate selection (see module docs). Returns the
    /// slot of the matched message without consuming it.
    fn find_match(&self, src: i64, tag: i64) -> Option<u32> {
        if src >= 0 && tag >= 0 {
            // Fully specific: FIFO per (source, tag); the queue front has
            // the smallest send sequence.
            let key = (src as usize, tag);
            return self
                .queues
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, q)| q.front().copied());
        }
        if src >= 0 {
            // Any tag from one source: smallest send sequence across the
            // source's queue fronts (each queue is sequence-ascending).
            let mut best: Option<u32> = None;
            for (k, q) in &self.queues {
                if k.0 != src as usize {
                    continue;
                }
                let Some(&head) = q.front() else { continue };
                best = match best {
                    Some(b) if self.msg(b).send_seq <= self.msg(head).send_seq => Some(b),
                    _ => Some(head),
                };
            }
            return best;
        }
        // Wildcard source: fold every candidate in deposit order with the
        // historical comparator (same-source by sequence, cross-source by
        // (arrival, source, sequence)), which is order-sensitive.
        let mut candidates: Vec<u32> = Vec::new();
        for (k, q) in &self.queues {
            if tag >= 0 && k.1 != tag {
                continue;
            }
            candidates.extend(q.iter().copied());
        }
        candidates.sort_unstable_by_key(|&s| self.msg(s).deposit_seq);
        let mut best: Option<u32> = None;
        for s in candidates {
            best = match best {
                None => Some(s),
                Some(b) => {
                    let (msg, cur) = (self.msg(s), self.msg(b));
                    let better = if msg.src_rank == cur.src_rank {
                        msg.send_seq < cur.send_seq
                    } else {
                        (msg.arrival, msg.src_rank, msg.send_seq)
                            < (cur.arrival, cur.src_rank, cur.send_seq)
                    };
                    if better {
                        Some(s)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Remove a matched message and recycle its slot.
    fn consume(&mut self, slot: u32) -> Message {
        let msg = self.slots[slot as usize];
        let key = (msg.src_rank, msg.tag);
        if let Some((_, q)) = self.queues.iter_mut().find(|(k, _)| *k == key) {
            if let Some(pos) = q.iter().position(|&s| s == slot) {
                q.remove(pos);
            }
        }
        self.free.push(slot);
        msg
    }
}

#[derive(Debug, Clone, Copy)]
struct DepInfo {
    src_rank: usize,
    src_vertex: VertexId,
    tag: i64,
    bytes: u64,
}

#[derive(Debug, Clone, Copy)]
enum Request {
    RecvPending { src: i64, tag: i64, posted: f64 },
    SendPending,
    Complete { t: f64, dep: Option<DepInfo> },
}

/// Which requests a blocked operation waits on. `AllOutstanding` lets
/// `waitall` (and the quiescence re-checks) reference the live
/// outstanding set instead of cloning an id vector per wait — sound
/// because a blocked rank cannot post new requests.
#[derive(Debug, Clone, Copy)]
enum ReqWait {
    /// A single request (blocking recv, sendrecv, `wait`).
    One(i64),
    /// Every currently-outstanding non-blocking request (`waitall`).
    AllOutstanding,
}

#[derive(Debug, Clone, Copy)]
enum Blocked {
    /// Waiting until the covered requests complete (covers blocking
    /// recv, sendrecv, wait, waitall).
    OnRequests {
        reqs: ReqWait,
        kind: MpiKind,
        vertex: VertexId,
        enter: f64,
        ready: f64,
        /// Requests to drop from the outstanding set on completion.
        drop_outstanding: bool,
    },
    /// Rendezvous blocking send waiting for its receiver.
    RdvSend {
        kind: MpiKind,
        vertex: VertexId,
        enter: f64,
    },
    /// Arrived at a collective, waiting for the others.
    Collective { seq: u64, enter: f64 },
}

#[derive(Debug, Clone, Copy)]
enum Status {
    Running,
    Blocked(Blocked),
    Done,
}

#[derive(Debug, Clone, Copy)]
struct CollArrival {
    arrive: f64,
    vertex: VertexId,
    kind: MpiKind,
    bytes: u64,
    root: i64,
}

#[derive(Debug)]
struct CollInstance {
    /// Indexed by rank; dense so completion never iterates a hash map.
    arrivals: Vec<Option<CollArrival>>,
    arrived: usize,
}

impl CollInstance {
    fn new(nprocs: usize) -> CollInstance {
        CollInstance {
            arrivals: vec![None; nprocs],
            arrived: 0,
        }
    }
}

struct Engine<'p, 'g, 'h> {
    psg: &'g Psg,
    /// Dense `(ctx, stmt)` attribution snapshot of `psg`.
    attr: AttrIndex,
    config: SimConfig,
    params: ParamTable,
    hook: &'h mut dyn Hook,
    ranks: Vec<RankState<'p>>,
    status: Vec<Status>,
    runnable: VecDeque<usize>,
    mailboxes: Vec<Mailbox>,
    send_seq: Vec<u64>,
    requests: Vec<HashMap<i64, Request>>,
    next_req: Vec<i64>,
    /// Pending receive requests per rank, in post order.
    recv_order: Vec<VecDeque<i64>>,
    /// Un-waited non-blocking requests per rank (for `waitall`).
    outstanding: Vec<Vec<i64>>,
    coll_seq: Vec<u64>,
    collectives: HashMap<u64, CollInstance>,
}

enum MpiOutcome {
    Completed,
    BlockedNow,
}

impl<'p, 'g, 'h> Engine<'p, 'g, 'h> {
    fn new(
        program: &'p Program,
        psg: &'g Psg,
        config: SimConfig,
        params: ParamTable,
        hook: &'h mut dyn Hook,
    ) -> Self {
        let n = config.nprocs;
        let ranks = (0..n)
            .map(|r| RankState::new(r, program, psg, &config.machine, config.max_steps_per_rank))
            .collect();
        Engine {
            psg,
            attr: AttrIndex::build(psg, program.next_node_id),
            config,
            params,
            hook,
            ranks,
            status: vec![Status::Running; n],
            runnable: (0..n).collect(),
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            send_seq: vec![0; n],
            requests: vec![HashMap::new(); n],
            next_req: vec![1; n],
            recv_order: vec![VecDeque::new(); n],
            outstanding: vec![Vec::new(); n],
            coll_seq: vec![0; n],
            collectives: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        self.hook.on_run_start(self.config.nprocs);
        loop {
            // Phase 1: drain runnable ranks.
            while let Some(r) = self.runnable.pop_front() {
                if !matches!(self.status[r], Status::Running) {
                    continue;
                }
                self.run_rank(r)?;
            }
            // Phase 2: quiescence matching.
            let mut progress = false;
            progress |= self.complete_collectives()?;
            progress |= self.match_phase();
            if !progress {
                if self.status.iter().all(|s| matches!(s, Status::Done)) {
                    break;
                }
                return Err(SimError::Deadlock {
                    detail: self.deadlock_detail(),
                });
            }
        }
        let rank_elapsed: Vec<f64> = self.ranks.iter().map(|r| r.clock).collect();
        self.hook.on_run_end(&rank_elapsed);
        Ok(SimResult {
            nprocs: self.config.nprocs,
            rank_elapsed,
            rank_pmu: self.ranks.iter().map(|r| r.pmu).collect(),
        })
    }

    fn deadlock_detail(&self) -> String {
        let mut lines = Vec::new();
        for (r, s) in self.status.iter().enumerate() {
            let desc = match s {
                Status::Running => continue,
                Status::Done => continue,
                Status::Blocked(Blocked::OnRequests { kind, reqs, .. }) => {
                    let what = match reqs {
                        ReqWait::One(id) => format!("request {id}"),
                        ReqWait::AllOutstanding => {
                            format!("requests {:?}", self.outstanding[r])
                        }
                    };
                    format!("rank {r}: blocked in {} on {what}", kind.mpi_name())
                }
                Status::Blocked(Blocked::RdvSend { .. }) => {
                    format!("rank {r}: blocked in rendezvous send")
                }
                Status::Blocked(Blocked::Collective { seq, .. }) => {
                    format!("rank {r}: blocked in collective #{seq}")
                }
            };
            lines.push(desc);
            if lines.len() >= 8 {
                lines.push("...".to_string());
                break;
            }
        }
        lines.join("; ")
    }

    fn step_ctx(&mut self) -> (&mut Vec<RankState<'p>>, StepCtx<'_>) {
        let ctx = StepCtx {
            psg: self.psg,
            attr: &self.attr,
            machine: &self.config.machine,
            hook: self.hook,
            params: &self.params,
            nprocs: self.config.nprocs,
            costs: self.config.costs,
        };
        (&mut self.ranks, ctx)
    }

    fn run_rank(&mut self, r: usize) -> Result<(), SimError> {
        loop {
            let outcome = {
                let (ranks, mut ctx) = self.step_ctx();
                ranks[r].step(&mut ctx)
            };
            match outcome {
                StepOutcome::Done => {
                    self.status[r] = Status::Done;
                    return Ok(());
                }
                StepOutcome::BudgetExhausted => return Err(SimError::StepLimit { rank: r }),
                StepOutcome::Mpi(call) => match self.handle_mpi(r, call)? {
                    MpiOutcome::Completed => continue,
                    MpiOutcome::BlockedNow => return Ok(()),
                },
            }
        }
    }

    fn wake(&mut self, r: usize) {
        self.status[r] = Status::Running;
        self.runnable.push_back(r);
    }

    fn validate_rank(&self, r: usize, op: &'static str, value: i64) -> Result<usize, SimError> {
        if value >= 0 && (value as usize) < self.config.nprocs {
            Ok(value as usize)
        } else {
            Err(SimError::InvalidRank { rank: r, op, value })
        }
    }

    fn alloc_req(&mut self, r: usize, req: Request) -> i64 {
        let id = self.next_req[r];
        self.next_req[r] += 1;
        self.requests[r].insert(id, req);
        id
    }

    fn enter_event(&mut self, r: usize, call: &MpiCall<'_>) -> f64 {
        let (dst, src, tag, bytes) = match &call.op {
            EvaluatedOp::Send { dst, tag, bytes }
            | EvaluatedOp::Isend {
                dst, tag, bytes, ..
            } => (Some(*dst), None, Some(*tag), Some(*bytes)),
            EvaluatedOp::Recv { src, tag } | EvaluatedOp::Irecv { src, tag, .. } => {
                (None, Some(*src), Some(*tag), None)
            }
            EvaluatedOp::Sendrecv {
                dst, sendtag, src, ..
            } => (Some(*dst), Some(*src), Some(*sendtag), None),
            EvaluatedOp::Wait { .. } | EvaluatedOp::Waitall => (None, None, None, None),
            EvaluatedOp::Collective { root, bytes } => (Some(*root), None, None, Some(*bytes)),
        };
        let ev = MpiEnterEvent {
            rank: r,
            vertex: call.vertex,
            kind: call.kind,
            dst,
            src,
            tag,
            bytes,
            time: self.ranks[r].clock,
        };
        let cost = self.hook.on_mpi_enter(&ev);
        self.ranks[r].clock += cost;
        self.ranks[r].clock
    }

    fn exit_event(&mut self, r: usize, vertex: VertexId, kind: MpiKind, enter: f64, wait: f64) {
        let now = self.ranks[r].clock;
        let ev = MpiExitEvent {
            rank: r,
            vertex,
            kind,
            time: now,
            elapsed: now - enter,
            wait_time: wait,
        };
        let cost = self.hook.on_mpi_exit(&ev);
        self.ranks[r].clock += cost;
    }

    #[allow(clippy::too_many_arguments)] // protocol parameters are clearest flat
    fn deposit(
        &mut self,
        src: usize,
        dst: usize,
        src_vertex: VertexId,
        tag: i64,
        bytes: u64,
        send_time: f64,
        rendezvous: bool,
        rdv_sender: Option<(usize, Option<i64>)>,
    ) {
        let seq = self.send_seq[src];
        self.send_seq[src] += 1;
        let arrival = send_time + self.config.machine.transfer_seconds(bytes);
        self.mailboxes[dst].deposit(Message {
            src_rank: src,
            src_vertex,
            tag,
            bytes,
            send_time,
            send_seq: seq,
            arrival,
            rendezvous,
            rdv_sender,
            deposit_seq: 0, // assigned by the mailbox
        });
    }

    fn handle_mpi(&mut self, r: usize, call: MpiCall<'_>) -> Result<MpiOutcome, SimError> {
        let enter = self.enter_event(r, &call);
        let o = self.config.machine.mpi_overhead;
        let bw = self.config.machine.net_bandwidth;
        match call.op {
            EvaluatedOp::Send { dst, tag, bytes } => {
                let dst = self.validate_rank(r, "send", dst)?;
                let send_time = enter + o;
                if self.config.machine.is_eager(bytes) {
                    self.deposit(r, dst, call.vertex, tag, bytes, send_time, false, None);
                    self.ranks[r].clock = send_time + bytes as f64 / bw;
                    self.exit_event(r, call.vertex, call.kind, enter, 0.0);
                    Ok(MpiOutcome::Completed)
                } else {
                    self.deposit(
                        r,
                        dst,
                        call.vertex,
                        tag,
                        bytes,
                        send_time,
                        true,
                        Some((r, None)),
                    );
                    self.ranks[r].clock = send_time;
                    self.status[r] = Status::Blocked(Blocked::RdvSend {
                        kind: call.kind,
                        vertex: call.vertex,
                        enter,
                    });
                    Ok(MpiOutcome::BlockedNow)
                }
            }
            EvaluatedOp::Isend {
                dst,
                tag,
                bytes,
                req_name,
            } => {
                let dst = self.validate_rank(r, "isend", dst)?;
                let send_time = enter + o;
                let req = if self.config.machine.is_eager(bytes) {
                    let local_done = send_time + bytes as f64 / bw;
                    self.deposit(r, dst, call.vertex, tag, bytes, send_time, false, None);
                    self.alloc_req(
                        r,
                        Request::Complete {
                            t: local_done,
                            dep: None,
                        },
                    )
                } else {
                    let id = self.alloc_req(r, Request::SendPending);
                    self.deposit(
                        r,
                        dst,
                        call.vertex,
                        tag,
                        bytes,
                        send_time,
                        true,
                        Some((r, Some(id))),
                    );
                    id
                };
                self.outstanding[r].push(req);
                self.ranks[r].define_var(req_name, Value::Int(req));
                self.ranks[r].clock = send_time;
                self.exit_event(r, call.vertex, call.kind, enter, 0.0);
                Ok(MpiOutcome::Completed)
            }
            EvaluatedOp::Irecv { src, tag, req_name } => {
                if src >= 0 {
                    self.validate_rank(r, "irecv", src)?;
                }
                let posted = enter + o;
                let req = self.alloc_req(r, Request::RecvPending { src, tag, posted });
                self.recv_order[r].push_back(req);
                self.outstanding[r].push(req);
                self.ranks[r].define_var(req_name, Value::Int(req));
                self.ranks[r].clock = posted;
                self.exit_event(r, call.vertex, call.kind, enter, 0.0);
                Ok(MpiOutcome::Completed)
            }
            EvaluatedOp::Recv { src, tag } => {
                if src >= 0 {
                    self.validate_rank(r, "recv", src)?;
                }
                let posted = enter + o;
                self.ranks[r].clock = posted;
                let req = self.alloc_req(r, Request::RecvPending { src, tag, posted });
                self.recv_order[r].push_back(req);
                self.match_rank_recvs(r, false);
                self.finish_or_block(
                    r,
                    ReqWait::One(req),
                    call.kind,
                    call.vertex,
                    enter,
                    posted,
                    false,
                )
            }
            EvaluatedOp::Sendrecv {
                dst,
                sendtag,
                src,
                recvtag,
                bytes,
            } => {
                let dst = self.validate_rank(r, "sendrecv", dst)?;
                if src >= 0 {
                    self.validate_rank(r, "sendrecv", src)?;
                }
                let send_time = enter + o;
                // Sendrecv is deadlock-free: the send half is buffered.
                self.deposit(r, dst, call.vertex, sendtag, bytes, send_time, false, None);
                let posted = send_time + bytes as f64 / bw;
                self.ranks[r].clock = posted;
                let req = self.alloc_req(
                    r,
                    Request::RecvPending {
                        src,
                        tag: recvtag,
                        posted,
                    },
                );
                self.recv_order[r].push_back(req);
                self.match_rank_recvs(r, false);
                self.finish_or_block(
                    r,
                    ReqWait::One(req),
                    call.kind,
                    call.vertex,
                    enter,
                    posted,
                    false,
                )
            }
            EvaluatedOp::Wait { req } => {
                let posted = enter + o;
                self.ranks[r].clock = posted;
                if !self.requests[r].contains_key(&req) {
                    return Err(SimError::UnknownRequest { rank: r, req });
                }
                self.match_rank_recvs(r, false);
                self.finish_or_block(
                    r,
                    ReqWait::One(req),
                    call.kind,
                    call.vertex,
                    enter,
                    posted,
                    true,
                )
            }
            EvaluatedOp::Waitall => {
                let posted = enter + o;
                self.ranks[r].clock = posted;
                if self.outstanding[r].is_empty() {
                    self.exit_event(r, call.vertex, call.kind, enter, 0.0);
                    return Ok(MpiOutcome::Completed);
                }
                self.match_rank_recvs(r, false);
                self.finish_or_block(
                    r,
                    ReqWait::AllOutstanding,
                    call.kind,
                    call.vertex,
                    enter,
                    posted,
                    true,
                )
            }
            EvaluatedOp::Collective { root, bytes } => {
                if matches!(call.kind, MpiKind::Bcast | MpiKind::Reduce) {
                    self.validate_rank(r, "collective root", root)?;
                }
                let arrive = enter + o;
                self.ranks[r].clock = arrive;
                let seq = self.coll_seq[r];
                self.coll_seq[r] += 1;
                let n = self.config.nprocs;
                let inst = self
                    .collectives
                    .entry(seq)
                    .or_insert_with(|| CollInstance::new(n));
                if inst.arrivals[r].is_none() {
                    inst.arrived += 1;
                }
                inst.arrivals[r] = Some(CollArrival {
                    arrive,
                    vertex: call.vertex,
                    kind: call.kind,
                    bytes,
                    root,
                });
                self.status[r] = Status::Blocked(Blocked::Collective { seq, enter });
                Ok(MpiOutcome::BlockedNow)
            }
        }
    }

    /// If the covered requests are all complete, finish the operation
    /// now; otherwise block on them.
    #[allow(clippy::too_many_arguments)]
    fn finish_or_block(
        &mut self,
        r: usize,
        reqs: ReqWait,
        kind: MpiKind,
        vertex: VertexId,
        enter: f64,
        ready: f64,
        drop_outstanding: bool,
    ) -> Result<MpiOutcome, SimError> {
        if self.requests_complete(r, reqs) {
            self.complete_on_requests(r, reqs, kind, vertex, enter, ready, drop_outstanding);
            Ok(MpiOutcome::Completed)
        } else {
            self.status[r] = Status::Blocked(Blocked::OnRequests {
                reqs,
                kind,
                vertex,
                enter,
                ready,
                drop_outstanding,
            });
            Ok(MpiOutcome::BlockedNow)
        }
    }

    fn requests_complete(&self, r: usize, reqs: ReqWait) -> bool {
        let complete =
            |id: &i64| matches!(self.requests[r].get(id), Some(Request::Complete { .. }));
        match reqs {
            ReqWait::One(id) => complete(&id),
            ReqWait::AllOutstanding => self.outstanding[r].iter().all(complete),
        }
    }

    /// All covered requests complete: advance the clock, emit dependence
    /// and exit events, drop the requests.
    #[allow(clippy::too_many_arguments)]
    fn complete_on_requests(
        &mut self,
        r: usize,
        reqs: ReqWait,
        kind: MpiKind,
        vertex: VertexId,
        enter: f64,
        ready: f64,
        drop_outstanding: bool,
    ) {
        let one: [i64; 1];
        let taken: Vec<i64>;
        let ids: &[i64] = match reqs {
            ReqWait::One(id) => {
                one = [id];
                if drop_outstanding {
                    if let Some(pos) = self.outstanding[r].iter().position(|&x| x == id) {
                        self.outstanding[r].remove(pos);
                    }
                }
                &one
            }
            ReqWait::AllOutstanding => {
                debug_assert!(drop_outstanding, "waitall always drops its requests");
                taken = std::mem::take(&mut self.outstanding[r]);
                &taken
            }
        };
        let mut done = ready;
        for id in ids {
            if let Some(Request::Complete { t, .. }) = self.requests[r].get(id) {
                done = done.max(*t);
            }
        }
        self.ranks[r].clock = self.ranks[r].clock.max(done);
        let waited = (done - ready).max(0.0);
        // Emit one dependence edge per request that carried a message.
        for id in ids {
            if let Some(Request::Complete { t, dep: Some(dep) }) = self.requests[r].remove(id) {
                let ev = CommDepEvent {
                    src_rank: dep.src_rank,
                    src_vertex: dep.src_vertex,
                    dst_rank: r,
                    dst_vertex: vertex,
                    tag: dep.tag,
                    bytes: dep.bytes,
                    wait_time: (t - ready).max(0.0),
                    time: self.ranks[r].clock,
                };
                let cost = self.hook.on_comm_dep(&ev);
                self.ranks[r].clock += cost;
            }
        }
        self.exit_event(r, vertex, kind, enter, waited);
    }

    /// Match rank `r`'s pending receives against its mailbox, in post
    /// order. Wildcard receives only match at quiescence.
    fn match_rank_recvs(&mut self, r: usize, at_quiescence: bool) -> bool {
        let mut progressed = false;
        #[allow(clippy::while_let_loop)] // the loop has three exits; keep them explicit
        loop {
            let Some(&req_id) = self.recv_order[r].front() else {
                break;
            };
            let Some(&Request::RecvPending { src, tag, posted }) = self.requests[r].get(&req_id)
            else {
                // Stale entry; drop it.
                self.recv_order[r].pop_front();
                continue;
            };
            let wildcard = src < 0 || tag < 0;
            if wildcard && !at_quiescence {
                break;
            }
            let Some(slot) = self.mailboxes[r].find_match(src, tag) else {
                break;
            };
            let msg = self.mailboxes[r].consume(slot);
            let t = if msg.rendezvous {
                // Transfer starts when both sides are ready.
                let start = msg.send_time.max(posted);
                let finish = start + self.config.machine.transfer_seconds(msg.bytes);
                if let Some((sender, sreq)) = msg.rdv_sender {
                    self.release_rdv_sender(sender, sreq, finish);
                }
                finish
            } else {
                msg.arrival.max(posted)
            };
            self.requests[r].insert(
                req_id,
                Request::Complete {
                    t,
                    dep: Some(DepInfo {
                        src_rank: msg.src_rank,
                        src_vertex: msg.src_vertex,
                        tag: msg.tag,
                        bytes: msg.bytes,
                    }),
                },
            );
            self.recv_order[r].pop_front();
            progressed = true;
        }
        progressed
    }

    fn release_rdv_sender(&mut self, sender: usize, sreq: Option<i64>, finish: f64) {
        match sreq {
            Some(id) => {
                self.requests[sender].insert(
                    id,
                    Request::Complete {
                        t: finish,
                        dep: None,
                    },
                );
            }
            None => {
                if let Status::Blocked(Blocked::RdvSend {
                    kind,
                    vertex,
                    enter,
                }) = self.status[sender]
                {
                    let before = self.ranks[sender].clock;
                    self.ranks[sender].clock = before.max(finish);
                    let wait = (finish - before).max(0.0);
                    self.exit_event(sender, vertex, kind, enter, wait);
                    self.wake(sender);
                }
            }
        }
    }

    /// Quiescence matching: receives (incl. wildcards), then blocked
    /// request waits.
    fn match_phase(&mut self) -> bool {
        let mut progress = false;
        for r in 0..self.config.nprocs {
            progress |= self.match_rank_recvs(r, true);
        }
        for r in 0..self.config.nprocs {
            let Status::Blocked(Blocked::OnRequests {
                reqs,
                kind,
                vertex,
                enter,
                ready,
                drop_outstanding,
            }) = self.status[r]
            else {
                continue;
            };
            if self.requests_complete(r, reqs) {
                self.complete_on_requests(r, reqs, kind, vertex, enter, ready, drop_outstanding);
                self.wake(r);
                progress = true;
            }
        }
        progress
    }

    /// Complete every collective instance whose participants all arrived.
    fn complete_collectives(&mut self) -> Result<bool, SimError> {
        let mut ready: Vec<u64> = self
            .collectives
            .iter()
            .filter(|(_, inst)| inst.arrived == self.config.nprocs)
            .map(|(seq, _)| *seq)
            .collect();
        ready.sort_unstable();
        let mut progress = false;
        for seq in ready {
            self.complete_collective(seq)?;
            progress = true;
        }
        Ok(progress)
    }

    fn complete_collective(&mut self, seq: u64) -> Result<(), SimError> {
        let inst = self.collectives.remove(&seq).expect("instance exists");
        let n = self.config.nprocs;
        let arrival = |r: usize| inst.arrivals[r].as_ref().expect("all ranks arrived");
        // Validate agreement on the operation kind.
        let kind0 = arrival(0).kind;
        for (r, a) in inst.arrivals.iter().enumerate() {
            let a = a.as_ref().expect("all ranks arrived");
            if a.kind != kind0 {
                return Err(SimError::CollectiveMismatch {
                    detail: format!(
                        "collective #{seq}: rank 0 called {}, rank {r} called {}",
                        kind0.mpi_name(),
                        a.kind.mpi_name()
                    ),
                });
            }
        }
        let bytes = inst
            .arrivals
            .iter()
            .flatten()
            .map(|a| a.bytes)
            .max()
            .unwrap_or(0);
        let root = arrival(0).root;
        let max_arrival = inst
            .arrivals
            .iter()
            .flatten()
            .map(|a| a.arrive)
            .fold(0.0, f64::max);
        // Latest arrival; ties go to the larger rank (historical order).
        let mut straggler = 0usize;
        for r in 1..n {
            if arrival(r).arrive >= arrival(straggler).arrive {
                straggler = r;
            }
        }

        let model = match kind0 {
            MpiKind::Barrier => CollectiveModel::Barrier,
            MpiKind::Bcast => CollectiveModel::Bcast,
            MpiKind::Reduce => CollectiveModel::Reduce,
            MpiKind::Allreduce => CollectiveModel::Allreduce,
            MpiKind::Alltoall => CollectiveModel::Alltoall,
            MpiKind::Allgather => CollectiveModel::Allgather,
            other => {
                return Err(SimError::CollectiveMismatch {
                    detail: format!("non-collective {} in collective slot", other.mpi_name()),
                })
            }
        };
        let cost = self.config.machine.collective_seconds(model, n, bytes);
        let o = self.config.machine.mpi_overhead;
        let root_arrive = inst
            .arrivals
            .get(root.max(0) as usize)
            .and_then(|a| a.as_ref())
            .map(|a| a.arrive)
            .unwrap_or(max_arrival);

        for r in 0..n {
            let a = *arrival(r);
            let release = match kind0 {
                MpiKind::Bcast => {
                    if r as i64 == root {
                        a.arrive + o
                    } else {
                        a.arrive.max(root_arrive + cost)
                    }
                }
                MpiKind::Reduce => {
                    if r as i64 == root {
                        max_arrival + cost
                    } else {
                        a.arrive + o
                    }
                }
                _ => max_arrival + cost,
            };
            let wait = (release - a.arrive).max(0.0);
            self.ranks[r].clock = release;
            // Straggler → waiter dependence edges let detection see who
            // delayed a collective.
            if r != straggler && wait > 0.0 {
                let sv = arrival(straggler).vertex;
                let ev = CommDepEvent {
                    src_rank: straggler,
                    src_vertex: sv,
                    dst_rank: r,
                    dst_vertex: a.vertex,
                    tag: -1,
                    bytes,
                    wait_time: wait,
                    time: release,
                };
                let c = self.hook.on_comm_dep(&ev);
                self.ranks[r].clock += c;
            }
            let enter = match self.status[r] {
                Status::Blocked(Blocked::Collective { enter, .. }) => enter,
                _ => a.arrive,
            };
            self.exit_event(r, a.vertex, kind0, enter, wait);
            self.wake(r);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::CountingHook;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;

    fn run(src: &str, nprocs: usize) -> SimResult {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .run()
            .unwrap()
    }

    fn run_counting(src: &str, nprocs: usize) -> (SimResult, CountingHook) {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut hook = CountingHook::default();
        let result = Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        (result, hook)
    }

    #[test]
    fn compute_only_program() {
        let res = run("fn main() { comp(cycles = 2_300_000); }", 4);
        assert_eq!(res.nprocs, 4);
        for t in &res.rank_elapsed {
            assert!(*t >= 0.001, "1ms of compute, got {t}");
        }
    }

    #[test]
    fn ping_pong_blocking() {
        let src = r#"
            fn main() {
                if rank == 0 {
                    send(dst = 1, tag = 5, bytes = 1024);
                    recv(src = 1, tag = 6);
                } else {
                    recv(src = 0, tag = 5);
                    send(dst = 0, tag = 6, bytes = 1024);
                }
            }
        "#;
        let (res, hook) = run_counting(src, 2);
        assert_eq!(hook.comm_deps, 2);
        assert_eq!(hook.mpi_enters, 4);
        assert_eq!(hook.mpi_exits, 4);
        assert!(res.total_time() > 0.0);
    }

    #[test]
    fn ring_sendrecv_all_ranks() {
        let src = r#"
            fn main() {
                for it in 0 .. 5 {
                    sendrecv(dst = (rank + 1) % nprocs,
                             src = (rank + nprocs - 1) % nprocs,
                             sendtag = it, recvtag = it, bytes = 4k);
                }
            }
        "#;
        let (_, hook) = run_counting(src, 8);
        // 5 iterations x 8 ranks, one matched message each.
        assert_eq!(hook.comm_deps, 40);
    }

    #[test]
    fn rendezvous_send_blocks_until_receiver() {
        // 1 MB > eager threshold: sender must wait for the receiver, who
        // is busy computing first.
        let src = r#"
            fn main() {
                if rank == 0 {
                    send(dst = 1, tag = 0, bytes = 1m);
                } else {
                    comp(cycles = 23_000_000); // 10 ms
                    recv(src = 0, tag = 0);
                }
            }
        "#;
        let res = run(src, 2);
        // Sender finishes only after receiver posted (~10ms) + transfer.
        assert!(
            res.rank_elapsed[0] >= 0.01,
            "rendezvous sender waited: {}",
            res.rank_elapsed[0]
        );
    }

    #[test]
    fn eager_send_does_not_block() {
        let src = r#"
            fn main() {
                if rank == 0 {
                    send(dst = 1, tag = 0, bytes = 1024);
                } else {
                    comp(cycles = 23_000_000); // 10 ms
                    recv(src = 0, tag = 0);
                }
            }
        "#;
        let res = run(src, 2);
        assert!(
            res.rank_elapsed[0] < 0.001,
            "eager sender should finish early: {}",
            res.rank_elapsed[0]
        );
    }

    #[test]
    fn nonblocking_pipeline_with_waitall() {
        let src = r#"
            fn main() {
                let right = (rank + 1) % nprocs;
                let left = (rank + nprocs - 1) % nprocs;
                let s = isend(dst = right, tag = 1, bytes = 8k);
                let q = irecv(src = left, tag = 1);
                comp(cycles = 100_000);
                waitall();
            }
        "#;
        let (res, hook) = run_counting(src, 16);
        assert_eq!(hook.comm_deps, 16);
        assert!(res.total_time() > 0.0);
    }

    #[test]
    fn wait_on_single_request() {
        let src = r#"
            fn main() {
                if rank == 0 {
                    let q = irecv(src = 1, tag = 3);
                    comp(cycles = 1000);
                    wait(q);
                } else {
                    send(dst = 0, tag = 3, bytes = 64);
                }
            }
        "#;
        let (_, hook) = run_counting(src, 2);
        assert_eq!(hook.comm_deps, 1);
    }

    #[test]
    fn wildcard_recv_matches_earliest_arrival() {
        // Rank 2 sends later than rank 1; wildcard recv must take rank 1.
        let src = r#"
            fn main() {
                if rank == 0 {
                    recv(src = any, tag = any);
                    recv(src = any, tag = any);
                } else if rank == 1 {
                    send(dst = 0, tag = 7, bytes = 64);
                } else {
                    comp(cycles = 23_000_000);
                    send(dst = 0, tag = 9, bytes = 64);
                }
            }
        "#;
        struct DepOrder(Vec<usize>);
        impl Hook for DepOrder {
            fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
                self.0.push(ev.src_rank);
                0.0
            }
        }
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut hook = DepOrder(Vec::new());
        Simulation::new(&program, &psg, SimConfig::with_nprocs(3))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        assert_eq!(hook.0, vec![1, 2], "earliest arrival must match first");
    }

    #[test]
    fn collectives_synchronize_all_ranks() {
        let src = r#"
            fn main() {
                comp(cycles = rank * 1_000_000);
                barrier();
                allreduce(bytes = 8);
            }
        "#;
        let res = run(src, 8);
        let t0 = res.rank_elapsed[0];
        for t in &res.rank_elapsed {
            assert!(
                (t - t0).abs() < 1e-6,
                "collective exit times align: {t} vs {t0}"
            );
        }
    }

    #[test]
    fn bcast_root_leaves_early() {
        let src = "fn main() { bcast(root = 0, bytes = 1k); comp(cycles = 1); }";
        let res = run(src, 8);
        assert!(res.rank_elapsed[0] < res.rank_elapsed[1]);
    }

    #[test]
    fn reduce_root_waits_for_all() {
        let src = r#"
            fn main() {
                comp(cycles = rank * 1_000_000);
                reduce(root = 0, bytes = 1k);
            }
        "#;
        let res = run(src, 8);
        // Root must wait for rank 7's arrival.
        assert!(res.rank_elapsed[0] > res.rank_elapsed[1]);
    }

    #[test]
    fn collective_straggler_dep_edges_point_at_late_rank() {
        let src = r#"
            fn main() {
                if rank == 3 { comp(cycles = 23_000_000); }
                allreduce(bytes = 8);
            }
        "#;
        struct Stragglers(Vec<usize>);
        impl Hook for Stragglers {
            fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
                self.0.push(ev.src_rank);
                0.0
            }
        }
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut hook = Stragglers(Vec::new());
        Simulation::new(&program, &psg, SimConfig::with_nprocs(8))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        assert!(!hook.0.is_empty());
        assert!(hook.0.iter().all(|&s| s == 3), "all waits trace to rank 3");
    }

    #[test]
    fn deadlock_is_detected() {
        let src = "fn main() { recv(src = (rank + 1) % nprocs, tag = 0); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let err = Simulation::new(&program, &psg, SimConfig::with_nprocs(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn collective_mismatch_is_detected() {
        let src = r#"
            fn main() {
                if rank == 0 { barrier(); } else { allreduce(bytes = 8); }
            }
        "#;
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let err = Simulation::new(&program, &psg, SimConfig::with_nprocs(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn invalid_rank_is_reported() {
        let src = "fn main() { send(dst = nprocs, tag = 0, bytes = 8); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let err = Simulation::new(&program, &psg, SimConfig::with_nprocs(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRank { .. }));
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let src = r#"
            fn main() {
                for i in 0 .. 10 {
                    comp(cycles = 100_000 + rank * 1000);
                    sendrecv(dst = (rank + 1) % nprocs,
                             src = (rank + nprocs - 1) % nprocs,
                             sendtag = i, recvtag = i, bytes = 2k);
                }
                allreduce(bytes = 8);
            }
        "#;
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mk = || {
            let mut cfg = SimConfig::with_nprocs(8);
            cfg.machine_mut().noise = crate::machine::NoiseConfig {
                amplitude: 0.05,
                seed: 99,
            };
            cfg
        };
        let a = Simulation::new(&program, &psg, mk()).run().unwrap();
        let b = Simulation::new(&program, &psg, mk()).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn send_to_self_works() {
        let src = r#"
            fn main() {
                let q = irecv(src = rank, tag = 1);
                send(dst = rank, tag = 1, bytes = 64);
                wait(q);
            }
        "#;
        let (_, hook) = run_counting(src, 2);
        assert_eq!(hook.comm_deps, 2);
    }

    #[test]
    fn param_overrides_apply() {
        let src = "param N = 1; fn main() { for i in 0 .. N { comp(cycles = 1_000_000); } }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let small = Simulation::new(&program, &psg, SimConfig::with_nprocs(1))
            .run()
            .unwrap();
        let big = Simulation::new(
            &program,
            &psg,
            SimConfig::with_nprocs(1).with_param("N", 10),
        )
        .run()
        .unwrap();
        assert!(big.total_time() > 5.0 * small.total_time());
    }

    #[test]
    fn wait_time_reflects_late_sender() {
        let src = r#"
            fn main() {
                if rank == 0 {
                    recv(src = 1, tag = 0);
                } else {
                    comp(cycles = 23_000_000); // 10 ms
                    send(dst = 0, tag = 0, bytes = 8);
                }
            }
        "#;
        struct WaitCap(f64);
        impl Hook for WaitCap {
            fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
                self.0 = self.0.max(ev.wait_time);
                0.0
            }
        }
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut hook = WaitCap(0.0);
        Simulation::new(&program, &psg, SimConfig::with_nprocs(2))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        assert!(hook.0 >= 0.009, "receiver waited ~10ms, saw {}", hook.0);
    }

    #[test]
    fn hook_costs_inflate_runtime() {
        struct Costly;
        impl Hook for Costly {
            fn on_comp(&mut self, _ev: &crate::hook::CompEvent) -> f64 {
                1e-3
            }
        }
        let src = "fn main() { for i in 0 .. 10 { comp(cycles = 1000); } }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let base = Simulation::new(&program, &psg, SimConfig::with_nprocs(1))
            .run()
            .unwrap();
        let mut hook = Costly;
        let tooled = Simulation::new(&program, &psg, SimConfig::with_nprocs(1))
            .with_hook(&mut hook)
            .run()
            .unwrap();
        assert!(tooled.total_time() > base.total_time() + 5e-3);
    }

    #[test]
    fn larger_scale_collective_costs_more() {
        let src = "fn main() { for i in 0 .. 50 { allreduce(bytes = 8); } }";
        let t64 = run(src, 64).total_time();
        let t256 = run(src, 256).total_time();
        assert!(t256 > t64, "allreduce chain should slow with scale");
    }

    #[test]
    fn two_thousand_ranks_complete() {
        let src = r#"
            fn main() {
                comp(cycles = 1_000_000 / nprocs);
                allreduce(bytes = 8);
            }
        "#;
        let res = run(src, 2048);
        assert_eq!(res.rank_elapsed.len(), 2048);
    }
}
