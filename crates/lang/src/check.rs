//! Semantic checking for MiniMPI programs.
//!
//! Validates the properties the later pipeline stages rely on:
//! - `main` exists and takes no arguments,
//! - function names are unique and do not shadow intrinsics/builtins,
//! - direct calls and `&func` references target existing functions with
//!   matching arity,
//! - every variable is defined before use (block-scoped),
//! - program parameters do not collide with reserved names.
//!
//! Recursive and mutually recursive calls are allowed — the PSG handles
//! them as cycles, exactly as the paper's inter-procedural analysis does.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::span::Span;
use std::collections::HashSet;

/// Names that cannot be used for functions (intrinsics would shadow them).
const INTRINSIC_NAMES: &[&str] = &[
    "comp",
    "send",
    "recv",
    "sendrecv",
    "isend",
    "irecv",
    "wait",
    "waitall",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "alltoall",
    "allgather",
    "min",
    "max",
    "log2",
    "abs",
];

/// Reserved variable names provided by the runtime.
const RESERVED_VARS: &[&str] = &[VAR_RANK, VAR_NPROCS, VAR_ANY];

/// Run all semantic checks. The program is taken mutably for parity with
/// future lowering passes; the current checks do not rewrite it.
pub fn check_program(program: &mut Program) -> LangResult<()> {
    check_function_table(program)?;
    check_params(program)?;
    for func in &program.functions {
        check_function(program, func)?;
    }
    Ok(())
}

fn check_function_table(program: &Program) -> LangResult<()> {
    let mut seen = HashSet::new();
    for func in &program.functions {
        if INTRINSIC_NAMES.contains(&func.name.as_str()) {
            return Err(LangError::semantic(
                format!("function `{}` shadows an intrinsic", func.name),
                Some(func.span.clone()),
            ));
        }
        if RESERVED_VARS.contains(&func.name.as_str()) {
            return Err(LangError::semantic(
                format!("function `{}` shadows a reserved name", func.name),
                Some(func.span.clone()),
            ));
        }
        if !seen.insert(func.name.clone()) {
            return Err(LangError::semantic(
                format!("duplicate function `{}`", func.name),
                Some(func.span.clone()),
            ));
        }
    }
    let main = program
        .function("main")
        .ok_or_else(|| LangError::semantic("program has no `main` function", None))?;
    if !main.params.is_empty() {
        return Err(LangError::semantic(
            "`main` must take no parameters",
            Some(main.span.clone()),
        ));
    }
    Ok(())
}

fn check_params(program: &Program) -> LangResult<()> {
    let mut seen = HashSet::new();
    for param in &program.params {
        if RESERVED_VARS.contains(&param.name.as_str()) {
            return Err(LangError::semantic(
                format!("param `{}` shadows a reserved name", param.name),
                Some(param.span.clone()),
            ));
        }
        if !seen.insert(param.name.clone()) {
            return Err(LangError::semantic(
                format!("duplicate param `{}`", param.name),
                Some(param.span.clone()),
            ));
        }
        // The param grammar is `[-] INT`, so this is the one default the
        // pretty-printer cannot render as re-parseable source (the lexer
        // rejects the bare magnitude). Reject it at build time instead of
        // emitting unparseable dumps.
        if param.default == i64::MIN {
            return Err(LangError::semantic(
                format!(
                    "param `{}` default {} is not representable in the grammar",
                    param.name, param.default
                ),
                Some(param.span.clone()),
            ));
        }
    }
    Ok(())
}

/// Lexical scope stack for variable definedness.
struct Scopes {
    stack: Vec<HashSet<String>>,
}

impl Scopes {
    fn new(globals: impl IntoIterator<Item = String>) -> Self {
        let mut root = HashSet::new();
        for name in RESERVED_VARS {
            root.insert((*name).to_string());
        }
        root.extend(globals);
        Scopes { stack: vec![root] }
    }

    fn push(&mut self) {
        self.stack.push(HashSet::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn define(&mut self, name: &str) {
        self.stack
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string());
    }

    fn is_defined(&self, name: &str) -> bool {
        self.stack.iter().rev().any(|s| s.contains(name))
    }
}

fn check_function(program: &Program, func: &Function) -> LangResult<()> {
    let mut scopes = Scopes::new(
        program
            .params
            .iter()
            .map(|p| p.name.clone())
            .chain(func.params.iter().cloned()),
    );
    check_block(program, func, &func.body, &mut scopes)
}

fn check_block(
    program: &Program,
    func: &Function,
    block: &Block,
    scopes: &mut Scopes,
) -> LangResult<()> {
    scopes.push();
    for stmt in &block.stmts {
        check_stmt(program, func, stmt, scopes)?;
    }
    scopes.pop();
    Ok(())
}

fn check_stmt(
    program: &Program,
    func: &Function,
    stmt: &Stmt,
    scopes: &mut Scopes,
) -> LangResult<()> {
    let span = &stmt.span;
    match &stmt.kind {
        StmtKind::Let { name, value } => {
            check_expr(program, value, scopes, span)?;
            scopes.define(name);
        }
        StmtKind::Assign { name, value } => {
            if !scopes.is_defined(name) {
                return Err(LangError::semantic(
                    format!(
                        "assignment to undefined variable `{name}` in `{}`",
                        func.name
                    ),
                    Some(span.clone()),
                ));
            }
            check_expr(program, value, scopes, span)?;
        }
        StmtKind::For {
            var,
            start,
            end,
            body,
        } => {
            check_expr(program, start, scopes, span)?;
            check_expr(program, end, scopes, span)?;
            scopes.push();
            scopes.define(var);
            check_block(program, func, body, scopes)?;
            scopes.pop();
        }
        StmtKind::While { cond, body } => {
            check_expr(program, cond, scopes, span)?;
            check_block(program, func, body, scopes)?;
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            check_expr(program, cond, scopes, span)?;
            check_block(program, func, then_block, scopes)?;
            if let Some(e) = else_block {
                check_block(program, func, e, scopes)?;
            }
        }
        StmtKind::Call { callee, args } => {
            let target = program.function(callee).ok_or_else(|| {
                LangError::semantic(
                    format!("call to undefined function `{callee}`"),
                    Some(span.clone()),
                )
            })?;
            if target.params.len() != args.len() {
                return Err(LangError::semantic(
                    format!(
                        "`{callee}` takes {} argument(s), got {}",
                        target.params.len(),
                        args.len()
                    ),
                    Some(span.clone()),
                ));
            }
            for arg in args {
                check_expr(program, arg, scopes, span)?;
            }
        }
        StmtKind::CallIndirect { target, args } => {
            check_expr(program, target, scopes, span)?;
            for arg in args {
                check_expr(program, arg, scopes, span)?;
            }
        }
        StmtKind::Comp(attrs) => {
            check_expr(program, &attrs.cycles, scopes, span)?;
            for e in [&attrs.ins, &attrs.lst, &attrs.l2_miss, &attrs.br_miss]
                .into_iter()
                .flatten()
            {
                check_expr(program, e, scopes, span)?;
            }
        }
        StmtKind::Mpi(op) => {
            check_mpi(program, op, scopes, span)?;
        }
        StmtKind::Return => {}
    }
    Ok(())
}

fn check_mpi(program: &Program, op: &MpiOp, scopes: &mut Scopes, span: &Span) -> LangResult<()> {
    let mut exprs: Vec<&Expr> = Vec::new();
    match op {
        MpiOp::Send { dst, tag, bytes } => exprs.extend([dst, tag, bytes]),
        MpiOp::Recv { src, tag } => exprs.extend([src, tag]),
        MpiOp::Sendrecv {
            dst,
            sendtag,
            src,
            recvtag,
            bytes,
        } => {
            exprs.extend([dst, sendtag, src, recvtag, bytes]);
        }
        MpiOp::Isend {
            dst,
            tag,
            bytes,
            req,
        } => {
            exprs.extend([dst, tag, bytes]);
            scopes.define(req);
        }
        MpiOp::Irecv { src, tag, req } => {
            exprs.extend([src, tag]);
            scopes.define(req);
        }
        MpiOp::Wait { req } => exprs.push(req),
        MpiOp::Waitall | MpiOp::Barrier => {}
        MpiOp::Bcast { root, bytes } | MpiOp::Reduce { root, bytes } => {
            exprs.extend([root, bytes]);
        }
        MpiOp::Allreduce { bytes } | MpiOp::Alltoall { bytes } | MpiOp::Allgather { bytes } => {
            exprs.push(bytes);
        }
    }
    for e in exprs {
        check_expr(program, e, scopes, span)?;
    }
    Ok(())
}

fn check_expr(program: &Program, expr: &Expr, scopes: &Scopes, span: &Span) -> LangResult<()> {
    match expr {
        Expr::Int(_) => Ok(()),
        Expr::Var(name) => {
            if scopes.is_defined(name) {
                Ok(())
            } else {
                Err(LangError::semantic(
                    format!("use of undefined variable `{name}`"),
                    Some(span.clone()),
                ))
            }
        }
        Expr::FuncRef(name) => {
            if program.function(name).is_some() {
                Ok(())
            } else {
                Err(LangError::semantic(
                    format!("`&{name}` references undefined function"),
                    Some(span.clone()),
                ))
            }
        }
        Expr::Unary { expr, .. } => check_expr(program, expr, scopes, span),
        Expr::Binary { lhs, rhs, .. } => {
            check_expr(program, lhs, scopes, span)?;
            check_expr(program, rhs, scopes, span)
        }
        Expr::Builtin { args, .. } => {
            for a in args {
                check_expr(program, a, scopes, span)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    #[test]
    fn accepts_valid_program() {
        let src = r#"
            param N = 100;
            fn main() {
                let half = N / 2;
                for i in 0 .. half {
                    comp(cycles = i + rank);
                }
                helper(half);
                let f = &helper;
                call f(3);
            }
            fn helper(n) {
                if n > 0 { allreduce(bytes = n); }
            }
        "#;
        parse_program("ok.mmpi", src).unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        let err = parse_program("t.mmpi", "fn foo() { }").unwrap_err();
        assert!(err.message.contains("no `main`"));
    }

    #[test]
    fn rejects_main_with_params() {
        let err = parse_program("t.mmpi", "fn main(x) { }").unwrap_err();
        assert!(err.message.contains("no parameters"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = parse_program("t.mmpi", "fn main() { } fn main() { }").unwrap_err();
        assert!(err.message.contains("duplicate function"));
    }

    #[test]
    fn rejects_undefined_variable() {
        let err = parse_program("t.mmpi", "fn main() { let x = y + 1; }").unwrap_err();
        assert!(err.message.contains("undefined variable `y`"));
    }

    #[test]
    fn rejects_use_outside_block_scope() {
        let src = "fn main() { if rank == 0 { let x = 1; } let y = x; }";
        let err = parse_program("t.mmpi", src).unwrap_err();
        assert!(err.message.contains("undefined variable `x`"));
    }

    #[test]
    fn loop_variable_scoped_to_body() {
        let src = "fn main() { for i in 0 .. 4 { comp(cycles = i); } let y = i; }";
        assert!(parse_program("t.mmpi", src).is_err());
    }

    #[test]
    fn rejects_undefined_call() {
        let err = parse_program("t.mmpi", "fn main() { nothere(); }").unwrap_err();
        assert!(err.message.contains("undefined function `nothere`"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse_program("t.mmpi", "fn main() { f(1, 2); } fn f(a) { }").unwrap_err();
        assert!(err.message.contains("takes 1 argument(s), got 2"));
    }

    #[test]
    fn rejects_bad_funcref() {
        let err = parse_program("t.mmpi", "fn main() { let f = &ghost; }").unwrap_err();
        assert!(err.message.contains("references undefined function"));
    }

    #[test]
    fn rejects_intrinsic_shadowing() {
        let err = parse_program("t.mmpi", "fn main() { } fn send() { }").unwrap_err();
        assert!(err.message.contains("shadows an intrinsic"));
    }

    #[test]
    fn rejects_reserved_param() {
        let err = parse_program("t.mmpi", "param rank = 1; fn main() { }").unwrap_err();
        assert!(err.message.contains("shadows a reserved name"));
    }

    #[test]
    fn request_variable_is_defined_by_binding() {
        let src = "fn main() { let r = irecv(src = any); wait(r); }";
        parse_program("t.mmpi", src).unwrap();
    }

    #[test]
    fn recursion_is_allowed() {
        let src = "fn main() { rec(4); } fn rec(n) { if n > 0 { rec(n - 1); } }";
        parse_program("t.mmpi", src).unwrap();
    }

    #[test]
    fn reserved_vars_usable_everywhere() {
        let src = "fn main() { if rank < nprocs { recv(src = any, tag = any); } }";
        parse_program("t.mmpi", src).unwrap();
    }
}
