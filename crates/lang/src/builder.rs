//! Programmatic construction of MiniMPI programs.
//!
//! The workload generators in `scalana-apps` synthesize programs whose
//! shape depends on parameters (process-grid factorization, iteration
//! counts, injected pathologies). Building ASTs directly is more robust
//! than string concatenation and lets the generator plant *named source
//! locations* — the case studies reproduce the paper's reports like
//! "LOOP at bval3d.F:155" by tagging the injected root-cause statement
//! with exactly that location via [`BlockBuilder::at`].
//!
//! ```
//! use scalana_lang::builder::*;
//!
//! let mut b = ProgramBuilder::new("ring.mmpi");
//! b.param("N", 1024);
//! b.function("main", &[], |f| {
//!     f.for_("i", int(0), var("N"), |f| {
//!         f.comp(comp_cycles(var("N") * int(10) / var("nprocs")));
//!         f.sendrecv(
//!             (var("rank") + int(1)) % var("nprocs"),
//!             (var("rank") + var("nprocs") - int(1)) % var("nprocs"),
//!             int(0),
//!             int(4096),
//!         );
//!     });
//!     f.allreduce(int(8));
//! });
//! let program = b.finish().unwrap();
//! assert_eq!(program.functions.len(), 1);
//! ```

use crate::ast::*;
use crate::check;
use crate::error::LangResult;
use crate::span::{SourceFile, Span};

// ----- expression helpers -----

/// Integer literal expression.
pub fn int(v: i64) -> Expr {
    Expr::Int(v)
}

/// Variable reference expression.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// The executing rank.
pub fn rank() -> Expr {
    var(VAR_RANK)
}

/// The process count.
pub fn nprocs() -> Expr {
    var(VAR_NPROCS)
}

/// The MPI wildcard.
pub fn any() -> Expr {
    var(VAR_ANY)
}

/// `&name` function reference.
pub fn func_ref(name: &str) -> Expr {
    Expr::FuncRef(name.to_string())
}

/// Two-argument maximum.
pub fn max(a: Expr, b: Expr) -> Expr {
    Expr::Builtin {
        func: BuiltinFn::Max,
        args: vec![a, b],
    }
}

/// Two-argument minimum.
pub fn min(a: Expr, b: Expr) -> Expr {
    Expr::Builtin {
        func: BuiltinFn::Min,
        args: vec![a, b],
    }
}

/// Floor log2 (0 for inputs <= 1).
pub fn log2(a: Expr) -> Expr {
    Expr::Builtin {
        func: BuiltinFn::Log2,
        args: vec![a],
    }
}

/// Absolute value.
pub fn abs(a: Expr) -> Expr {
    Expr::Builtin {
        func: BuiltinFn::Abs,
        args: vec![a],
    }
}

/// Comparison: `a == b`.
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Eq, a, b)
}

/// Comparison: `a != b`.
pub fn ne(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ne, a, b)
}

/// Comparison: `a < b`.
pub fn lt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Lt, a, b)
}

/// Comparison: `a <= b`.
pub fn le(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Le, a, b)
}

/// Comparison: `a > b`.
pub fn gt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Gt, a, b)
}

/// Comparison: `a >= b`.
pub fn ge(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ge, a, b)
}

/// Logical and.
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::And, a, b)
}

/// Logical or.
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Or, a, b)
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl std::ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }
}

// ----- comp attribute spec -----

/// Fluent specification of a `comp` block's cost/PMU attributes.
#[derive(Debug, Clone)]
pub struct CompSpec {
    attrs: CompAttrs,
}

/// Start a comp spec from its (required) cycle cost.
pub fn comp_cycles(cycles: Expr) -> CompSpec {
    CompSpec {
        attrs: CompAttrs {
            cycles,
            ins: None,
            lst: None,
            l2_miss: None,
            br_miss: None,
        },
    }
}

impl CompSpec {
    /// Set instructions retired.
    pub fn ins(mut self, e: Expr) -> Self {
        self.attrs.ins = Some(e);
        self
    }

    /// Set load/store instruction count.
    pub fn lst(mut self, e: Expr) -> Self {
        self.attrs.lst = Some(e);
        self
    }

    /// Set L2 miss count.
    pub fn miss(mut self, e: Expr) -> Self {
        self.attrs.l2_miss = Some(e);
        self
    }

    /// Set branch mispredictions.
    pub fn brmiss(mut self, e: Expr) -> Self {
        self.attrs.br_miss = Some(e);
        self
    }
}

// ----- builders -----

/// Shared id/location generator for one program build.
struct Gen {
    next_id: NodeId,
    default_file: SourceFile,
    next_line: u32,
    /// One-shot override planted by [`BlockBuilder::at`].
    pending_loc: Option<(SourceFile, u32)>,
}

impl Gen {
    fn next_span(&mut self) -> Span {
        if let Some((file, line)) = self.pending_loc.take() {
            return Span::new(file, line, 0);
        }
        let line = self.next_line;
        self.next_line += 1;
        Span::new(self.default_file.clone(), line, 0)
    }

    fn next_stmt(&mut self, kind: StmtKind) -> Stmt {
        let id = self.next_id;
        self.next_id += 1;
        Stmt {
            id,
            span: self.next_span(),
            kind,
        }
    }
}

/// Top-level builder: declares params and functions, then [`finish`]es
/// into a checked [`Program`].
///
/// [`finish`]: ProgramBuilder::finish
pub struct ProgramBuilder {
    file_name: String,
    params: Vec<ParamDecl>,
    functions: Vec<Function>,
    generator: Gen,
}

impl ProgramBuilder {
    /// Start a program associated with `file_name` (used for spans).
    pub fn new(file_name: &str) -> Self {
        ProgramBuilder {
            file_name: file_name.to_string(),
            params: Vec::new(),
            functions: Vec::new(),
            generator: Gen {
                next_id: 0,
                default_file: SourceFile::new(file_name),
                next_line: 1,
                pending_loc: None,
            },
        }
    }

    /// Declare a tunable parameter with its default.
    pub fn param(&mut self, name: &str, default: i64) -> &mut Self {
        let span = Span::new(
            self.generator.default_file.clone(),
            self.generator.next_line,
            0,
        );
        self.generator.next_line += 1;
        self.params.push(ParamDecl {
            name: name.to_string(),
            default,
            span,
        });
        self
    }

    /// Define a function; the closure populates its body.
    pub fn function(
        &mut self,
        name: &str,
        params: &[&str],
        build: impl FnOnce(&mut BlockBuilder<'_>),
    ) -> &mut Self {
        let span = Span::new(
            self.generator.default_file.clone(),
            self.generator.next_line,
            0,
        );
        self.generator.next_line += 1;
        let mut block = BlockBuilder {
            generator: &mut self.generator,
            stmts: Vec::new(),
        };
        build(&mut block);
        let body = Block { stmts: block.stmts };
        self.functions.push(Function {
            name: name.to_string(),
            params: params.iter().map(|p| (*p).to_string()).collect(),
            body,
            span,
        });
        self
    }

    /// Finish the build and run semantic checks.
    pub fn finish(self) -> LangResult<Program> {
        let mut program = Program {
            file_name: self.file_name,
            params: self.params,
            functions: self.functions,
            next_node_id: self.generator.next_id,
        };
        check::check_program(&mut program)?;
        Ok(program)
    }
}

/// Builds one statement block; nested blocks recurse through closures.
pub struct BlockBuilder<'a> {
    generator: &'a mut Gen,
    stmts: Vec<Stmt>,
}

impl<'a> BlockBuilder<'a> {
    fn push(&mut self, kind: StmtKind) {
        let stmt = self.generator.next_stmt(kind);
        self.stmts.push(stmt);
    }

    fn child(&mut self, build: impl FnOnce(&mut BlockBuilder<'_>)) -> Block {
        let mut block = BlockBuilder {
            generator: self.generator,
            stmts: Vec::new(),
        };
        build(&mut block);
        Block { stmts: block.stmts }
    }

    /// Override the source location of the *next* statement. Lets
    /// generators plant paper-style locations like `bval3d.F:155`.
    pub fn at(&mut self, file: &str, line: u32) -> &mut Self {
        self.generator.pending_loc = Some((SourceFile::new(file), line));
        self
    }

    /// `let name = value;`
    pub fn let_(&mut self, name: &str, value: Expr) {
        self.push(StmtKind::Let {
            name: name.to_string(),
            value,
        });
    }

    /// `name = value;`
    pub fn assign(&mut self, name: &str, value: Expr) {
        self.push(StmtKind::Assign {
            name: name.to_string(),
            value,
        });
    }

    /// `for var in start .. end { .. }`
    pub fn for_(
        &mut self,
        var: &str,
        start: Expr,
        end: Expr,
        build: impl FnOnce(&mut BlockBuilder<'_>),
    ) {
        // Reserve the loop statement's span before building the body so
        // line numbers read top-down.
        let span = self.generator.next_span();
        let id = self.generator.next_id;
        self.generator.next_id += 1;
        let body = self.child(build);
        self.stmts.push(Stmt {
            id,
            span,
            kind: StmtKind::For {
                var: var.to_string(),
                start,
                end,
                body,
            },
        });
    }

    /// `while cond { .. }`
    pub fn while_(&mut self, cond: Expr, build: impl FnOnce(&mut BlockBuilder<'_>)) {
        let span = self.generator.next_span();
        let id = self.generator.next_id;
        self.generator.next_id += 1;
        let body = self.child(build);
        self.stmts.push(Stmt {
            id,
            span,
            kind: StmtKind::While { cond, body },
        });
    }

    /// `if cond { .. }`
    pub fn if_(&mut self, cond: Expr, build_then: impl FnOnce(&mut BlockBuilder<'_>)) {
        let span = self.generator.next_span();
        let id = self.generator.next_id;
        self.generator.next_id += 1;
        let then_block = self.child(build_then);
        self.stmts.push(Stmt {
            id,
            span,
            kind: StmtKind::If {
                cond,
                then_block,
                else_block: None,
            },
        });
    }

    /// `if cond { .. } else { .. }`
    pub fn if_else(
        &mut self,
        cond: Expr,
        build_then: impl FnOnce(&mut BlockBuilder<'_>),
        build_else: impl FnOnce(&mut BlockBuilder<'_>),
    ) {
        let span = self.generator.next_span();
        let id = self.generator.next_id;
        self.generator.next_id += 1;
        let then_block = self.child(build_then);
        let else_block = Some(self.child(build_else));
        self.stmts.push(Stmt {
            id,
            span,
            kind: StmtKind::If {
                cond,
                then_block,
                else_block,
            },
        });
    }

    /// `callee(args..);`
    pub fn call(&mut self, callee: &str, args: Vec<Expr>) {
        self.push(StmtKind::Call {
            callee: callee.to_string(),
            args,
        });
    }

    /// `call target(args..);`
    pub fn call_indirect(&mut self, target: Expr, args: Vec<Expr>) {
        self.push(StmtKind::CallIndirect { target, args });
    }

    /// `comp(..);` from a [`CompSpec`].
    pub fn comp(&mut self, spec: CompSpec) {
        self.push(StmtKind::Comp(spec.attrs));
    }

    /// Shorthand: `comp(cycles = e);`
    pub fn comp_cycles(&mut self, cycles: Expr) {
        self.comp(comp_cycles(cycles));
    }

    /// `send(dst, tag, bytes);`
    pub fn send(&mut self, dst: Expr, tag: Expr, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Send { dst, tag, bytes }));
    }

    /// `recv(src, tag);`
    pub fn recv(&mut self, src: Expr, tag: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Recv { src, tag }));
    }

    /// `sendrecv(dst, src, tag, bytes);` (same tag both ways)
    pub fn sendrecv(&mut self, dst: Expr, src: Expr, tag: Expr, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Sendrecv {
            dst,
            sendtag: tag.clone(),
            src,
            recvtag: tag,
            bytes,
        }));
    }

    /// `let req = isend(dst, tag, bytes);`
    pub fn isend(&mut self, req: &str, dst: Expr, tag: Expr, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Isend {
            dst,
            tag,
            bytes,
            req: req.to_string(),
        }));
    }

    /// `let req = irecv(src, tag);`
    pub fn irecv(&mut self, req: &str, src: Expr, tag: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Irecv {
            src,
            tag,
            req: req.to_string(),
        }));
    }

    /// `wait(req);`
    pub fn wait(&mut self, req: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Wait { req }));
    }

    /// `waitall();`
    pub fn waitall(&mut self) {
        self.push(StmtKind::Mpi(MpiOp::Waitall));
    }

    /// `barrier();`
    pub fn barrier(&mut self) {
        self.push(StmtKind::Mpi(MpiOp::Barrier));
    }

    /// `bcast(root, bytes);`
    pub fn bcast(&mut self, root: Expr, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Bcast { root, bytes }));
    }

    /// `reduce(root, bytes);`
    pub fn reduce(&mut self, root: Expr, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Reduce { root, bytes }));
    }

    /// `allreduce(bytes);`
    pub fn allreduce(&mut self, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Allreduce { bytes }));
    }

    /// `alltoall(bytes);`
    pub fn alltoall(&mut self, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Alltoall { bytes }));
    }

    /// `allgather(bytes);`
    pub fn allgather(&mut self, bytes: Expr) {
        self.push(StmtKind::Mpi(MpiOp::Allgather { bytes }));
    }

    /// `return;`
    pub fn ret(&mut self) {
        self.push(StmtKind::Return);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;

    #[test]
    fn builds_checked_program() {
        let mut b = ProgramBuilder::new("built.mmpi");
        b.param("N", 256);
        b.function("main", &[], |f| {
            f.let_("half", var("N") / int(2));
            f.for_("i", int(0), var("half"), |f| {
                f.comp(comp_cycles(var("i") + rank()).ins(var("i") * int(2)));
            });
            f.if_else(
                eq(rank() % int(2), int(0)),
                |f| f.send(rank() + int(1), int(0), int(1024)),
                |f| f.recv(rank() - int(1), int(0)),
            );
            f.call("helper", vec![var("half")]);
            f.allreduce(int(8));
        });
        b.function("helper", &["n"], |f| {
            f.barrier();
            f.comp_cycles(var("n"));
        });
        let program = b.finish().unwrap();
        assert_eq!(program.functions.len(), 2);
        // Built program also survives the pretty-print round trip.
        let printed = pretty::print_program(&program);
        let reparsed = crate::parse_program("built.mmpi", &printed).unwrap();
        assert_eq!(
            pretty::normalize_spans(&program),
            pretty::normalize_spans(&reparsed)
        );
    }

    #[test]
    fn builder_rejects_semantic_errors() {
        let mut b = ProgramBuilder::new("bad.mmpi");
        b.function("main", &[], |f| {
            f.let_("x", var("undefined_thing"));
        });
        assert!(b.finish().is_err());
    }

    #[test]
    fn at_plants_custom_location() {
        let mut b = ProgramBuilder::new("zeus.mmpi");
        b.function("main", &[], |f| {
            f.at("bval3d.F", 155);
            f.for_("j", int(0), int(8), |f| {
                f.comp_cycles(int(100));
            });
            f.allreduce(int(8));
        });
        let program = b.finish().unwrap();
        let loop_stmt = &program.main().body.stmts[0];
        assert_eq!(loop_stmt.span.file_line(), "bval3d.F:155");
        // The next statement falls back to auto-generated locations.
        let next = &program.main().body.stmts[1];
        assert_eq!(next.span.file.name.as_ref(), "zeus.mmpi");
    }

    #[test]
    fn node_ids_are_dense_and_ordered() {
        let mut b = ProgramBuilder::new("ids.mmpi");
        b.function("main", &[], |f| {
            f.for_("i", int(0), int(3), |f| {
                f.comp_cycles(int(1));
                f.barrier();
            });
            f.ret();
        });
        let program = b.finish().unwrap();
        let mut ids = vec![];
        program.for_each_stmt(|s| ids.push(s.id));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(program.next_node_id, 4);
    }

    #[test]
    fn expression_operators_compose() {
        let e = (rank() + int(1)) % nprocs() * int(4) - int(1);
        // ((((rank + 1) % nprocs) * 4) - 1)
        assert_eq!(pretty::expr(&e), "((((rank + 1) % nprocs) * 4) - 1)");
    }

    #[test]
    fn while_and_indirect_call_build() {
        let mut b = ProgramBuilder::new("w.mmpi");
        b.function("main", &[], |f| {
            f.let_("x", int(8));
            f.while_(gt(var("x"), int(0)), |f| {
                f.assign("x", var("x") / int(2));
            });
            f.let_("fp", func_ref("leaf"));
            f.call_indirect(var("fp"), vec![int(1)]);
        });
        b.function("leaf", &["n"], |f| {
            f.comp_cycles(var("n"));
        });
        assert!(b.finish().is_ok());
    }
}
