//! Token definitions for the MiniMPI lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

/// The kinds of tokens MiniMPI knows.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or intrinsic name.
    Ident(String),
    /// Integer literal (supports `_` separators and `k`/`m`/`g` suffixes).
    Int(i64),
    /// `fn`
    KwFn,
    /// `let`
    KwLet,
    /// `for`
    KwFor,
    /// `in`
    KwIn,
    /// `while`
    KwWhile,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `return`
    KwReturn,
    /// `param`
    KwParam,
    /// `call`
    KwCall,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `..`
    DotDot,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Map a word to a keyword, if it is one.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "fn" => TokenKind::KwFn,
            "let" => TokenKind::KwLet,
            "for" => TokenKind::KwFor,
            "in" => TokenKind::KwIn,
            "while" => TokenKind::KwWhile,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "return" => TokenKind::KwReturn,
            "param" => TokenKind::KwParam,
            "call" => TokenKind::KwCall,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::KwFn => write!(f, "`fn`"),
            TokenKind::KwLet => write!(f, "`let`"),
            TokenKind::KwFor => write!(f, "`for`"),
            TokenKind::KwIn => write!(f, "`in`"),
            TokenKind::KwWhile => write!(f, "`while`"),
            TokenKind::KwIf => write!(f, "`if`"),
            TokenKind::KwElse => write!(f, "`else`"),
            TokenKind::KwReturn => write!(f, "`return`"),
            TokenKind::KwParam => write!(f, "`param`"),
            TokenKind::KwCall => write!(f, "`call`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::DotDot => write!(f, "`..`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("fn"), Some(TokenKind::KwFn));
        assert_eq!(TokenKind::keyword("call"), Some(TokenKind::KwCall));
        assert_eq!(TokenKind::keyword("rank"), None);
    }

    #[test]
    fn display_is_reader_friendly() {
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::DotDot.to_string(), "`..`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
