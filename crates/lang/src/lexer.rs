//! Hand-written lexer for MiniMPI.
//!
//! Tracks line/column for every token so statements carry precise
//! source locations. Supports `//` line comments and `/* */` block
//! comments, `_` digit separators, and `k`/`m`/`g` magnitude suffixes on
//! integer literals (`64k == 65536`), which keeps workload definitions in
//! `scalana-apps` readable.

use crate::error::{LangError, LangResult};
use crate::span::{SourceFile, Span};
use crate::token::{Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    file: SourceFile,
}

/// Tokenize MiniMPI source text.
pub fn lex(file_name: &str, source: &str) -> LangResult<Vec<Token>> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        file: SourceFile::new(file_name),
    };
    lexer.run()
}

impl<'a> Lexer<'a> {
    fn span(&self) -> Span {
        Span::new(self.file.clone(), self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(&mut self) -> LangResult<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.lex_int(&span)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
                _ => self.lex_punct(&span)?,
            };
            tokens.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> LangResult<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => {
                                return Err(LangError::lex("unterminated block comment", open));
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_int(&mut self, span: &Span) -> LangResult<TokenKind> {
        let mut value: i64 = 0;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    let digit = i64::from(c - b'0');
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(digit))
                        .ok_or_else(|| {
                            LangError::lex("integer literal overflows i64", span.clone())
                        })?;
                    self.bump();
                }
                b'_' => {
                    self.bump();
                }
                _ => break,
            }
        }
        // Magnitude suffix: 4k = 4096, 2m = 2 MiB, 1g = 1 GiB.
        if let Some(suffix) = self.peek() {
            let shift = match suffix.to_ascii_lowercase() {
                b'k' => Some(10),
                b'm' => Some(20),
                b'g' => Some(30),
                _ => None,
            };
            if let Some(shift) = shift {
                // Only treat as a suffix when not followed by more word chars
                // (so `4kb` is an error rather than silently `4k` + `b`).
                let next = self.src.get(self.pos + 1).copied();
                if matches!(next, Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
                    return Err(LangError::lex("bad integer suffix", span.clone()));
                }
                value = value
                    .checked_shl(shift)
                    .filter(|v| *v >= 0)
                    .ok_or_else(|| LangError::lex("integer literal overflows i64", span.clone()))?;
                self.bump();
            }
        }
        Ok(TokenKind::Int(value))
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()))
    }

    fn lex_punct(&mut self, span: &Span) -> LangResult<TokenKind> {
        let c = self.bump().expect("caller checked peek");
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    return Err(LangError::lex("expected `..`", span.clone()));
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(LangError::lex("expected `||`", span.clone()));
                }
            }
            other => {
                return Err(LangError::lex(
                    format!("unexpected character `{}`", other as char),
                    span.clone(),
                ));
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex("t.mmpi", src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_statement() {
        let toks = kinds("let x = 1 + 2;");
        assert_eq!(
            toks,
            vec![
                TokenKind::KwLet,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn magnitude_suffixes() {
        assert_eq!(kinds("64k")[0], TokenKind::Int(64 << 10));
        assert_eq!(kinds("2m")[0], TokenKind::Int(2 << 20));
        assert_eq!(kinds("1g")[0], TokenKind::Int(1 << 30));
        assert_eq!(kinds("1_000_000")[0], TokenKind::Int(1_000_000));
    }

    #[test]
    fn bad_suffix_is_error() {
        assert!(lex("t.mmpi", "4kb").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("// hello\n1 /* mid */ 2");
        assert_eq!(
            toks,
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("t.mmpi", "/* oops").is_err());
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("t.mmpi", "fn\n  main").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn two_char_operators() {
        let toks = kinds("<= >= == != && || ..");
        assert_eq!(
            toks,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::DotDot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn single_amp_is_funcref_token() {
        assert_eq!(kinds("&foo")[0], TokenKind::Amp);
    }

    #[test]
    fn overflow_literal_is_error() {
        assert!(lex("t.mmpi", "99999999999999999999").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = lex("t.mmpi", "let $x = 1;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }
}
