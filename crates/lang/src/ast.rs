//! Abstract syntax tree for MiniMPI.
//!
//! Every statement owns a stable [`NodeId`]. The PSG builder keys graph
//! vertices by these ids and the simulator attributes runtime performance
//! data back to them, which is the mechanism the paper implements with
//! LLVM instruction/debug metadata.

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// Stable identifier of an AST statement, unique within one [`Program`].
pub type NodeId = u32;

/// Reserved variable name: the executing process rank.
pub const VAR_RANK: &str = "rank";
/// Reserved variable name: total number of processes.
pub const VAR_NPROCS: &str = "nprocs";
/// Reserved variable name: the MPI wildcard (`MPI_ANY_SOURCE`/`MPI_ANY_TAG`).
pub const VAR_ANY: &str = "any";
/// Runtime value of the wildcard.
pub const ANY_VALUE: i64 = -1;

/// A complete MiniMPI program: tunable parameters plus functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Name of the entry source file.
    pub file_name: String,
    /// Tunable integer parameters (`param N = 1024;`), overridable per run.
    pub params: Vec<ParamDecl>,
    /// All functions; `main` must exist and take no arguments.
    pub functions: Vec<Function>,
    /// One past the largest [`NodeId`] in use.
    pub next_node_id: NodeId,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The entry function. Panics if semantic checking did not run.
    pub fn main(&self) -> &Function {
        self.function("main")
            .expect("checked program must have `main`")
    }

    /// Index of a function by name (used as the runtime function id for
    /// indirect calls).
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Visit every statement in the program (pre-order).
    pub fn for_each_stmt(&self, mut f: impl FnMut(&Stmt)) {
        fn walk(block: &Block, f: &mut impl FnMut(&Stmt)) {
            for stmt in &block.stmts {
                f(stmt);
                match &stmt.kind {
                    StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(body, f),
                    StmtKind::If {
                        then_block,
                        else_block,
                        ..
                    } => {
                        walk(then_block, f);
                        if let Some(e) = else_block {
                            walk(e, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        for func in &self.functions {
            walk(&func.body, &mut f);
        }
    }

    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|_| n += 1);
        n
    }
}

/// A tunable integer parameter with a default value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// Parameter name, usable as a variable everywhere.
    pub name: String,
    /// Default value when the run config does not override it.
    pub default: i64,
    /// Declaration site.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name, unique within the program.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// The statements, in program order.
    pub stmts: Vec<Stmt>,
}

/// A statement with identity and location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Stable id; PSG vertices and profiles are keyed by this.
    pub id: NodeId,
    /// Source location for root-cause reporting.
    pub span: Span,
    /// The statement payload.
    pub kind: StmtKind,
}

/// Statement forms of MiniMPI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// `let x = expr;` — introduce a local variable.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `x = expr;` — reassign a local variable.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `for i in start .. end { body }` — counted loop, `end` exclusive.
    For {
        /// Induction variable.
        var: String,
        /// Inclusive start expression.
        start: Expr,
        /// Exclusive end expression.
        end: Expr,
        /// Loop body.
        body: Block,
    },
    /// `while cond { body }` — condition loop.
    While {
        /// Continuation condition (nonzero = true).
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Taken when the condition is nonzero.
        then_block: Block,
        /// Optional else block.
        else_block: Option<Block>,
    },
    /// `foo(a, b);` — direct call to a user function.
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `call f(a, b);` — indirect call through a function reference.
    ///
    /// The static analysis cannot resolve the target; the paper records it
    /// at runtime and patches the PSG (§III-B3). The simulator reports the
    /// resolved callee through the hook layer for the same purpose.
    CallIndirect {
        /// Expression evaluating to a function reference.
        target: Expr,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `comp(cycles = .., ins = .., ..);` — a computation block with a
    /// cost model and simulated PMU counters.
    Comp(CompAttrs),
    /// An MPI operation.
    Mpi(MpiOp),
    /// `return;` — leave the current function.
    Return,
}

/// Cost and PMU attributes of a `comp` block.
///
/// All attributes are expressions over locals, `rank`, `nprocs`, and
/// program parameters, so the same source exhibits different workloads at
/// different scales — the property non-scalable vertex detection relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompAttrs {
    /// Virtual CPU cycles consumed (drives the rank's clock).
    pub cycles: Expr,
    /// Instructions retired (`PAPI_TOT_INS`); defaults to `cycles`.
    pub ins: Option<Expr>,
    /// Load/store instructions (`PAPI_LST_INS`); defaults to `ins / 4`.
    pub lst: Option<Expr>,
    /// L2 cache misses; defaults to `lst / 100`.
    pub l2_miss: Option<Expr>,
    /// Branch mispredictions; defaults to `ins / 1000`.
    pub br_miss: Option<Expr>,
}

/// MPI operations supported by the simulator and intercepted by hooks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MpiOp {
    /// Blocking standard send.
    Send {
        /// Destination rank.
        dst: Expr,
        /// Message tag.
        tag: Expr,
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Blocking receive; `src`/`tag` may be `any`.
    Recv {
        /// Source rank or `any`.
        src: Expr,
        /// Tag or `any`.
        tag: Expr,
    },
    /// Combined send+receive (deadlock-free exchange).
    Sendrecv {
        /// Destination rank of the send half.
        dst: Expr,
        /// Tag of the send half.
        sendtag: Expr,
        /// Source rank of the receive half (or `any`).
        src: Expr,
        /// Tag of the receive half (or `any`).
        recvtag: Expr,
        /// Payload size in bytes (both directions).
        bytes: Expr,
    },
    /// Non-blocking send; binds a request variable.
    Isend {
        /// Destination rank.
        dst: Expr,
        /// Message tag.
        tag: Expr,
        /// Payload size in bytes.
        bytes: Expr,
        /// Name of the request variable bound by `let r = isend(..);`.
        req: String,
    },
    /// Non-blocking receive; binds a request variable.
    Irecv {
        /// Source rank or `any`.
        src: Expr,
        /// Tag or `any`.
        tag: Expr,
        /// Name of the request variable bound by `let r = irecv(..);`.
        req: String,
    },
    /// Wait for a single request.
    Wait {
        /// Expression evaluating to a request id.
        req: Expr,
    },
    /// Wait for all outstanding requests of this rank.
    Waitall,
    /// Barrier across all ranks.
    Barrier,
    /// Broadcast from `root`.
    Bcast {
        /// Root rank.
        root: Expr,
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Reduce to `root`.
    Reduce {
        /// Root rank.
        root: Expr,
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Allreduce across all ranks.
    Allreduce {
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Personalized all-to-all exchange.
    Alltoall {
        /// Per-pair payload size in bytes.
        bytes: Expr,
    },
    /// Allgather across all ranks.
    Allgather {
        /// Per-rank payload size in bytes.
        bytes: Expr,
    },
}

impl MpiOp {
    /// Short lowercase name, matching the source syntax.
    pub fn name(&self) -> &'static str {
        match self {
            MpiOp::Send { .. } => "send",
            MpiOp::Recv { .. } => "recv",
            MpiOp::Sendrecv { .. } => "sendrecv",
            MpiOp::Isend { .. } => "isend",
            MpiOp::Irecv { .. } => "irecv",
            MpiOp::Wait { .. } => "wait",
            MpiOp::Waitall => "waitall",
            MpiOp::Barrier => "barrier",
            MpiOp::Bcast { .. } => "bcast",
            MpiOp::Reduce { .. } => "reduce",
            MpiOp::Allreduce { .. } => "allreduce",
            MpiOp::Alltoall { .. } => "alltoall",
            MpiOp::Allgather { .. } => "allgather",
        }
    }

    /// Whether this operation involves every rank of the communicator.
    ///
    /// Backtracking (Algorithm 1) stops at collective vertices.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiOp::Barrier
                | MpiOp::Bcast { .. }
                | MpiOp::Reduce { .. }
                | MpiOp::Allreduce { .. }
                | MpiOp::Alltoall { .. }
                | MpiOp::Allgather { .. }
        )
    }

    /// Whether this operation can block waiting on another process.
    pub fn can_wait(&self) -> bool {
        !matches!(self, MpiOp::Isend { .. } | MpiOp::Irecv { .. })
    }
}

/// Expressions: 64-bit integer arithmetic plus function references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference (locals, params, `rank`, `nprocs`, `any`).
    Var(String),
    /// `&foo` — reference to a function, used by indirect calls.
    FuncRef(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Built-in pure function call.
    Builtin {
        /// Which builtin.
        func: BuiltinFn,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: binary op constructor.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x`, 0/1 result).
    Not,
}

/// Binary operators. Comparisons and logical ops yield 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero yields zero, keeping the
    /// simulator total)
    Div,
    /// `%` (modulo by zero yields zero)
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Source-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Pure built-in functions available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuiltinFn {
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Floor of log2; `log2(x) = 0` for `x <= 1`.
    Log2,
    /// Absolute value.
    Abs,
}

impl BuiltinFn {
    /// Source-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinFn::Min => "min",
            BuiltinFn::Max => "max",
            BuiltinFn::Log2 => "log2",
            BuiltinFn::Abs => "abs",
        }
    }

    /// Look up a builtin by its source name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "min" => Some(BuiltinFn::Min),
            "max" => Some(BuiltinFn::Max),
            "log2" => Some(BuiltinFn::Log2),
            "abs" => Some(BuiltinFn::Abs),
            _ => None,
        }
    }

    /// Required argument count.
    pub fn arity(self) -> usize {
        match self {
            BuiltinFn::Min | BuiltinFn::Max => 2,
            BuiltinFn::Log2 | BuiltinFn::Abs => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn stmt(id: NodeId, kind: StmtKind) -> Stmt {
        Stmt {
            id,
            span: Span::synthetic("t.mmpi", id),
            kind,
        }
    }

    #[test]
    fn for_each_stmt_visits_nested_bodies() {
        let inner = stmt(
            2,
            StmtKind::Comp(CompAttrs {
                cycles: Expr::Int(1),
                ins: None,
                lst: None,
                l2_miss: None,
                br_miss: None,
            }),
        );
        let body = Block { stmts: vec![inner] };
        let outer = stmt(
            1,
            StmtKind::For {
                var: "i".into(),
                start: Expr::Int(0),
                end: Expr::Int(4),
                body,
            },
        );
        let program = Program {
            file_name: "t.mmpi".into(),
            params: vec![],
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body: Block { stmts: vec![outer] },
                span: Span::synthetic("t.mmpi", 1),
            }],
            next_node_id: 3,
        };
        let mut seen = vec![];
        program.for_each_stmt(|s| seen.push(s.id));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(program.stmt_count(), 2);
    }

    #[test]
    fn collective_classification_matches_paper() {
        assert!(MpiOp::Allreduce {
            bytes: Expr::Int(8)
        }
        .is_collective());
        assert!(MpiOp::Barrier.is_collective());
        assert!(!MpiOp::Send {
            dst: Expr::Int(0),
            tag: Expr::Int(0),
            bytes: Expr::Int(1)
        }
        .is_collective());
        assert!(!MpiOp::Wait {
            req: Expr::var("r")
        }
        .is_collective());
    }

    #[test]
    fn nonblocking_ops_do_not_wait() {
        assert!(!MpiOp::Isend {
            dst: Expr::Int(1),
            tag: Expr::Int(0),
            bytes: Expr::Int(8),
            req: "r".into()
        }
        .can_wait());
        assert!(MpiOp::Waitall.can_wait());
    }

    #[test]
    fn builtin_round_trip() {
        for b in [
            BuiltinFn::Min,
            BuiltinFn::Max,
            BuiltinFn::Log2,
            BuiltinFn::Abs,
        ] {
            assert_eq!(BuiltinFn::from_name(b.name()), Some(b));
        }
        assert_eq!(BuiltinFn::from_name("sin"), None);
    }
}
