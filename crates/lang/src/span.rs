//! Source locations.
//!
//! Every statement in a MiniMPI program carries a [`Span`] so that the
//! detection pipeline can report root causes as `file:line`, mirroring the
//! paper's reports ("the LOOP at bval3d.F:155").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An interned source file name shared by all spans of one parse.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceFile {
    /// File name as given to [`crate::parse_program`], e.g. `"nudt.F"`.
    pub name: Arc<str>,
}

impl SourceFile {
    /// Create a new source-file handle.
    pub fn new(name: &str) -> Self {
        SourceFile {
            name: Arc::from(name),
        }
    }
}

/// A location in a source file: 1-based line and column plus the file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// The file this span belongs to.
    pub file: SourceFile,
    /// 1-based line number of the first token.
    pub line: u32,
    /// 1-based column number of the first token.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(file: SourceFile, line: u32, col: u32) -> Self {
        Span { file, line, col }
    }

    /// A placeholder span for synthesized nodes (e.g. from the builder).
    pub fn synthetic(file_name: &str, line: u32) -> Self {
        Span {
            file: SourceFile::new(file_name),
            line,
            col: 0,
        }
    }

    /// Render as `file:line`, the format used in root-cause reports.
    pub fn file_line(&self) -> String {
        format!("{}:{}", self.file.name, self.line)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file.name, self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_line_formats_like_paper_reports() {
        let span = Span::new(SourceFile::new("bval3d.F"), 155, 9);
        assert_eq!(span.file_line(), "bval3d.F:155");
        assert_eq!(span.to_string(), "bval3d.F:155:9");
    }

    #[test]
    fn synthetic_spans_have_zero_column() {
        let span = Span::synthetic("gen.mmpi", 3);
        assert_eq!(span.col, 0);
        assert_eq!(span.line, 3);
    }

    #[test]
    fn spans_share_file_name_storage() {
        let file = SourceFile::new("a.mmpi");
        let s1 = Span::new(file.clone(), 1, 1);
        let s2 = Span::new(file, 2, 1);
        assert!(Arc::ptr_eq(&s1.file.name, &s2.file.name));
    }
}
