//! Error types for the MiniMPI front-end.

use crate::span::Span;
use std::fmt;

/// Result alias used across the front-end.
pub type LangResult<T> = Result<T, LangError>;

/// A lexing, parsing, or semantic error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Which stage produced the error.
    pub kind: ErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Location of the offending token/statement, if known.
    pub span: Option<Span>,
}

/// The front-end stage an error originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Invalid character or malformed literal.
    Lex,
    /// Unexpected token / malformed syntax.
    Parse,
    /// Name resolution, arity, or intrinsic-argument violation.
    Semantic,
}

impl LangError {
    /// Construct a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: ErrorKind::Lex,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Construct a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: ErrorKind::Parse,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Construct a semantic error.
    pub fn semantic(message: impl Into<String>, span: Option<Span>) -> Self {
        LangError {
            kind: ErrorKind::Semantic,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Semantic => "semantic error",
        };
        match &self.span {
            Some(span) => write!(f, "{stage} at {span}: {}", self.message),
            None => write!(f, "{stage}: {}", self.message),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SourceFile, Span};

    #[test]
    fn display_includes_stage_and_location() {
        let err = LangError::parse("expected `{`", Span::new(SourceFile::new("x.mmpi"), 4, 2));
        assert_eq!(err.to_string(), "parse error at x.mmpi:4:2: expected `{`");
    }

    #[test]
    fn display_without_span() {
        let err = LangError::semantic("missing `main`", None);
        assert_eq!(err.to_string(), "semantic error: missing `main`");
    }
}
