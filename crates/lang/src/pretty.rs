//! Pretty-printer for MiniMPI.
//!
//! The output is valid MiniMPI that re-parses to a structurally equal AST
//! (same statement order, hence the same [`crate::ast::NodeId`]s; spans
//! differ). Used for dumping generated workloads and by round-trip tests.

use crate::ast::*;
use crate::span::Span;
use std::fmt::Write;

/// Render a program as MiniMPI source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for param in &program.params {
        let _ = writeln!(out, "param {} = {};", param.name, param.default);
    }
    if !program.params.is_empty() {
        out.push('\n');
    }
    for (i, func) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, func);
    }
    out
}

fn print_function(out: &mut String, func: &Function) {
    let _ = write!(out, "fn {}(", func.name);
    for (i, p) in func.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p);
    }
    out.push_str(") ");
    print_block(out, &func.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, block: &Block, level: usize) {
    out.push_str("{\n");
    for stmt in &block.stmts {
        indent(out, level + 1);
        print_stmt(out, stmt, level + 1);
        out.push('\n');
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Let { name, value } => {
            let _ = write!(out, "let {name} = {};", expr(value));
        }
        StmtKind::Assign { name, value } => {
            let _ = write!(out, "{name} = {};", expr(value));
        }
        StmtKind::For {
            var,
            start,
            end,
            body,
        } => {
            let _ = write!(out, "for {var} in {} .. {} ", expr(start), expr(end));
            print_block(out, body, level);
        }
        StmtKind::While { cond, body } => {
            let _ = write!(out, "while {} ", expr(cond));
            print_block(out, body, level);
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            let _ = write!(out, "if {} ", expr(cond));
            print_block(out, then_block, level);
            if let Some(e) = else_block {
                out.push_str(" else ");
                print_block(out, e, level);
            }
        }
        StmtKind::Call { callee, args } => {
            let _ = write!(out, "{callee}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&expr(a));
            }
            out.push_str(");");
        }
        StmtKind::CallIndirect { target, args } => {
            let _ = write!(out, "call {}(", expr_atom(target));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&expr(a));
            }
            out.push_str(");");
        }
        StmtKind::Comp(attrs) => {
            let _ = write!(out, "comp(cycles = {}", expr(&attrs.cycles));
            if let Some(e) = &attrs.ins {
                let _ = write!(out, ", ins = {}", expr(e));
            }
            if let Some(e) = &attrs.lst {
                let _ = write!(out, ", lst = {}", expr(e));
            }
            if let Some(e) = &attrs.l2_miss {
                let _ = write!(out, ", miss = {}", expr(e));
            }
            if let Some(e) = &attrs.br_miss {
                let _ = write!(out, ", brmiss = {}", expr(e));
            }
            out.push_str(");");
        }
        StmtKind::Mpi(op) => print_mpi(out, op),
        StmtKind::Return => out.push_str("return;"),
    }
}

fn print_mpi(out: &mut String, op: &MpiOp) {
    match op {
        MpiOp::Send { dst, tag, bytes } => {
            let _ = write!(
                out,
                "send(dst = {}, tag = {}, bytes = {});",
                expr(dst),
                expr(tag),
                expr(bytes)
            );
        }
        MpiOp::Recv { src, tag } => {
            let _ = write!(out, "recv(src = {}, tag = {});", expr(src), expr(tag));
        }
        MpiOp::Sendrecv {
            dst,
            sendtag,
            src,
            recvtag,
            bytes,
        } => {
            let _ = write!(
                out,
                "sendrecv(dst = {}, sendtag = {}, src = {}, recvtag = {}, bytes = {});",
                expr(dst),
                expr(sendtag),
                expr(src),
                expr(recvtag),
                expr(bytes)
            );
        }
        MpiOp::Isend {
            dst,
            tag,
            bytes,
            req,
        } => {
            let _ = write!(
                out,
                "let {req} = isend(dst = {}, tag = {}, bytes = {});",
                expr(dst),
                expr(tag),
                expr(bytes)
            );
        }
        MpiOp::Irecv { src, tag, req } => {
            let _ = write!(
                out,
                "let {req} = irecv(src = {}, tag = {});",
                expr(src),
                expr(tag)
            );
        }
        MpiOp::Wait { req } => {
            let _ = write!(out, "wait({});", expr(req));
        }
        MpiOp::Waitall => out.push_str("waitall();"),
        MpiOp::Barrier => out.push_str("barrier();"),
        MpiOp::Bcast { root, bytes } => {
            let _ = write!(
                out,
                "bcast(root = {}, bytes = {});",
                expr(root),
                expr(bytes)
            );
        }
        MpiOp::Reduce { root, bytes } => {
            let _ = write!(
                out,
                "reduce(root = {}, bytes = {});",
                expr(root),
                expr(bytes)
            );
        }
        MpiOp::Allreduce { bytes } => {
            let _ = write!(out, "allreduce(bytes = {});", expr(bytes));
        }
        MpiOp::Alltoall { bytes } => {
            let _ = write!(out, "alltoall(bytes = {});", expr(bytes));
        }
        MpiOp::Allgather { bytes } => {
            let _ = write!(out, "allgather(bytes = {});", expr(bytes));
        }
    }
}

/// Render an expression (fully parenthesized compounds, so precedence is
/// preserved on re-parse).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => {
            if *v == i64::MIN {
                // `i64::MIN` has no in-range magnitude to negate (the
                // lexer rejects the bare literal), so print a two-literal
                // expression with the same value; [`normalize_spans`]
                // folds the re-parsed shape back to the literal.
                format!("(-{} - 1)", i64::MAX)
            } else if *v < 0 {
                // Negative literals don't exist in the grammar; print as
                // a parenthesized unary negation so they re-parse.
                format!("(-{})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::FuncRef(name) => format!("&{name}"),
        Expr::Unary { op, expr: inner } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("({sym}{})", expr(inner))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr(lhs), op.symbol(), expr(rhs))
        }
        Expr::Builtin { func, args } => {
            let rendered: Vec<String> = args.iter().map(expr).collect();
            format!("{}({})", func.name(), rendered.join(", "))
        }
    }
}

/// Render an expression suitable for `call <target>(..)` position.
fn expr_atom(e: &Expr) -> String {
    match e {
        Expr::Var(name) => name.clone(),
        other => format!("({})", expr(other)),
    }
}

/// Return a copy of the program with every span replaced by a fixed
/// synthetic span and integer literal normalization applied.
///
/// Literal normalization canonicalizes the two spellings of a negative
/// constant: a unary negation of a literal (`-3`, the only shape the
/// parser can produce) folds to the negative literal itself (`Int(-3)`,
/// the shape builders produce and the printer renders as `(-3)`), and
/// the printer's two-literal spelling of `i64::MIN` folds back to that
/// literal. Both folds are value-preserving under the evaluator's
/// wrapping semantics, so structural equality of normalized programs is
/// the round-trip invariant.
///
/// Useful for structural comparisons in round-trip tests, where the
/// re-parsed AST has different source locations.
pub fn normalize_spans(program: &Program) -> Program {
    let mut p = program.clone();
    let fixed = Span::synthetic("<normalized>", 0);
    for param in &mut p.params {
        param.span = fixed.clone();
    }
    for func in &mut p.functions {
        func.span = fixed.clone();
        normalize_block(&mut func.body, &fixed);
    }
    p
}

fn normalize_block(block: &mut Block, fixed: &Span) {
    for stmt in &mut block.stmts {
        stmt.span = fixed.clone();
        match &mut stmt.kind {
            StmtKind::Let { value, .. } | StmtKind::Assign { value, .. } => {
                normalize_expr(value);
            }
            StmtKind::For {
                start, end, body, ..
            } => {
                normalize_expr(start);
                normalize_expr(end);
                normalize_block(body, fixed);
            }
            StmtKind::While { cond, body } => {
                normalize_expr(cond);
                normalize_block(body, fixed);
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                normalize_expr(cond);
                normalize_block(then_block, fixed);
                if let Some(e) = else_block {
                    normalize_block(e, fixed);
                }
            }
            StmtKind::Call { args, .. } => args.iter_mut().for_each(normalize_expr),
            StmtKind::CallIndirect { target, args } => {
                normalize_expr(target);
                args.iter_mut().for_each(normalize_expr);
            }
            StmtKind::Comp(attrs) => {
                normalize_expr(&mut attrs.cycles);
                for e in [
                    &mut attrs.ins,
                    &mut attrs.lst,
                    &mut attrs.l2_miss,
                    &mut attrs.br_miss,
                ]
                .into_iter()
                .flatten()
                {
                    normalize_expr(e);
                }
            }
            StmtKind::Mpi(op) => normalize_mpi(op),
            StmtKind::Return => {}
        }
    }
}

fn normalize_mpi(op: &mut MpiOp) {
    match op {
        MpiOp::Send { dst, tag, bytes } => {
            normalize_expr(dst);
            normalize_expr(tag);
            normalize_expr(bytes);
        }
        MpiOp::Recv { src, tag } => {
            normalize_expr(src);
            normalize_expr(tag);
        }
        MpiOp::Sendrecv {
            dst,
            sendtag,
            src,
            recvtag,
            bytes,
        } => {
            normalize_expr(dst);
            normalize_expr(sendtag);
            normalize_expr(src);
            normalize_expr(recvtag);
            normalize_expr(bytes);
        }
        MpiOp::Isend {
            dst, tag, bytes, ..
        } => {
            normalize_expr(dst);
            normalize_expr(tag);
            normalize_expr(bytes);
        }
        MpiOp::Irecv { src, tag, .. } => {
            normalize_expr(src);
            normalize_expr(tag);
        }
        MpiOp::Wait { req } => normalize_expr(req),
        MpiOp::Waitall | MpiOp::Barrier => {}
        MpiOp::Bcast { root, bytes } | MpiOp::Reduce { root, bytes } => {
            normalize_expr(root);
            normalize_expr(bytes);
        }
        MpiOp::Allreduce { bytes } | MpiOp::Alltoall { bytes } | MpiOp::Allgather { bytes } => {
            normalize_expr(bytes);
        }
    }
}

fn normalize_expr(e: &mut Expr) {
    match e {
        Expr::Unary {
            op: UnOp::Neg,
            expr: inner,
        } => {
            normalize_expr(inner);
            if let Expr::Int(v) = **inner {
                *e = Expr::Int(v.wrapping_neg());
            }
        }
        Expr::Unary { expr: inner, .. } => normalize_expr(inner),
        Expr::Binary { op, lhs, rhs } => {
            normalize_expr(lhs);
            normalize_expr(rhs);
            // The printer spells `i64::MIN` as `(-MAX - 1)`; fold that
            // exact shape (post-negation-fold: `Int(-MAX) - Int(1)`)
            // back to the literal.
            if *op == BinOp::Sub
                && matches!(**lhs, Expr::Int(a) if a == -i64::MAX)
                && matches!(**rhs, Expr::Int(1))
            {
                *e = Expr::Int(i64::MIN);
            }
        }
        Expr::Builtin { args, .. } => args.iter_mut().for_each(normalize_expr),
        Expr::Int(_) | Expr::Var(_) | Expr::FuncRef(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program("t.mmpi", src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program("t.mmpi", &printed).unwrap_or_else(|e| {
            panic!("pretty output failed to parse: {e}\n---\n{printed}");
        });
        assert_eq!(
            normalize_spans(&p1),
            normalize_spans(&p2),
            "round trip mismatch\n---\n{printed}"
        );
    }

    #[test]
    fn round_trips_comprehensive_program() {
        round_trip(
            r#"
            param N = 4096;
            param ITERS = 25;
            fn main() {
                let chunk = N / nprocs;
                for it in 0 .. ITERS {
                    comp(cycles = chunk * 10, ins = chunk * 8, lst = chunk * 2,
                         miss = chunk / 50, brmiss = chunk / 100);
                    if rank % 2 == 0 && rank + 1 < nprocs {
                        send(dst = rank + 1, tag = it, bytes = 4k);
                    } else if rank % 2 == 1 {
                        recv(src = rank - 1, tag = it);
                    } else {
                        barrier();
                    }
                    let r = irecv(src = any, tag = any);
                    let s = isend(dst = (rank + 1) % nprocs, tag = 9, bytes = 256);
                    wait(r);
                    waitall();
                }
                exchange(chunk);
                let f = &exchange;
                call f(chunk / 2);
                while chunk > 0 {
                    chunk = chunk / 2;
                }
                allreduce(bytes = 8);
                return;
            }
            fn exchange(n) {
                sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
                         sendtag = 5, recvtag = 5, bytes = n);
                bcast(root = 0, bytes = n);
                reduce(root = 0, bytes = n);
                alltoall(bytes = n);
                allgather(bytes = n);
            }
            "#,
        );
    }

    #[test]
    fn round_trips_negative_and_unary() {
        round_trip("fn main() { let x = -3 + (-(4)) * (!0); let y = abs(x - 7); }");
    }

    /// A builder-made negative literal and a parsed unary negation are
    /// different AST shapes that print identically; normalization makes
    /// the round trip structural for both.
    #[test]
    fn negative_literal_round_trips_from_builder() {
        use crate::builder::*;
        let mut b = ProgramBuilder::new("neg.mmpi");
        b.function("main", &[], |f| {
            f.let_("x", int(-3));
            f.let_("y", int(-3) * int(-7) + var("x"));
        });
        let p = b.finish().unwrap();
        let printed = print_program(&p);
        let reparsed = parse_program("neg.mmpi", &printed).unwrap();
        assert_eq!(normalize_spans(&p), normalize_spans(&reparsed));
    }

    /// `i64::MIN` has no literal spelling the lexer accepts; the printer
    /// must still emit parseable, value-identical source for it.
    #[test]
    fn i64_min_prints_parseable_and_round_trips() {
        use crate::builder::*;
        assert_eq!(expr(&int(i64::MIN)), "(-9223372036854775807 - 1)");
        let mut b = ProgramBuilder::new("min.mmpi");
        b.function("main", &[], |f| {
            f.let_("x", int(i64::MIN));
            f.comp_cycles(abs(var("x")));
        });
        let p = b.finish().unwrap();
        let printed = print_program(&p);
        let reparsed = parse_program("min.mmpi", &printed)
            .unwrap_or_else(|e| panic!("MIN output must parse: {e}\n---\n{printed}"));
        assert_eq!(normalize_spans(&p), normalize_spans(&reparsed));
    }

    #[test]
    fn round_trips_nested_control_flow() {
        round_trip(
            "fn main() { for i in 0 .. 4 { for j in i .. 8 { if i < j { comp(cycles = 1); } } } }",
        );
    }

    #[test]
    fn printed_source_is_indented() {
        let p = parse_program("t.mmpi", "fn main() { for i in 0 .. 2 { barrier(); } }").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("\n    for i in 0 .. 2 {\n        barrier();\n    }"));
    }

    #[test]
    fn expr_parenthesization_preserves_shape() {
        let p1 = parse_program("t.mmpi", "fn main() { let x = 1 + 2 * 3 - 4 / 5; }").unwrap();
        let p2 = parse_program("t.mmpi", &print_program(&p1)).unwrap();
        assert_eq!(normalize_spans(&p1), normalize_spans(&p2));
    }
}
