//! # scalana-lang — the MiniMPI language front-end
//!
//! ScalAna's static-analysis stage (paper §III-A) walks LLVM IR produced
//! from C/Fortran sources. This reproduction substitutes a self-contained
//! parallel-program mini-language, **MiniMPI**, that preserves exactly the
//! constructs the analysis consumes: functions, loops, branches, direct and
//! indirect calls, computation blocks with cost/PMU attributes, and the MPI
//! operations the paper intercepts via PMPI.
//!
//! The crate provides:
//! - a lexer ([`lexer`]) and recursive-descent parser ([`parser`]) with
//!   source locations on every statement (root-cause reports point at
//!   `file:line`, as the paper's GUI does),
//! - a typed AST ([`ast`]) in which every statement carries a stable
//!   [`ast::NodeId`] used to key Program Structure Graph vertices and
//!   runtime performance attribution,
//! - semantic checking ([`check`]): name resolution, arity, intrinsic
//!   argument validation,
//! - a pretty-printer ([`pretty`]) whose output re-parses to the same AST,
//! - a programmatic [`builder`] used by the workload generators in
//!   `scalana-apps`.
//!
//! ## Quick example
//!
//! ```
//! use scalana_lang::parse_program;
//!
//! let src = r#"
//! fn main() {
//!     for i in 0 .. 8 {
//!         comp(cycles = 1000, ins = 800);
//!     }
//!     if rank % 2 == 0 {
//!         send(dst = rank + 1, tag = 0, bytes = 1024);
//!     } else {
//!         recv(src = rank - 1, tag = 0);
//!     }
//!     allreduce(bytes = 8);
//! }
//! "#;
//! let program = parse_program("example.mmpi", src).unwrap();
//! assert_eq!(program.functions.len(), 1);
//! ```

pub mod ast;
pub mod builder;
pub mod check;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Expr, Function, MpiOp, NodeId, Program, Stmt};
pub use builder::ProgramBuilder;
pub use error::{LangError, LangResult};
pub use span::{SourceFile, Span};

/// Parse and semantically check a MiniMPI program in one step.
///
/// `file_name` is recorded into every [`Span`] so that downstream
/// root-cause reports can print `file:line` locations.
pub fn parse_program(file_name: &str, source: &str) -> LangResult<Program> {
    let tokens = lexer::lex(file_name, source)?;
    let mut program = parser::parse(file_name, source, tokens)?;
    check::check_program(&mut program)?;
    Ok(program)
}
