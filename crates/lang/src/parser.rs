//! Recursive-descent parser for MiniMPI.
//!
//! Grammar sketch (see the crate docs for an example program):
//!
//! ```text
//! program   := (param | function)*
//! param     := "param" IDENT "=" ["-"] INT ";"
//! function  := "fn" IDENT "(" [IDENT ("," IDENT)*] ")" block
//! block     := "{" stmt* "}"
//! stmt      := "let" IDENT "=" (intrinsic | expr) ";"
//!            | "for" IDENT "in" expr ".." expr block
//!            | "while" expr block
//!            | "if" expr block ("else" (if-stmt | block))?
//!            | "return" ";"
//!            | "call" primary "(" args ")" ";"
//!            | IDENT "=" expr ";"
//!            | IDENT "(" args ")" ";"        // direct call or intrinsic
//! ```
//!
//! MPI operations and `comp` are *intrinsics*: call-statement syntax with
//! named arguments (`send(dst = rank + 1, tag = 0, bytes = 4k)`). The
//! non-blocking `isend`/`irecv` intrinsics appear as the right-hand side of
//! a `let`, binding the request variable consumed by `wait`.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::span::Span;
use crate::token::{Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: NodeId,
    file_name: String,
}

/// Parse a token stream into a [`Program`]. Does not run semantic checks;
/// use [`crate::parse_program`] for the full pipeline.
pub fn parse(file_name: &str, _source: &str, tokens: Vec<Token>) -> LangResult<Program> {
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
        file_name: file_name.to_string(),
    };
    parser.program()
}

/// One argument at a call site: optionally named.
struct Arg {
    name: Option<String>,
    value: Expr,
    span: Span,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span.clone()
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, kind: &TokenKind) -> LangResult<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> LangResult<(String, Span)> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(LangError::parse(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn program(&mut self) -> LangResult<Program> {
        let mut params = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwParam => params.push(self.param_decl()?),
                TokenKind::KwFn => functions.push(self.function()?),
                other => {
                    return Err(LangError::parse(
                        format!("expected `fn` or `param` at top level, found {other}"),
                        self.span(),
                    ));
                }
            }
        }
        Ok(Program {
            file_name: self.file_name.clone(),
            params,
            functions,
            next_node_id: self.next_id,
        })
    }

    fn param_decl(&mut self) -> LangResult<ParamDecl> {
        let span = self.span();
        self.expect(&TokenKind::KwParam)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let negative = if *self.peek() == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        let value_span = self.span();
        let default = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                if negative {
                    -v
                } else {
                    v
                }
            }
            other => {
                return Err(LangError::parse(
                    format!("param default must be an integer literal, found {other}"),
                    value_span,
                ));
            }
        };
        self.expect(&TokenKind::Semi)?;
        Ok(ParamDecl {
            name,
            default,
            span,
        })
    }

    fn function(&mut self) -> LangResult<Function> {
        let span = self.span();
        self.expect(&TokenKind::KwFn)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> LangResult<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(LangError::parse(
                    "unexpected end of input in block",
                    self.span(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> LangResult<Stmt> {
        let span = self.span();
        let id = self.fresh_id();
        let kind = match self.peek().clone() {
            TokenKind::KwLet => self.let_stmt()?,
            TokenKind::KwFor => self.for_stmt()?,
            TokenKind::KwWhile => self.while_stmt()?,
            TokenKind::KwIf => self.if_stmt()?,
            TokenKind::KwReturn => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Return
            }
            TokenKind::KwCall => self.call_indirect_stmt()?,
            TokenKind::Ident(name) => self.ident_stmt(name)?,
            other => {
                return Err(LangError::parse(
                    format!("expected statement, found {other}"),
                    span,
                ));
            }
        };
        Ok(Stmt { id, span, kind })
    }

    fn let_stmt(&mut self) -> LangResult<StmtKind> {
        self.expect(&TokenKind::KwLet)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        // `let r = isend(..)` / `let r = irecv(..)` bind request variables.
        if let TokenKind::Ident(callee) = self.peek().clone() {
            if (callee == "isend" || callee == "irecv") && *self.peek2() == TokenKind::LParen {
                let call_span = self.span();
                self.bump();
                let args = self.arg_list()?;
                self.expect(&TokenKind::Semi)?;
                let op = build_nonblocking(&callee, name, args, &call_span)?;
                return Ok(StmtKind::Mpi(op));
            }
        }
        let value = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(StmtKind::Let { name, value })
    }

    fn for_stmt(&mut self) -> LangResult<StmtKind> {
        self.expect(&TokenKind::KwFor)?;
        let (var, _) = self.expect_ident()?;
        self.expect(&TokenKind::KwIn)?;
        let start = self.expr()?;
        self.expect(&TokenKind::DotDot)?;
        let end = self.expr()?;
        let body = self.block()?;
        Ok(StmtKind::For {
            var,
            start,
            end,
            body,
        })
    }

    fn while_stmt(&mut self) -> LangResult<StmtKind> {
        self.expect(&TokenKind::KwWhile)?;
        let cond = self.expr()?;
        let body = self.block()?;
        Ok(StmtKind::While { cond, body })
    }

    fn if_stmt(&mut self) -> LangResult<StmtKind> {
        self.expect(&TokenKind::KwIf)?;
        let cond = self.expr()?;
        let then_block = self.block()?;
        let else_block = if *self.peek() == TokenKind::KwElse {
            self.bump();
            if *self.peek() == TokenKind::KwIf {
                // `else if` desugars to an else block with one if-stmt.
                let span = self.span();
                let id = self.fresh_id();
                let kind = self.if_stmt()?;
                Some(Block {
                    stmts: vec![Stmt { id, span, kind }],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(StmtKind::If {
            cond,
            then_block,
            else_block,
        })
    }

    fn call_indirect_stmt(&mut self) -> LangResult<StmtKind> {
        self.expect(&TokenKind::KwCall)?;
        // The target must be parsed without consuming the argument list's
        // `(`, so a bare identifier is taken as a variable here (unlike in
        // `primary`, where `ident(` means a builtin call).
        let target = match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Expr::Var(name)
            }
            TokenKind::Amp => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Expr::FuncRef(name)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                e
            }
            other => {
                return Err(LangError::parse(
                    format!("expected indirect-call target, found {other}"),
                    self.span(),
                ));
            }
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(StmtKind::CallIndirect { target, args })
    }

    /// Statement beginning with an identifier: assignment, intrinsic, or
    /// direct call.
    fn ident_stmt(&mut self, name: String) -> LangResult<StmtKind> {
        if *self.peek2() == TokenKind::Assign {
            self.bump(); // ident
            self.bump(); // `=`
            let value = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(StmtKind::Assign { name, value });
        }
        if *self.peek2() != TokenKind::LParen {
            return Err(LangError::parse(
                format!("expected `=` or `(` after `{name}`"),
                self.span(),
            ));
        }
        let call_span = self.span();
        self.bump(); // ident
        let args = self.arg_list()?;
        self.expect(&TokenKind::Semi)?;
        if let Some(kind) = build_intrinsic(&name, &args, &call_span)? {
            return Ok(kind);
        }
        // Direct call to a user function: arguments must be positional.
        let mut positional = Vec::with_capacity(args.len());
        for arg in args {
            if let Some(arg_name) = arg.name {
                return Err(LangError::parse(
                    format!("named argument `{arg_name}` not allowed in call to `{name}`"),
                    arg.span,
                ));
            }
            positional.push(arg.value);
        }
        Ok(StmtKind::Call {
            callee: name,
            args: positional,
        })
    }

    fn arg_list(&mut self) -> LangResult<Vec<Arg>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let span = self.span();
                // Named argument: IDENT `=` expr (but not `==`).
                let name = if let TokenKind::Ident(n) = self.peek().clone() {
                    if *self.peek2() == TokenKind::Assign {
                        self.bump();
                        self.bump();
                        Some(n)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let value = self.expr()?;
                args.push(Arg { name, value, span });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> LangResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> LangResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                })
            }
            TokenKind::Bang => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> LangResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Amp => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Ok(Expr::FuncRef(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    let func = BuiltinFn::from_name(&name).ok_or_else(|| {
                        LangError::parse(
                            format!(
                                "unknown builtin `{name}` in expression (user functions \
                                     cannot be called in expressions)"
                            ),
                            span.clone(),
                        )
                    })?;
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    if args.len() != func.arity() {
                        return Err(LangError::parse(
                            format!(
                                "builtin `{}` takes {} argument(s), got {}",
                                func.name(),
                                func.arity(),
                                args.len()
                            ),
                            span,
                        ));
                    }
                    Ok(Expr::Builtin { func, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(LangError::parse(
                format!("expected expression, found {other}"),
                span,
            )),
        }
    }
}

// ----- intrinsic construction -----

fn find_arg(args: &[Arg], name: &str) -> Option<Expr> {
    args.iter()
        .find(|a| a.name.as_deref() == Some(name))
        .map(|a| a.value.clone())
}

fn required(args: &[Arg], name: &str, intrinsic: &str, span: &Span) -> LangResult<Expr> {
    find_arg(args, name).ok_or_else(|| {
        LangError::parse(
            format!("intrinsic `{intrinsic}` requires argument `{name}`"),
            span.clone(),
        )
    })
}

fn optional(args: &[Arg], name: &str, default: i64) -> Expr {
    find_arg(args, name).unwrap_or(Expr::Int(default))
}

fn validate_names(
    args: &[Arg],
    allowed: &[&str],
    intrinsic: &str,
    span: &Span,
    allow_positional: bool,
) -> LangResult<()> {
    for arg in args {
        match &arg.name {
            Some(name) if !allowed.contains(&name.as_str()) => {
                return Err(LangError::parse(
                    format!("intrinsic `{intrinsic}` has no argument `{name}`"),
                    span.clone(),
                ));
            }
            None if !allow_positional => {
                return Err(LangError::parse(
                    format!("intrinsic `{intrinsic}` requires named arguments"),
                    span.clone(),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

fn build_nonblocking(callee: &str, req: String, args: Vec<Arg>, span: &Span) -> LangResult<MpiOp> {
    match callee {
        "isend" => {
            validate_names(&args, &["dst", "tag", "bytes"], "isend", span, false)?;
            Ok(MpiOp::Isend {
                dst: required(&args, "dst", "isend", span)?,
                tag: optional(&args, "tag", 0),
                bytes: optional(&args, "bytes", 8),
                req,
            })
        }
        "irecv" => {
            validate_names(&args, &["src", "tag"], "irecv", span, false)?;
            Ok(MpiOp::Irecv {
                src: required(&args, "src", "irecv", span)?,
                tag: optional(&args, "tag", 0),
                req,
            })
        }
        _ => unreachable!("caller checked callee"),
    }
}

/// Build an intrinsic statement if `name` names one; `Ok(None)` means a
/// plain user-function call.
fn build_intrinsic(name: &str, args: &[Arg], span: &Span) -> LangResult<Option<StmtKind>> {
    let kind = match name {
        "comp" => {
            validate_names(
                args,
                &["cycles", "ins", "lst", "miss", "brmiss"],
                name,
                span,
                false,
            )?;
            StmtKind::Comp(CompAttrs {
                cycles: required(args, "cycles", name, span)?,
                ins: find_arg(args, "ins"),
                lst: find_arg(args, "lst"),
                l2_miss: find_arg(args, "miss"),
                br_miss: find_arg(args, "brmiss"),
            })
        }
        "send" => {
            validate_names(args, &["dst", "tag", "bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Send {
                dst: required(args, "dst", name, span)?,
                tag: optional(args, "tag", 0),
                bytes: optional(args, "bytes", 8),
            })
        }
        "recv" => {
            validate_names(args, &["src", "tag"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Recv {
                src: required(args, "src", name, span)?,
                tag: optional(args, "tag", 0),
            })
        }
        "sendrecv" => {
            validate_names(
                args,
                &["dst", "sendtag", "src", "recvtag", "bytes"],
                name,
                span,
                false,
            )?;
            StmtKind::Mpi(MpiOp::Sendrecv {
                dst: required(args, "dst", name, span)?,
                sendtag: optional(args, "sendtag", 0),
                src: required(args, "src", name, span)?,
                recvtag: optional(args, "recvtag", 0),
                bytes: optional(args, "bytes", 8),
            })
        }
        "isend" | "irecv" => {
            return Err(LangError::parse(
                format!("`{name}` must bind a request: `let r = {name}(..);`"),
                span.clone(),
            ));
        }
        "wait" => {
            validate_names(args, &["req"], name, span, true)?;
            let req = if let Some(e) = find_arg(args, "req") {
                e
            } else if args.len() == 1 {
                args[0].value.clone()
            } else {
                return Err(LangError::parse(
                    "intrinsic `wait` takes exactly one request argument",
                    span.clone(),
                ));
            };
            StmtKind::Mpi(MpiOp::Wait { req })
        }
        "waitall" => {
            if !args.is_empty() {
                return Err(LangError::parse(
                    "intrinsic `waitall` takes no arguments",
                    span.clone(),
                ));
            }
            StmtKind::Mpi(MpiOp::Waitall)
        }
        "barrier" => {
            if !args.is_empty() {
                return Err(LangError::parse(
                    "intrinsic `barrier` takes no arguments",
                    span.clone(),
                ));
            }
            StmtKind::Mpi(MpiOp::Barrier)
        }
        "bcast" => {
            validate_names(args, &["root", "bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Bcast {
                root: optional(args, "root", 0),
                bytes: optional(args, "bytes", 8),
            })
        }
        "reduce" => {
            validate_names(args, &["root", "bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Reduce {
                root: optional(args, "root", 0),
                bytes: optional(args, "bytes", 8),
            })
        }
        "allreduce" => {
            validate_names(args, &["bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Allreduce {
                bytes: optional(args, "bytes", 8),
            })
        }
        "alltoall" => {
            validate_names(args, &["bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Alltoall {
                bytes: optional(args, "bytes", 8),
            })
        }
        "allgather" => {
            validate_names(args, &["bytes"], name, span, false)?;
            StmtKind::Mpi(MpiOp::Allgather {
                bytes: optional(args, "bytes", 8),
            })
        }
        _ => return Ok(None),
    };
    Ok(Some(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> LangResult<Program> {
        let tokens = lex("t.mmpi", src)?;
        parse("t.mmpi", src, tokens)
    }

    fn main_stmts(src: &str) -> Vec<Stmt> {
        let program = parse_src(src).unwrap();
        program.function("main").unwrap().body.stmts.clone()
    }

    #[test]
    fn parses_minimal_program() {
        let program = parse_src("fn main() { }").unwrap();
        assert_eq!(program.functions.len(), 1);
        assert!(program.functions[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_params() {
        let program = parse_src("param N = 64k;\nparam D = -3;\nfn main() { }").unwrap();
        assert_eq!(program.params.len(), 2);
        assert_eq!(program.params[0].default, 64 << 10);
        assert_eq!(program.params[1].default, -3);
    }

    #[test]
    fn parses_for_loop_with_comp() {
        let stmts = main_stmts("fn main() { for i in 0 .. 10 { comp(cycles = i * 2); } }");
        match &stmts[0].kind {
            StmtKind::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert!(matches!(body.stmts[0].kind, StmtKind::Comp(_)));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let stmts = main_stmts(
            "fn main() { if rank == 0 { barrier(); } else if rank == 1 { barrier(); } \
             else { barrier(); } }",
        );
        let StmtKind::If {
            else_block: Some(eb),
            ..
        } = &stmts[0].kind
        else {
            panic!("expected if");
        };
        assert!(matches!(eb.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_send_with_defaults() {
        let stmts = main_stmts("fn main() { send(dst = rank + 1); }");
        let StmtKind::Mpi(MpiOp::Send { tag, bytes, .. }) = &stmts[0].kind else {
            panic!("expected send");
        };
        assert_eq!(*tag, Expr::Int(0));
        assert_eq!(*bytes, Expr::Int(8));
    }

    #[test]
    fn parses_nonblocking_binding() {
        let stmts =
            main_stmts("fn main() { let r = irecv(src = any, tag = 3); wait(r); waitall(); }");
        let StmtKind::Mpi(MpiOp::Irecv { req, src, .. }) = &stmts[0].kind else {
            panic!("expected irecv");
        };
        assert_eq!(req, "r");
        assert_eq!(*src, Expr::var("any"));
        assert!(matches!(&stmts[1].kind, StmtKind::Mpi(MpiOp::Wait { .. })));
        assert!(matches!(&stmts[2].kind, StmtKind::Mpi(MpiOp::Waitall)));
    }

    #[test]
    fn bare_isend_is_rejected() {
        let err = parse_src("fn main() { isend(dst = 1); }").unwrap_err();
        assert!(err.message.contains("must bind a request"));
    }

    #[test]
    fn parses_direct_and_indirect_calls() {
        let stmts =
            main_stmts("fn main() { foo(1, rank); let f = &foo; call f(2); } fn foo(a, b) { }");
        assert!(
            matches!(&stmts[0].kind, StmtKind::Call { callee, args } if callee == "foo" && args.len() == 2)
        );
        assert!(matches!(&stmts[1].kind, StmtKind::Let { .. }));
        assert!(matches!(&stmts[2].kind, StmtKind::CallIndirect { .. }));
    }

    #[test]
    fn unknown_named_argument_is_rejected() {
        let err = parse_src("fn main() { send(dest = 1); }").unwrap_err();
        assert!(err.message.contains("no argument `dest`"));
    }

    #[test]
    fn expression_precedence() {
        let stmts = main_stmts("fn main() { let x = 1 + 2 * 3; }");
        let StmtKind::Let { value, .. } = &stmts[0].kind else {
            panic!()
        };
        // 1 + (2 * 3)
        assert_eq!(
            *value,
            Expr::bin(
                BinOp::Add,
                Expr::Int(1),
                Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn logical_and_comparison_precedence() {
        let stmts = main_stmts("fn main() { let x = rank < 2 && nprocs > 4 || 0; }");
        let StmtKind::Let { value, .. } = &stmts[0].kind else {
            panic!()
        };
        let Expr::Binary { op: BinOp::Or, .. } = value else {
            panic!("|| should be outermost: {value:?}");
        };
    }

    #[test]
    fn builtins_parse_with_arity_check() {
        let stmts = main_stmts("fn main() { let x = max(rank, 1) + log2(nprocs); }");
        assert!(matches!(&stmts[0].kind, StmtKind::Let { .. }));
        assert!(parse_src("fn main() { let x = max(1); }").is_err());
        assert!(parse_src("fn main() { let x = sin(1); }").is_err());
    }

    #[test]
    fn node_ids_are_unique_and_dense() {
        let program =
            parse_src("fn main() { let a = 1; for i in 0 .. 2 { comp(cycles = 1); } barrier(); }")
                .unwrap();
        let mut ids = vec![];
        program.for_each_stmt(|s| ids.push(s.id));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
        assert_eq!(program.next_node_id as usize, ids.len());
    }

    #[test]
    fn assignment_statement() {
        let stmts = main_stmts("fn main() { let x = 0; x = x + 1; }");
        assert!(matches!(&stmts[1].kind, StmtKind::Assign { name, .. } if name == "x"));
    }

    #[test]
    fn while_loop() {
        let stmts = main_stmts("fn main() { let x = 4; while x > 0 { x = x - 1; } }");
        assert!(matches!(&stmts[1].kind, StmtKind::While { .. }));
    }

    #[test]
    fn errors_carry_location() {
        let err = parse_src("fn main() {\n  let = 3;\n}").unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(span.line, 2);
    }

    #[test]
    fn top_level_junk_is_rejected() {
        assert!(parse_src("let x = 1;").is_err());
    }

    #[test]
    fn sendrecv_full_form() {
        let stmts = main_stmts(
            "fn main() { sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs, \
             sendtag = 1, recvtag = 1, bytes = 64k); }",
        );
        assert!(matches!(
            &stmts[0].kind,
            StmtKind::Mpi(MpiOp::Sendrecv { .. })
        ));
    }
}
