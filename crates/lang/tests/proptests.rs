//! Property-based tests for the MiniMPI front-end.
//!
//! - the lexer never panics on arbitrary input,
//! - the parser never panics on arbitrary token-shaped text,
//! - pretty-printing a generated program re-parses to a structurally
//!   identical AST (the front-end's core invariant).

use proptest::prelude::*;
use scalana_lang::ast::*;
use scalana_lang::pretty::{normalize_spans, print_program};
use scalana_lang::span::Span;
use scalana_lang::{lexer, parse_program};

// ----- strategies -----

/// Variable names guaranteed to be in scope in generated bodies
/// (`P0` is a program parameter, usable everywhere).
const SCOPE_VARS: &[&str] = &["rank", "nprocs", "n0", "n1", "P0"];

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..10_000).prop_map(Expr::Int),
        // The full literal range, including i64::MIN — the printer emits
        // negatives parenthesized and MIN as `(-MAX - 1)`, and
        // normalization folds both back to plain literals.
        (i64::MIN..=i64::MAX).prop_map(Expr::Int),
        proptest::sample::select(SCOPE_VARS).prop_map(|v| Expr::Var(v.to_string())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Builtin {
                func: BuiltinFn::Max,
                args: vec![a, b],
            }),
            inner.prop_map(|e| Expr::Builtin {
                func: BuiltinFn::Abs,
                args: vec![e]
            }),
        ]
    })
    .boxed()
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_mpi(expr_depth: u32) -> BoxedStrategy<MpiOp> {
    let e = move || arb_expr(expr_depth);
    prop_oneof![
        (e(), e(), e()).prop_map(|(dst, tag, bytes)| MpiOp::Send { dst, tag, bytes }),
        (e(), e()).prop_map(|(src, tag)| MpiOp::Recv { src, tag }),
        (e(), e(), e(), e(), e()).prop_map(|(dst, sendtag, src, recvtag, bytes)| {
            MpiOp::Sendrecv {
                dst,
                sendtag,
                src,
                recvtag,
                bytes,
            }
        }),
        Just(MpiOp::Waitall),
        Just(MpiOp::Barrier),
        (e(), e()).prop_map(|(root, bytes)| MpiOp::Bcast { root, bytes }),
        (e(), e()).prop_map(|(root, bytes)| MpiOp::Reduce { root, bytes }),
        e().prop_map(|bytes| MpiOp::Allreduce { bytes }),
        e().prop_map(|bytes| MpiOp::Alltoall { bytes }),
        e().prop_map(|bytes| MpiOp::Allgather { bytes }),
    ]
    .boxed()
}

fn arb_comp() -> impl Strategy<Value = StmtKind> {
    let opt = || prop_oneof![Just(None), arb_expr(1).prop_map(Some),];
    (arb_expr(2), opt(), opt(), opt(), opt()).prop_map(|(cycles, ins, lst, l2_miss, br_miss)| {
        StmtKind::Comp(CompAttrs {
            cycles,
            ins,
            lst,
            l2_miss,
            br_miss,
        })
    })
}

fn arb_stmt_kind(depth: u32) -> BoxedStrategy<StmtKind> {
    let e = move || arb_expr(2);
    let leaf = prop_oneof![
        arb_comp(),
        arb_mpi(2).prop_map(StmtKind::Mpi),
        Just(StmtKind::Return),
    ];
    leaf.prop_recursive(depth, 24, 3, move |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (e(), e(), block.clone()).prop_map(|(start, end, kinds)| StmtKind::For {
                var: "i".to_string(),
                start,
                end,
                body: kinds_to_block(kinds),
            }),
            (e(), block.clone()).prop_map(|(cond, kinds)| StmtKind::While {
                cond,
                body: kinds_to_block(kinds),
            }),
            (e(), block.clone(), block).prop_map(|(cond, t, f)| StmtKind::If {
                cond,
                then_block: kinds_to_block(t),
                else_block: Some(kinds_to_block(f)),
            }),
        ]
    })
    .boxed()
}

fn kinds_to_block(kinds: Vec<StmtKind>) -> Block {
    Block {
        stmts: kinds
            .into_iter()
            .map(|kind| Stmt {
                id: 0,
                span: Span::synthetic("gen.mmpi", 1),
                kind,
            })
            .collect(),
    }
}

fn renumber(program: &mut Program) {
    // Give statements fresh pre-order ids, matching what a parse assigns.
    fn walk(block: &mut Block, next: &mut NodeId) {
        for stmt in &mut block.stmts {
            stmt.id = *next;
            *next += 1;
            match &mut stmt.kind {
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(body, next),
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    walk(then_block, next);
                    if let Some(e) = else_block {
                        walk(e, next);
                    }
                }
                _ => {}
            }
        }
    }
    let mut next = 0;
    for func in &mut program.functions {
        walk(&mut func.body, &mut next);
    }
    program.next_node_id = next;
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt {
        id: 0,
        span: Span::synthetic("gen.mmpi", 1),
        kind,
    }
}

/// The scope-variable prelude every generated function body starts with.
fn prelude() -> Vec<Stmt> {
    vec![
        stmt(StmtKind::Let {
            name: "n0".into(),
            value: Expr::Int(4),
        }),
        stmt(StmtKind::Let {
            name: "n1".into(),
            value: Expr::Int(7),
        }),
    ]
}

/// A scoping-safe non-blocking group: `irecv`/`isend` bind fresh request
/// variables which the two `wait`s then reference — covering the
/// `let r = i...(..)` statement forms and `wait(expr)`.
fn nonblocking_group(src: Expr, dst: Expr, bytes: Expr) -> Vec<Stmt> {
    vec![
        stmt(StmtKind::Mpi(MpiOp::Irecv {
            src,
            tag: Expr::Int(3),
            req: "ra".into(),
        })),
        stmt(StmtKind::Mpi(MpiOp::Isend {
            dst,
            tag: Expr::Int(3),
            bytes,
            req: "rb".into(),
        })),
        stmt(StmtKind::Mpi(MpiOp::Wait {
            req: Expr::Var("ra".into()),
        })),
        stmt(StmtKind::Mpi(MpiOp::Wait {
            req: Expr::Var("rb".into()),
        })),
    ]
}

/// A full program: a `P0` parameter with an arbitrary (representable)
/// default, a `helper(n)` function, and a `main` that may open with a
/// non-blocking group and always ends with a call to `helper` — direct,
/// or indirect through a function-reference local.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_stmt_kind(3), 1..6),
        proptest::collection::vec(arb_stmt_kind(2), 1..4),
        // i64::MIN is deliberately unrepresentable as a param default
        // (the grammar is `[-] INT`); the checker rejects it, so the
        // strategy stops one short of it.
        (i64::MIN + 1..=i64::MAX),
        proptest::bool::ANY,
        (arb_expr(1), arb_expr(1), arb_expr(1)),
        arb_expr(1),
        proptest::bool::ANY,
    )
        .prop_map(
            |(main_kinds, helper_kinds, p0, group, (src, dst, bytes), arg, indirect)| {
                let mut main_stmts = prelude();
                if group {
                    main_stmts.extend(nonblocking_group(src, dst, bytes));
                }
                main_stmts.extend(main_kinds.into_iter().map(stmt));
                if indirect {
                    main_stmts.push(stmt(StmtKind::Let {
                        name: "fp".into(),
                        value: Expr::FuncRef("helper".into()),
                    }));
                    main_stmts.push(stmt(StmtKind::CallIndirect {
                        target: Expr::Var("fp".into()),
                        args: vec![arg],
                    }));
                } else {
                    main_stmts.push(stmt(StmtKind::Call {
                        callee: "helper".into(),
                        args: vec![arg],
                    }));
                }

                let mut helper_stmts = prelude();
                helper_stmts.extend(helper_kinds.into_iter().map(stmt));

                let mut program = Program {
                    file_name: "gen.mmpi".into(),
                    params: vec![ParamDecl {
                        name: "P0".into(),
                        default: p0,
                        span: Span::synthetic("gen.mmpi", 1),
                    }],
                    functions: vec![
                        Function {
                            name: "main".into(),
                            params: vec![],
                            body: Block { stmts: main_stmts },
                            span: Span::synthetic("gen.mmpi", 1),
                        },
                        Function {
                            name: "helper".into(),
                            params: vec!["n".into()],
                            body: Block {
                                stmts: helper_stmts,
                            },
                            span: Span::synthetic("gen.mmpi", 1),
                        },
                    ],
                    next_node_id: 0,
                };
                renumber(&mut program);
                program
            },
        )
}

// ----- properties -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lexer::lex("fuzz.mmpi", &input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(input in "[a-z0-9(){};=+*/%<>&|!., \n]{0,200}") {
        let _ = parse_program("fuzz.mmpi", &input);
    }

    #[test]
    fn pretty_print_round_trips(program in arb_program()) {
        let printed = print_program(&program);
        let reparsed = parse_program("gen.mmpi", &printed)
            .expect("pretty output must parse");
        prop_assert_eq!(normalize_spans(&program), normalize_spans(&reparsed));
    }

    #[test]
    fn lexer_accepts_all_integer_forms(v in 0i64..1_000_000, sep in proptest::bool::ANY) {
        let text = if sep {
            // Insert a `_` separator in the middle of the digits.
            let s = v.to_string();
            let mid = s.len() / 2;
            if mid == 0 { s } else { format!("{}_{}", &s[..mid], &s[mid..]) }
        } else {
            v.to_string()
        };
        let toks = lexer::lex("n.mmpi", &text).unwrap();
        prop_assert_eq!(&toks[0].kind, &scalana_lang::token::TokenKind::Int(v));
    }
}
