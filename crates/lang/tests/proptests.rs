//! Property-based tests for the MiniMPI front-end.
//!
//! - the lexer never panics on arbitrary input,
//! - the parser never panics on arbitrary token-shaped text,
//! - pretty-printing a generated program re-parses to a structurally
//!   identical AST (the front-end's core invariant).

use proptest::prelude::*;
use scalana_lang::ast::*;
use scalana_lang::pretty::{normalize_spans, print_program};
use scalana_lang::span::Span;
use scalana_lang::{lexer, parse_program};

// ----- strategies -----

/// Variable names guaranteed to be in scope in generated bodies.
const SCOPE_VARS: &[&str] = &["rank", "nprocs", "n0", "n1"];

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..10_000).prop_map(Expr::Int),
        proptest::sample::select(SCOPE_VARS).prop_map(|v| Expr::Var(v.to_string())),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Builtin {
                func: BuiltinFn::Max,
                args: vec![a, b],
            }),
            inner.prop_map(|e| Expr::Builtin {
                func: BuiltinFn::Abs,
                args: vec![e]
            }),
        ]
    })
    .boxed()
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_mpi(expr_depth: u32) -> BoxedStrategy<MpiOp> {
    let e = move || arb_expr(expr_depth);
    prop_oneof![
        (e(), e(), e()).prop_map(|(dst, tag, bytes)| MpiOp::Send { dst, tag, bytes }),
        (e(), e()).prop_map(|(src, tag)| MpiOp::Recv { src, tag }),
        (e(), e(), e(), e(), e()).prop_map(|(dst, sendtag, src, recvtag, bytes)| {
            MpiOp::Sendrecv {
                dst,
                sendtag,
                src,
                recvtag,
                bytes,
            }
        }),
        Just(MpiOp::Waitall),
        Just(MpiOp::Barrier),
        (e(), e()).prop_map(|(root, bytes)| MpiOp::Bcast { root, bytes }),
        (e(), e()).prop_map(|(root, bytes)| MpiOp::Reduce { root, bytes }),
        e().prop_map(|bytes| MpiOp::Allreduce { bytes }),
        e().prop_map(|bytes| MpiOp::Alltoall { bytes }),
        e().prop_map(|bytes| MpiOp::Allgather { bytes }),
    ]
    .boxed()
}

fn arb_stmt_kind(depth: u32) -> BoxedStrategy<StmtKind> {
    let e = move || arb_expr(2);
    let leaf = prop_oneof![
        e().prop_map(|cycles| StmtKind::Comp(CompAttrs {
            cycles,
            ins: None,
            lst: None,
            l2_miss: None,
            br_miss: None,
        })),
        arb_mpi(2).prop_map(StmtKind::Mpi),
        Just(StmtKind::Return),
    ];
    leaf.prop_recursive(depth, 24, 3, move |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (e(), e(), block.clone()).prop_map(|(start, end, kinds)| StmtKind::For {
                var: "i".to_string(),
                start,
                end,
                body: kinds_to_block(kinds),
            }),
            (e(), block.clone(), block).prop_map(|(cond, t, f)| StmtKind::If {
                cond,
                then_block: kinds_to_block(t),
                else_block: Some(kinds_to_block(f)),
            }),
        ]
    })
    .boxed()
}

fn kinds_to_block(kinds: Vec<StmtKind>) -> Block {
    Block {
        stmts: kinds
            .into_iter()
            .map(|kind| Stmt {
                id: 0,
                span: Span::synthetic("gen.mmpi", 1),
                kind,
            })
            .collect(),
    }
}

fn renumber(program: &mut Program) {
    // Give statements fresh pre-order ids, matching what a parse assigns.
    fn walk(block: &mut Block, next: &mut NodeId) {
        for stmt in &mut block.stmts {
            stmt.id = *next;
            *next += 1;
            match &mut stmt.kind {
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(body, next),
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    walk(then_block, next);
                    if let Some(e) = else_block {
                        walk(e, next);
                    }
                }
                _ => {}
            }
        }
    }
    let mut next = 0;
    for func in &mut program.functions {
        walk(&mut func.body, &mut next);
    }
    program.next_node_id = next;
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt_kind(3), 1..6).prop_map(|kinds| {
        let body = {
            let mut b = kinds_to_block(kinds);
            // Define the scope variables the expressions may reference.
            let mut stmts = vec![
                Stmt {
                    id: 0,
                    span: Span::synthetic("gen.mmpi", 1),
                    kind: StmtKind::Let {
                        name: "n0".into(),
                        value: Expr::Int(4),
                    },
                },
                Stmt {
                    id: 0,
                    span: Span::synthetic("gen.mmpi", 2),
                    kind: StmtKind::Let {
                        name: "n1".into(),
                        value: Expr::Int(7),
                    },
                },
            ];
            stmts.append(&mut b.stmts);
            Block { stmts }
        };
        let mut program = Program {
            file_name: "gen.mmpi".into(),
            params: vec![],
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body,
                span: Span::synthetic("gen.mmpi", 1),
            }],
            next_node_id: 0,
        };
        renumber(&mut program);
        program
    })
}

// ----- properties -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lexer::lex("fuzz.mmpi", &input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(input in "[a-z0-9(){};=+*/%<>&|!., \n]{0,200}") {
        let _ = parse_program("fuzz.mmpi", &input);
    }

    #[test]
    fn pretty_print_round_trips(program in arb_program()) {
        let printed = print_program(&program);
        let reparsed = parse_program("gen.mmpi", &printed)
            .expect("pretty output must parse");
        prop_assert_eq!(normalize_spans(&program), normalize_spans(&reparsed));
    }

    #[test]
    fn lexer_accepts_all_integer_forms(v in 0i64..1_000_000, sep in proptest::bool::ANY) {
        let text = if sep {
            // Insert a `_` separator in the middle of the digits.
            let s = v.to_string();
            let mid = s.len() / 2;
            if mid == 0 { s } else { format!("{}_{}", &s[..mid], &s[mid..]) }
        } else {
            v.to_string()
        };
        let toks = lexer::lex("n.mmpi", &text).unwrap();
        prop_assert_eq!(&toks[0].kind, &scalana_lang::token::TokenKind::Int(v));
    }
}
