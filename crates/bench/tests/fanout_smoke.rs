//! Smoke-level run of the wait fan-out harness, so the perfgate path
//! that produces the committed `wait_fanout` numbers is itself covered
//! by `cargo test` (at a size that stays fast in debug builds).

#[cfg(target_os = "linux")]
#[test]
fn wait_fanout_harness_parks_and_observes_every_waiter() {
    const CLIENTS: usize = 64;
    let metrics = scalana_bench::suites::measure_wait_fanout(CLIENTS);
    assert_eq!(metrics.clients, CLIENTS);
    assert_eq!(
        metrics.parked, CLIENTS as u64,
        "every waiter must actually park (gauge is exact)"
    );
    assert!(metrics.rss_bytes > 0, "RSS must be sampled");
    assert!(
        metrics.p50_ns <= metrics.p99_ns,
        "percentiles must be ordered: p50 {} > p99 {}",
        metrics.p50_ns,
        metrics.p99_ns
    );
}
