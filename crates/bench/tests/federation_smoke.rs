//! Smoke-level run of the federation harness, so the perfgate path
//! that produces the committed `federation` numbers is itself covered
//! by `cargo test` (at a size that stays fast in debug builds). The
//! deterministic contracts are asserted at full strength; the speedup
//! is only sanity-checked here — debug-build simulation costs distort
//! the ratio the release-mode gate enforces.

#[test]
fn federation_harness_measures_and_upholds_the_deterministic_contracts() {
    let metrics = scalana_bench::suites::measure_federation(2);
    eprintln!("federation smoke: {metrics:?}");
    assert_eq!(metrics.daemons, 3);
    assert_eq!(metrics.jobs, 6);
    assert!(metrics.solo_jobs_per_sec > 0.0);
    assert!(metrics.fleet_jobs_per_sec > 0.0);
    assert!(
        metrics.remote_identical,
        "cross-daemon analysis must be byte-identical"
    );
    assert_eq!(
        metrics.remote_scale_misses, 0,
        "the answering daemon must not miss a single scale"
    );
    assert_eq!(
        metrics.remote_sim_runs, 0,
        "the answering daemon must not touch the simulator"
    );
    assert_eq!(
        metrics.kill_failures, 0,
        "a dead peer must never fail a request ({} issued)",
        metrics.kill_requests
    );
    assert!(
        metrics.speedup > 0.5,
        "fleet round collapsed: speedup {}",
        metrics.speedup
    );
}
