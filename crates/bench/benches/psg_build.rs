//! Criterion bench: PSG construction cost (see
//! [`scalana_bench::suites::psg_build`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_psg(c: &mut Criterion) {
    scalana_bench::suites::psg_build(c);
}

criterion_group!(benches, bench_psg);
criterion_main!(benches);
