//! Criterion bench: PSG construction (Table III's static-analysis cost,
//! measured precisely) — parsing, full build, contraction on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalana_graph::{build_psg, PsgOptions};
use scalana_lang::parse_program;

fn bench_psg(c: &mut Criterion) {
    let mut group = c.benchmark_group("psg_build");
    group.sample_size(20);
    for name in ["CG", "MG", "ZMP"] {
        let app = scalana_apps::by_name(name).unwrap();
        let source = app.source();
        group.bench_with_input(BenchmarkId::new("parse", name), &source, |b, src| {
            b.iter(|| parse_program("bench.mmpi", src).unwrap());
        });
        let program = parse_program("bench.mmpi", &source).unwrap();
        group.bench_with_input(
            BenchmarkId::new("build_contracted", name),
            &program,
            |b, p| {
                b.iter(|| build_psg(p, &PsgOptions::default()));
            },
        );
        group.bench_with_input(BenchmarkId::new("build_raw", name), &program, |b, p| {
            b.iter(|| {
                build_psg(
                    p,
                    &PsgOptions {
                        contract: false,
                        ..Default::default()
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_psg);
criterion_main!(benches);
