//! Criterion bench: workload-generator throughput — spec generation,
//! lowering, and the pretty → re-parse round trip (see
//! [`scalana_bench::suites::wgen`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_wgen(c: &mut Criterion) {
    scalana_bench::suites::wgen(c);
}

criterion_group!(benches, bench_wgen);
criterion_main!(benches);
