//! Criterion bench: hook-layer wall-clock overhead (see
//! [`scalana_bench::suites::overhead`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hooks(c: &mut Criterion) {
    scalana_bench::suites::overhead(c);
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
