//! Criterion bench: the hook layer itself — how much wall-clock time
//! each tool's instrumentation adds to the simulation loop (separate
//! from the modeled *virtual-time* overheads of Table I).

use criterion::{criterion_group, criterion_main, Criterion};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};
use scalana_profile::{FlatProfilerHook, ProfilerConfig, ScalAnaProfiler, TracerHook};

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("hook_layer");
    group.sample_size(10);

    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    let config = SimConfig::with_nprocs(32);

    group.bench_function("baseline_no_hook", |b| {
        b.iter(|| {
            Simulation::new(&app.program, &psg, config.clone())
                .run()
                .unwrap()
        });
    });
    group.bench_function("scalana_profiler", |b| {
        b.iter(|| {
            let mut hook = ScalAnaProfiler::new(ProfilerConfig::default());
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.take_data()
        });
    });
    group.bench_function("tracer", |b| {
        b.iter(|| {
            let mut hook = TracerHook::with_defaults();
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.storage_bytes()
        });
    });
    group.bench_function("flat_profiler", |b| {
        b.iter(|| {
            let mut hook = FlatProfilerHook::with_defaults();
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.storage_bytes()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
