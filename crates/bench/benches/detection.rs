//! Criterion bench: post-mortem detection cost (see
//! [`scalana_bench::suites::detection`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_detection(c: &mut Criterion) {
    scalana_bench::suites::detection(c);
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
