//! Criterion bench: post-mortem detection cost (Table IV, measured
//! precisely) — problematic-vertex detection plus backtracking over
//! pre-built PPGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_detect::{detect, DetectConfig};
use scalana_graph::Ppg;

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    for name in ["CG", "ZMP"] {
        let app = scalana_apps::by_name(name).unwrap();
        // Build the PPGs once; bench only the offline analysis.
        let analysis = analyze_app(&app, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
        let refs: Vec<&Ppg> = analysis.ppgs.iter().collect();
        group.bench_with_input(BenchmarkId::new("detect", name), &refs, |b, refs| {
            b.iter(|| detect(refs, &DetectConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
