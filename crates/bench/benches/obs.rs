//! Criterion bench: observability overhead, instrumented vs stripped
//! (see [`scalana_bench::suites::obs`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_obs(c: &mut Criterion) {
    scalana_bench::suites::obs(c);
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
