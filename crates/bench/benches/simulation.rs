//! Criterion bench: discrete-event simulator throughput (see
//! [`scalana_bench::suites::simulation`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulation(c: &mut Criterion) {
    scalana_bench::suites::simulation(c);
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
