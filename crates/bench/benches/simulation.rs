//! Criterion bench: discrete-event simulator throughput — how fast the
//! substrate executes rank-scaled workloads (CG at several scales, and
//! the collective-heavy path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);

    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    for p in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("cg", p), &p, |b, &p| {
            b.iter(|| {
                Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                    .run()
                    .unwrap()
            });
        });
    }

    let coll = scalana_lang::parse_program(
        "coll.mmpi",
        "fn main() { for i in 0 .. 50 { comp(cycles = 10_000); allreduce(bytes = 8); } }",
    )
    .unwrap();
    let coll_psg = build_psg(&coll, &PsgOptions::default());
    for p in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("allreduce_chain", p), &p, |b, &p| {
            b.iter(|| {
                Simulation::new(&coll, &coll_psg, SimConfig::with_nprocs(p))
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
