//! Criterion bench: daemon submission latency, cached vs uncached (see
//! [`scalana_bench::suites::service`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_service(c: &mut Criterion) {
    scalana_bench::suites::service(c);
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
