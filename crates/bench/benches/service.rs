//! Criterion bench: daemon submission latency, cached vs uncached.
//!
//! Starts the real `scalana-service` daemon on an ephemeral port and
//! measures the full client round trip (submit → poll → result). The
//! uncached case forces a distinct content address per iteration (a
//! fresh `WORK` parameter), so every submission runs the simulator; the
//! cached case re-submits one fixed job and is answered from the
//! content-addressed result cache. The gap between the two is the
//! service's work-reuse win — the start of the serving-layer perf
//! trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use scalana_service::json::Json;
use scalana_service::{client, Server, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn program(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 4 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 8, ins = WORK / 8); }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
}

/// Full client round trip; returns once the result is served.
fn submit_and_wait(addr: &str, work: u64) {
    let body = Json::obj(vec![
        ("source", program(work).into()),
        ("name", "bench.mmpi".into()),
        ("scales", vec![2usize, 4].into()),
    ])
    .render();
    let response = client::request_json(addr, "POST", "/jobs", &body).unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let status = client::wait_for_job(addr, &key, Duration::from_secs(120)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
    let result = client::request_json(addr, "GET", &format!("/jobs/{key}/result"), "").unwrap();
    assert!(result.get("report").is_some());
}

fn bench_service(c: &mut Criterion) {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());

    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    // Every iteration submits a never-seen job: full pipeline each time.
    let unique = AtomicU64::new(0);
    {
        let addr = addr.clone();
        group.bench_function("submit_uncached", move |b| {
            b.iter(|| {
                let work = 400_000 + unique.fetch_add(1, Ordering::Relaxed);
                submit_and_wait(&addr, work);
            });
        });
    }

    // One warmed job, re-submitted: served from the result cache.
    submit_and_wait(&addr, 777_777);
    {
        let addr = addr.clone();
        group.bench_function("submit_cached", move |b| {
            b.iter(|| submit_and_wait(&addr, 777_777));
        });
    }
    group.finish();

    let _ = client::request(&addr, "POST", "/shutdown", "");
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
