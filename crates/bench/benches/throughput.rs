//! Criterion bench: service throughput — per-scale cache overlap
//! scenarios and concurrent clients (see
//! [`scalana_bench::suites::throughput`]).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_throughput(c: &mut Criterion) {
    scalana_bench::suites::throughput(c);
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
