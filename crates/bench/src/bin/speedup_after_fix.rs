//! §VI-D speedups: before/after applying the fixes ScalAna pointed at.
//!
//! Paper: Zeus-MP 55.53× → 61.39× (128 ranks, +9.55%), SST 1.20× →
//! 1.56× (32 ranks, +73% throughput), Nekbone 31.95× → 51.96×
//! (64 ranks, +68.95%). The reproduction checks direction and rough
//! factor, not absolute values.

use scalana_bench::Table;
use scalana_core::{speedup_curve, ScalAnaConfig};

fn main() {
    println!("§VI-D — speedup before/after the detected fixes\n");
    let mut table = Table::new(&["App", "ranks", "before", "after", "improvement"]);

    let cases: Vec<(&str, scalana_apps::App, scalana_apps::App, Vec<usize>)> = vec![
        (
            "Zeus-MP",
            scalana_apps::zeusmp::build(false),
            scalana_apps::zeusmp::build(true),
            vec![4, 8, 16, 32, 64, 128],
        ),
        (
            "SST",
            scalana_apps::sst::build(false),
            scalana_apps::sst::build(true),
            vec![4, 8, 16, 32],
        ),
        (
            "Nekbone",
            scalana_apps::nekbone::build(false),
            scalana_apps::nekbone::build(true),
            vec![1, 2, 4, 8, 16, 32, 64],
        ),
    ];

    for (name, broken, fixed, scales) in cases {
        let config = ScalAnaConfig {
            machine: broken.machine.clone(),
            ..Default::default()
        };
        let before = speedup_curve(&broken.program, &scales, &config).unwrap();
        let after = speedup_curve(&fixed.program, &scales, &config).unwrap();
        let (p, sb) = *before.last().unwrap();
        let (_, sa) = *after.last().unwrap();
        table.row(vec![
            name.to_string(),
            p.to_string(),
            format!("{sb:.2}x"),
            format!("{sa:.2}x"),
            format!("{:+.1}%", (sa / sb - 1.0) * 100.0),
        ]);
        assert!(sa > sb, "{name}: the fix must improve scaling");
    }
    table.print();
    println!("\nshape check PASSED: every fix improves the largest-scale speedup");
}
