//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. graph contraction on/off — PSG size and detection cost,
//! 2. graph-guided communication compression on/off — storage,
//! 3. cross-rank aggregation strategy — non-scalable detection hits,
//! 4. sampling frequency — overhead vs samples,
//! 5. wait-time edge pruning — backtracking search cost.

use scalana_bench::Table;
use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_detect::Aggregation;
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};
use scalana_profile::overhead::human_bytes;
use scalana_profile::{ProfilerConfig, ScalAnaProfiler};
use std::time::Instant;

fn main() {
    ablate_contraction();
    ablate_compression();
    ablate_aggregation();
    ablate_sampling();
    ablate_wait_prune();
}

fn ablate_contraction() {
    println!("== Ablation 1: graph contraction ==\n");
    let mut table = Table::new(&[
        "Program",
        "#V raw",
        "#V contracted",
        "detect raw",
        "detect contr.",
    ]);
    for name in ["CG", "MG", "ZMP"] {
        let app = scalana_apps::by_name(name).unwrap();
        let raw = build_psg(
            &app.program,
            &PsgOptions {
                contract: false,
                ..Default::default()
            },
        );
        let contracted = build_psg(&app.program, &PsgOptions::default());

        let time_detect = |contract: bool| {
            let mut config = ScalAnaConfig::default();
            config.psg.contract = contract;
            config.machine = app.machine.clone();
            let analysis = analyze_app(&app, &[4, 8, 16], &config).unwrap();
            analysis.detect_seconds * 1e3
        };
        table.row(vec![
            name.to_string(),
            raw.vertex_count().to_string(),
            contracted.vertex_count().to_string(),
            format!("{:.2} ms", time_detect(false)),
            format!("{:.2} ms", time_detect(true)),
        ]);
    }
    table.print();
    println!();
}

fn ablate_compression() {
    println!("== Ablation 2: graph-guided communication compression ==\n");
    let app = scalana_apps::by_name("CG").unwrap();
    let psg = build_psg(&app.program, &PsgOptions::default());
    let mut table = Table::new(&["compression", "storage", "dep edges"]);
    for on in [true, false] {
        let mut profiler = ScalAnaProfiler::new(ProfilerConfig {
            graph_compression: on,
            ..ProfilerConfig::default()
        });
        Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .with_hook(&mut profiler)
            .run()
            .unwrap();
        let data = profiler.take_data();
        table.row(vec![
            if on { "on".into() } else { "off".into() },
            human_bytes(data.storage_bytes),
            data.comm_edge_count().to_string(),
        ]);
    }
    table.print();
    println!("(same dependence information, far fewer persisted records)\n");
}

fn ablate_aggregation() {
    println!("== Ablation 3: aggregation strategy for non-scalable detection ==\n");
    let app = scalana_apps::zeusmp::build(false);
    let mut table = Table::new(&["strategy", "non-scalable found", "root cause found"]);
    for (name, agg) in [
        ("single-rank(0)", Aggregation::SingleRank(0)),
        ("mean", Aggregation::Mean),
        ("median", Aggregation::Median),
        ("max", Aggregation::Max),
        ("clustered(k=2)", Aggregation::Clustered { k: 2 }),
    ] {
        let mut config = ScalAnaConfig::default();
        config.detect.aggregation = agg;
        config.machine = app.machine.clone();
        let analysis = analyze_app(&app, &[4, 8, 16, 32], &config).unwrap();
        table.row(vec![
            name.to_string(),
            analysis.report.non_scalable.len().to_string(),
            analysis.report.found_at("bval3d.F:155").to_string(),
        ]);
    }
    table.print();
    println!();
}

fn ablate_sampling() {
    println!("== Ablation 4: sampling frequency vs overhead ==\n");
    let app = scalana_apps::by_name("CG").unwrap();
    let psg = build_psg(&app.program, &PsgOptions::default());
    let baseline = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
        .run()
        .unwrap()
        .total_time();
    let mut table = Table::new(&["freq (Hz)", "samples", "overhead"]);
    for hz in [1_000.0, 10_000.0, 100_000.0, 1_000_000.0] {
        let mut profiler = ScalAnaProfiler::new(ProfilerConfig {
            sampling_hz: hz,
            ..ProfilerConfig::default()
        });
        let t = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .with_hook(&mut profiler)
            .run()
            .unwrap()
            .total_time();
        let data = profiler.take_data();
        table.row(vec![
            format!("{hz:.0}"),
            data.sample_count.to_string(),
            format!("{:.2}%", (t - baseline) / baseline * 100.0),
        ]);
    }
    table.print();
    println!();
}

fn ablate_wait_prune() {
    println!("== Ablation 5: wait-time pruning of dependence edges ==\n");
    let app = scalana_apps::zeusmp::build(false);
    let mut table = Table::new(&["prune threshold", "total path steps", "detect time"]);
    for (label, prune) in [
        ("off (0)", 0.0),
        ("1e-7 s (default)", 1e-7),
        ("1e-4 s", 1e-4),
    ] {
        let mut config = ScalAnaConfig::default();
        config.detect.wait_prune = prune;
        config.machine = app.machine.clone();
        let started = Instant::now();
        let analysis = analyze_app(&app, &[4, 8, 16, 32], &config).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        let steps: usize = analysis.report.paths.iter().map(|p| p.steps.len()).sum();
        let _ = elapsed;
        table.row(vec![
            label.to_string(),
            steps.to_string(),
            format!("{:.2} ms", analysis.detect_seconds * 1e3),
        ]);
    }
    table.print();
}
