//! Fig. 2: the motivating example — NPB-CG with a delay injected into
//! process 4, its partial PPG, and the backtracking that finds the
//! delay across ranks.

use scalana_core::{analyze_app, ScalAnaConfig};

fn main() {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 60_000,
        iterations: 5,
        delay_rank: Some(4),
    });
    println!("Fig. 2 — NPB-CG with a manual delay in process 4 (8 ranks shown)\n");

    let analysis = analyze_app(&app, &[8, 16, 32], &ScalAnaConfig::default()).unwrap();

    // Fig. 2(b): a slice of the PPG — per-rank times of the exchange
    // vertex and the dependence edges with waiting.
    let ppg = &analysis.ppgs[0]; // the 8-rank run
    println!("partial PPG (8 ranks): inter-process dependence edges with wait");
    for dep in &ppg.comm {
        if dep.wait_time > 1e-5 {
            println!(
                "  rank {} {:>14} --{:>7}B--> rank {} {:>14}  wait {:.3e}s",
                dep.src_rank,
                ppg.psg.vertex(dep.src_vertex).kind.label(),
                dep.bytes,
                dep.dst_rank,
                ppg.psg.vertex(dep.dst_vertex).kind.label(),
                dep.wait_time,
            );
        }
    }

    // Fig. 2(c): the backtracking result.
    println!("\n{}", analysis.report.render());
    assert!(analysis.report.found_at("cg.f:441"));
    let top = analysis.report.top_root_cause().unwrap();
    println!(
        "root cause: {} at {} (injected into rank 4) — reproduced.",
        top.kind, top.location
    );
}
