//! Fig. 8: backtracking root-cause detection over a PPG — several
//! causal paths connecting abnormal vertices across processes.

use scalana_core::{analyze, ScalAnaConfig};
use scalana_lang::parse_program;

/// Ring pipeline where one rank's extra work delays its successors
/// through point-to-point chains — several paths converge on it.
const SRC: &str = r#"
param WORK = 3_000_000;
fn main() {
    for it in 0 .. 6 {
        comp(cycles = WORK / nprocs, ins = WORK / nprocs);
        if rank == 2 {
            for d in 0 .. 2 { comp(cycles = WORK / 2, ins = WORK / 2); }  // the culprit
        }
        let s = isend(dst = (rank + 1) % nprocs, tag = it, bytes = 2k);
        let q = irecv(src = (rank + nprocs - 1) % nprocs, tag = it);
        waitall();
    }
    allreduce(bytes = 8);
}
"#;

fn main() {
    let program = parse_program("fig8.mmpi", SRC).unwrap();
    let analysis = analyze(&program, &[4, 8], &ScalAnaConfig::default()).unwrap();

    println!("Fig. 8 — backtracking over the PPG (8 ranks)\n");
    for (i, path) in analysis.report.paths.iter().enumerate() {
        println!("path {}:", i + 1);
        for (j, step) in path.steps.iter().enumerate() {
            let hop = if step.via_comm { "~>" } else { "->" };
            let mark = if j == path.root_cause_idx {
                "  <== root cause"
            } else {
                ""
            };
            println!(
                "  {hop} rank {:<3} {:<14} {:<14} wait {:.2e}{mark}",
                step.rank, step.kind, step.location, step.wait_time
            );
        }
    }

    // The paths must hop between ranks and converge on the culprit loop.
    let cross_rank_paths = analysis
        .report
        .paths
        .iter()
        .filter(|p| p.steps.windows(2).any(|w| w[0].rank != w[1].rank))
        .count();
    assert!(cross_rank_paths >= 1, "at least one path crosses ranks");
    let top = analysis.report.top_root_cause().unwrap();
    assert_eq!(top.kind, "Loop");
    assert_eq!(top.location, "fig8.mmpi:7", "the culprit loop wins");
    println!(
        "\nshape check PASSED: {} paths ({} crossing ranks), root cause {} at {}",
        analysis.report.paths.len(),
        cross_rank_paths,
        top.kind,
        top.location
    );
}
