//! Fig. 12: the Zeus-MP backtracking — from the `MPI_Allreduce` at
//! `nudt.F:361` through the non-blocking exchange waits back to the
//! boundary loop at `bval3d.F:155`.

use scalana_core::{analyze_app, viewer, ScalAnaConfig};

fn main() {
    let app = scalana_apps::zeusmp::build(false);
    println!("Fig. 12 — Zeus-MP scaling-loss diagnosis (4..128 ranks)\n");
    let analysis = analyze_app(&app, &[4, 8, 16, 32, 64, 128], &ScalAnaConfig::default()).unwrap();

    println!(
        "{}",
        viewer::render_with_snippets(&app.program, &analysis.report, 2)
    );

    // Paper chain: allreduce symptom, waitall hops, bval3d loop cause.
    let report = &analysis.report;
    assert!(
        report
            .non_scalable
            .iter()
            .any(|n| n.location == "nudt.F:361"),
        "the allreduce at nudt.F:361 is the detected scaling issue"
    );
    assert!(
        report.found_at("bval3d.F:155"),
        "root cause at bval3d.F:155"
    );
    let chain_path = report
        .paths
        .iter()
        .find(|p| p.root_cause().location == "bval3d.F:155")
        .expect("a path reaches the boundary loop");
    let through_waitall = chain_path.steps.iter().any(|s| s.location == "nudt.F:227");
    let crosses_ranks = chain_path.steps.windows(2).any(|w| w[0].rank != w[1].rank);
    assert!(through_waitall, "path passes the nudt.F waitalls");
    assert!(crosses_ranks, "path crosses processes");
    println!(
        "shape check PASSED: allreduce@nudt.F:361 -> waitall@nudt.F:227 (across ranks) \
         -> LOOP@bval3d.F:155"
    );
}
