//! Fig. 11: storage cost of the three tools on the NPB kernels with 128
//! processes (paper: ScalAna KBs, HPCToolkit MBs, Scalasca up to GBs).

use scalana_bench::{measure_app, Table};
use scalana_profile::overhead::human_bytes;

fn main() {
    let nprocs = 128;
    println!("Fig. 11 — storage cost at {nprocs} processes (NPB kernels)\n");
    let mut table = Table::new(&["Program", "Scalasca-like", "HPCToolkit-like", "ScalAna"]);

    let kernels = ["BT", "CG", "EP", "FT", "MG", "SP", "LU", "IS"];
    let mut ordered = 0;
    let mut scalana_smallest = 0;
    for name in kernels {
        let app = scalana_apps::by_name(name).unwrap();
        let report = measure_app(&app, nprocs);
        let tracer = report.tool("Scalasca-like tracer").unwrap().storage_bytes;
        let flat = report
            .tool("HPCToolkit-like profiler")
            .unwrap()
            .storage_bytes;
        let scalana = report.tool("ScalAna").unwrap().storage_bytes;
        if tracer > flat && flat > scalana {
            ordered += 1;
        }
        if scalana < flat && scalana < tracer {
            scalana_smallest += 1;
        }
        table.row(vec![
            name.to_string(),
            human_bytes(tracer),
            human_bytes(flat),
            human_bytes(scalana),
        ]);
    }
    table.print();
    println!("\nScalAna smallest on {scalana_smallest}/8 kernels;");
    println!("full order tracing > profiling > ScalAna on {ordered}/8 (the two");
    println!("exceptions, EP and IS, emit so few events that the flat profiler's");
    println!("fixed per-rank metadata outweighs the short trace — consistent with");
    println!("the paper, where EP has the smallest trace by far).");
    assert_eq!(
        scalana_smallest, 8,
        "ScalAna storage is always the smallest"
    );
    assert!(ordered >= 6, "full ordering holds for event-dense kernels");
    println!("shape check PASSED");
}
