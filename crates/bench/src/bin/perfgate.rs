//! `perfgate` — the machine-readable perf trajectory runner and
//! regression gate.
//!
//! Executes every Criterion suite ([`scalana_bench::suites`])
//! in-process, collects per-benchmark medians, and writes one
//! `BENCH_*.json` trajectory point: current medians for all eight
//! suites, the cache hit/miss submission latencies, the
//! overlapping-scales warm/cold speedup, the long-poll vs polling wait
//! latency, the long-poll *fan-out* (completion-observation latency
//! percentiles and process RSS with 1k — 10k in full runs — waiters
//! parked on one daemon), multi-client jobs/sec with p50/p99 latency,
//! the observability overhead (instrumented vs stripped simulation),
//! the warm-restart cycle of the durable store (cold vs
//! restart-and-serve-from-disk latency, gated on the deterministic
//! `scale_misses == 0` contract — no factor applied),
//! the federation round (aggregate jobs/sec of one capacity-constrained
//! daemon vs a three-daemon fleet over the same skewed-popularity
//! workload, gated at ≥ 1.8× in full runs, plus the deterministic
//! cross-daemon resubmission and dead-peer-survival contracts — gated
//! in every mode, no factor applied),
//! and speedups against the committed pre-refactor baseline. CI runs it
//! in `--quick` mode gated against the committed `BENCH_pr10.json`
//! (`BENCH_pr3.json` through `BENCH_pr9.json` remain as earlier
//! trajectory points), so a panicking bench or a wild regression
//! (default: >10× the recorded median, tunable with `PERFGATE_FACTOR`,
//! machine differences included) fails the build. The `wait_fanout`
//! section is gated too: p99 observation latency and RSS at each waiter
//! count measured in both runs must stay within the same factor.
//!
//! The observability overhead is gated *within* the run, not against a
//! file: the `obs` suite's instrumented/stripped median ratio at each
//! of [`scalana_bench::suites::OBS_SCALES`] must stay under
//! `OBS_OVERHEAD_FACTOR` (default 1.05 — the <5% always-on bar — in
//! full runs; 1.5 under `--quick`, where 3-sample medians on
//! millisecond runs are too noisy to resolve single-digit percentages
//! and the gate exists to catch order-of-magnitude mistakes).
//!
//! ```sh
//! # full run, refresh the committed trajectory point
//! cargo run --release -p scalana-bench --bin perfgate -- --out BENCH_pr10.json
//! # CI: few samples, gate against the committed medians
//! cargo run --release -p scalana-bench --bin perfgate -- --quick --gate BENCH_pr10.json --out target/perfgate.json
//! ```

use criterion::{take_results, BenchResult, Criterion};
use scalana_service::json::{parse, Json};
use std::process::ExitCode;

/// Pre-refactor medians (nanoseconds) of PR 3's seed engine, measured
/// with the same suites on the machine that produced the committed
/// `BENCH_pr3.json`. Recorded in the output so every trajectory point
/// carries its own comparison base.
const BASELINE_PRE_REFACTOR: &[(&str, u64)] = &[
    ("simulation/cg/8", 327_020),
    ("simulation/cg/32", 2_053_321),
    ("simulation/cg/128", 10_640_518),
    ("simulation/allreduce_chain/64", 770_880),
    ("simulation/allreduce_chain/512", 5_874_740),
    ("hook_layer/baseline_no_hook", 1_905_767),
    ("hook_layer/scalana_profiler", 2_485_677),
    ("hook_layer/tracer", 2_045_524),
    ("hook_layer/flat_profiler", 2_231_634),
    ("detection/detect/CG", 52_118),
    ("detection/detect/ZMP", 214_135),
    ("psg_build/parse/CG", 46_137),
    ("psg_build/build_contracted/CG", 16_094),
    ("psg_build/build_raw/CG", 7_806),
    ("psg_build/parse/MG", 40_575),
    ("psg_build/build_contracted/MG", 20_727),
    ("psg_build/build_raw/MG", 10_308),
    ("psg_build/parse/ZMP", 42_243),
    ("psg_build/build_contracted/ZMP", 21_867),
    ("psg_build/build_raw/ZMP", 10_200),
    ("service/submit_uncached", 730_742),
    ("service/submit_cached", 390_280),
];

/// A suite entry point.
type Suite = fn(&mut Criterion);

/// The eight suites, in trajectory order.
const SUITES: &[(&str, Suite)] = &[
    ("simulation", scalana_bench::suites::simulation),
    ("overhead", scalana_bench::suites::overhead),
    ("detection", scalana_bench::suites::detection),
    ("psg_build", scalana_bench::suites::psg_build),
    ("service", scalana_bench::suites::service),
    ("throughput", scalana_bench::suites::throughput),
    ("wgen", scalana_bench::suites::wgen),
    ("obs", scalana_bench::suites::obs),
];

struct Args {
    quick: bool,
    out: String,
    gate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_pr10.json".to_string(),
        gate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--gate" => args.gate = Some(it.next().ok_or("--gate needs a path")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn result_json(r: &BenchResult) -> Json {
    Json::obj(vec![
        ("id", r.id.as_str().into()),
        ("median_ns", (r.median_ns as u64).into()),
        ("min_ns", (r.min_ns as u64).into()),
        ("mean_ns", (r.mean_ns as u64).into()),
        ("samples", r.samples.into()),
    ])
}

fn median_of(results: &[BenchResult], id: &str) -> Option<u64> {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.median_ns as u64)
}

/// Recorded medians of a previous trajectory point, flattened by id.
fn gate_medians(doc: &Json) -> Vec<(String, u64)> {
    let mut medians = Vec::new();
    let Some(Json::Obj(suites)) = doc.get("suites") else {
        return medians;
    };
    for (_, results) in suites {
        let Some(results) = results.as_array() else {
            continue;
        };
        for r in results {
            if let (Some(id), Some(m)) = (
                r.get("id").and_then(Json::as_str),
                r.get("median_ns").and_then(Json::as_i64),
            ) {
                medians.push((id.to_string(), m.max(0) as u64));
            }
        }
    }
    medians
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfgate: {e}");
            eprintln!("usage: perfgate [--quick] [--out FILE] [--gate FILE]");
            return ExitCode::FAILURE;
        }
    };
    if args.quick && std::env::var("CRITERION_SAMPLE_SIZE").is_err() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "3");
    }

    // Run every suite in-process and drain the collected results.
    let mut all: Vec<(&str, Vec<BenchResult>)> = Vec::new();
    for (name, suite) in SUITES {
        eprintln!("perfgate: running suite `{name}`");
        let mut criterion = Criterion::default();
        suite(&mut criterion);
        let results = take_results();
        if results.is_empty() {
            eprintln!("perfgate: suite `{name}` produced no results");
            return ExitCode::FAILURE;
        }
        all.push((name, results));
    }
    let flat: Vec<&BenchResult> = all.iter().flat_map(|(_, rs)| rs).collect();

    // Speedups against the recorded pre-refactor baseline.
    let mut speedups: Vec<(String, Json)> = Vec::new();
    for (id, base) in BASELINE_PRE_REFACTOR {
        let Some(current) = flat.iter().find(|r| r.id == *id) else {
            continue;
        };
        if current.median_ns > 0 {
            let speedup = *base as f64 / current.median_ns as f64;
            speedups.push((id.to_string(), ((speedup * 100.0).round() / 100.0).into()));
        }
    }

    // Cache hit/miss latency from the service suite.
    let service_results = &all
        .iter()
        .find(|(name, _)| *name == "service")
        .expect("service suite ran")
        .1;
    let hit = median_of(service_results, "service/submit_cached");
    let miss = median_of(service_results, "service/submit_uncached");

    // Per-scale cache overlap: the warm/cold gap is this PR's headline.
    let throughput_results = &all
        .iter()
        .find(|(name, _)| *name == "throughput")
        .expect("throughput suite ran")
        .1;
    let overlap_cold = median_of(throughput_results, "throughput/overlap_cold");
    let overlap_warm = median_of(throughput_results, "throughput/overlap_warm");
    let redetect_warm = median_of(throughput_results, "throughput/redetect_warm");

    // Wait latency: server-side long-poll vs the PR 4 backoff-polling
    // client, measured *paired* (the two strategies interleaved against
    // one daemon) so background-load drift cannot bias one side — the
    // sequential Criterion cases are kept for eyeballing but job
    // duration noise across batches can exceed the polling overhead.
    eprintln!("perfgate: measuring paired wait latency (long-poll vs PR4 backoff polling)");
    let wait = scalana_bench::suites::measure_wait(if args.quick { 6 } else { 12 });
    let wait_speedup = if wait.longpoll_median_ns > 0 {
        Json::Num(
            (wait.poll_median_ns as f64 / wait.longpoll_median_ns as f64 * 100.0).round() / 100.0,
        )
    } else {
        Json::Null
    };
    let overlap_speedup = match (overlap_cold, overlap_warm) {
        (Some(cold), Some(warm)) if warm > 0 => {
            Json::Num((cold as f64 / warm as f64 * 100.0).round() / 100.0)
        }
        _ => Json::Null,
    };

    // Observability overhead: the production instrumented per-scale
    // simulation vs the stripped pipeline call, measured *paired*
    // (interleaved against one process) for the same drift-resistance
    // reason as the wait comparison above. The sequential `obs` suite
    // medians stay in the `suites` map for eyeballing.
    eprintln!("perfgate: measuring paired observability overhead (instrumented vs stripped)");
    let obs_pairs = scalana_bench::suites::measure_obs_overhead(if args.quick { 10 } else { 40 });
    let mut obs_sim: Vec<Json> = Vec::new();
    let mut obs_worst_ratio: Option<f64> = None;
    for pair in &obs_pairs {
        let ratio = match pair.ratio() {
            Some(r) => {
                obs_worst_ratio = Some(obs_worst_ratio.map_or(r, |w: f64| w.max(r)));
                Json::Num((r * 1000.0).round() / 1000.0)
            }
            None => Json::Null,
        };
        obs_sim.push(Json::obj(vec![
            ("scale", pair.scale.into()),
            ("paired_samples", pair.samples.into()),
            ("stripped_median_ns", pair.stripped_median_ns.into()),
            ("instrumented_median_ns", pair.instrumented_median_ns.into()),
            ("overhead_ratio", ratio),
        ]));
    }

    // Long-poll fan-out: thousands of waiters parked on one daemon and
    // a single terminal transition observed by all of them. Quick mode
    // stops at 1k waiters; full runs add the 10k point.
    #[cfg(target_os = "linux")]
    let fanouts: Vec<scalana_bench::suites::WaitFanout> = {
        let counts: &[usize] = if args.quick {
            &[1_000]
        } else {
            &[1_000, 10_000]
        };
        counts
            .iter()
            .map(|&clients| {
                eprintln!("perfgate: measuring wait fan-out at {clients} parked waiters");
                scalana_bench::suites::measure_wait_fanout(clients)
            })
            .collect()
    };
    #[cfg(not(target_os = "linux"))]
    let fanouts: Vec<scalana_bench::suites::WaitFanout> = Vec::new();
    let fanout_json: Vec<Json> = fanouts
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("clients", m.clients.into()),
                ("parked", m.parked.into()),
                ("p50_ns", m.p50_ns.into()),
                ("p99_ns", m.p99_ns.into()),
                ("rss_bytes", m.rss_bytes.into()),
            ])
        })
        .collect();

    // Warm restart: the durable store's headline. Cold analysis vs a
    // restarted daemon serving the same submission from disk; the
    // `scale_misses == 0` contract is gated below, unconditionally.
    eprintln!("perfgate: measuring warm restart (durable store)");
    let warm_restart = scalana_bench::suites::measure_warm_restart();
    let warm_speedup = if warm_restart.warm_ns > 0 {
        Json::Num(
            (warm_restart.cold_ns as f64 / warm_restart.warm_ns as f64 * 100.0).round() / 100.0,
        )
    } else {
        Json::Null
    };

    // Multi-client throughput: jobs/sec and latency percentiles at 1
    // and 8 concurrent clients (scaling evidence, not just latency).
    eprintln!("perfgate: measuring multi-client throughput");
    let client_metrics: Vec<Json> = [(1usize, 4usize), (8, 2)]
        .iter()
        .map(|&(clients, jobs_per_client)| {
            let m = scalana_bench::suites::measure_clients(clients, jobs_per_client);
            Json::obj(vec![
                ("clients", m.clients.into()),
                ("jobs", m.jobs.into()),
                ("elapsed_ns", m.elapsed_ns.into()),
                (
                    "jobs_per_sec",
                    ((m.jobs_per_sec * 100.0).round() / 100.0).into(),
                ),
                ("p50_ns", m.p50_ns.into()),
                ("p99_ns", m.p99_ns.into()),
            ])
        })
        .collect();

    // Federation: one capacity-constrained daemon vs a three-daemon
    // fleet over the same skewed-popularity workload. The speedup comes
    // from aggregate cache capacity (the fleet holds the popular
    // working set; one daemon thrashes), so it holds on single-core
    // runners; the cross-daemon and dead-peer contracts are gated
    // deterministically below.
    eprintln!("perfgate: measuring federation (1 daemon vs 3-daemon fleet)");
    let federation = scalana_bench::suites::measure_federation(if args.quick { 8 } else { 24 });

    let doc = Json::obj(vec![
        ("pr", "pr10".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        (
            "baseline_pre_refactor",
            Json::Obj(
                BASELINE_PRE_REFACTOR
                    .iter()
                    .map(|(id, ns)| (id.to_string(), (*ns).into()))
                    .collect(),
            ),
        ),
        (
            "suites",
            Json::Obj(
                all.iter()
                    .map(|(name, results)| {
                        (
                            name.to_string(),
                            Json::Arr(results.iter().map(result_json).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hit_median_ns", hit.map_or(Json::Null, Json::from)),
                ("miss_median_ns", miss.map_or(Json::Null, Json::from)),
            ]),
        ),
        (
            "scale_cache",
            Json::obj(vec![
                (
                    "overlap_cold_median_ns",
                    overlap_cold.map_or(Json::Null, Json::from),
                ),
                (
                    "overlap_warm_median_ns",
                    overlap_warm.map_or(Json::Null, Json::from),
                ),
                (
                    "redetect_warm_median_ns",
                    redetect_warm.map_or(Json::Null, Json::from),
                ),
                ("overlap_speedup", overlap_speedup),
            ]),
        ),
        (
            "wait",
            Json::obj(vec![
                ("paired_samples", wait.samples.into()),
                ("longpoll_median_ns", wait.longpoll_median_ns.into()),
                ("poll_median_ns", wait.poll_median_ns.into()),
                ("longpoll_speedup", wait_speedup),
            ]),
        ),
        ("wait_fanout", Json::Arr(fanout_json)),
        (
            "warm_restart",
            Json::obj(vec![
                ("cold_ns", warm_restart.cold_ns.into()),
                ("warm_ns", warm_restart.warm_ns.into()),
                ("loaded", warm_restart.loaded.into()),
                ("scale_misses", warm_restart.scale_misses.into()),
                ("warm_speedup", warm_speedup),
            ]),
        ),
        ("client_throughput", Json::Arr(client_metrics)),
        (
            "federation",
            Json::obj(vec![
                ("daemons", federation.daemons.into()),
                ("jobs", federation.jobs.into()),
                (
                    "solo_jobs_per_sec",
                    ((federation.solo_jobs_per_sec * 100.0).round() / 100.0).into(),
                ),
                (
                    "fleet_jobs_per_sec",
                    ((federation.fleet_jobs_per_sec * 100.0).round() / 100.0).into(),
                ),
                (
                    "speedup",
                    ((federation.speedup * 100.0).round() / 100.0).into(),
                ),
                ("solo_sim_runs", federation.solo_sim_runs.into()),
                ("fleet_sim_runs", federation.fleet_sim_runs.into()),
                ("remote_identical", federation.remote_identical.into()),
                ("remote_scale_misses", federation.remote_scale_misses.into()),
                ("remote_sim_runs", federation.remote_sim_runs.into()),
                (
                    "remote_peer_requests",
                    federation.remote_peer_requests.into(),
                ),
                ("remote_peer_hits", federation.remote_peer_hits.into()),
                ("kill_requests", federation.kill_requests.into()),
                ("kill_failures", federation.kill_failures.into()),
            ]),
        ),
        ("obs", Json::obj(vec![("sim", Json::Arr(obs_sim))])),
        ("speedup_vs_baseline", Json::Obj(speedups)),
    ]);
    let rendered = doc.render();
    if let Err(e) = std::fs::write(&args.out, rendered + "\n") {
        eprintln!("perfgate: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("perfgate: wrote {}", args.out);

    // Observability gate: always-on tracing must stay cheap. Checked
    // within this run (instrumented vs stripped medians), no recorded
    // file needed; see the module docs for the quick-mode relaxation.
    let obs_factor: f64 = std::env::var("OBS_OVERHEAD_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if args.quick { 1.5 } else { 1.05 });
    match obs_worst_ratio {
        None => {
            eprintln!("perfgate: obs suite produced no instrumented/stripped pair");
            return ExitCode::FAILURE;
        }
        Some(worst) if worst > obs_factor => {
            eprintln!(
                "perfgate: GATE: observability overhead ratio {worst:.3} exceeds {obs_factor} \
                 (instrumented vs stripped simulation medians)"
            );
            return ExitCode::FAILURE;
        }
        Some(worst) => {
            eprintln!("perfgate: obs overhead OK (worst ratio {worst:.3} <= {obs_factor})");
        }
    }

    // Warm-restart gate: deterministic, factor-free, checked within
    // this run. A restarted daemon re-simulating *anything* is a
    // correctness bug in the durable store, not a perf regression.
    if warm_restart.scale_misses != 0 {
        eprintln!(
            "perfgate: GATE: warm restart incurred {} per-scale miss(es) — the durable \
             store must serve every previously-profiled scale from disk",
            warm_restart.scale_misses
        );
        return ExitCode::FAILURE;
    }
    if warm_restart.loaded < 3 {
        eprintln!(
            "perfgate: GATE: warm boot loaded only {} store entries (2 profiles + 1 PSG \
             trace expected)",
            warm_restart.loaded
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "perfgate: warm restart OK ({} entries loaded, 0 scale misses, cold {}ns / warm {}ns)",
        warm_restart.loaded, warm_restart.cold_ns, warm_restart.warm_ns
    );

    // Federation gates. The cross-daemon and dead-peer contracts are
    // deterministic — correctness bugs, not perf regressions — so they
    // gate in every mode with no factor. The aggregate-throughput
    // speedup is gated in full runs only (quick rounds are too short to
    // resolve a ratio); `FEDERATION_SPEEDUP` overrides the bar.
    if !federation.remote_identical {
        eprintln!(
            "perfgate: GATE: cross-daemon resubmission diverged from the cold analysis — \
             fleet-served results must be byte-identical"
        );
        return ExitCode::FAILURE;
    }
    if federation.remote_scale_misses != 0 || federation.remote_sim_runs != 0 {
        eprintln!(
            "perfgate: GATE: cross-daemon resubmission incurred {} per-scale miss(es) and {} \
             simulator run(s) on the answering daemon — every scale must come from the fleet",
            federation.remote_scale_misses, federation.remote_sim_runs
        );
        return ExitCode::FAILURE;
    }
    if federation.kill_failures != 0 {
        eprintln!(
            "perfgate: GATE: {}/{} requests failed after a peer was killed — a dead peer \
             must degrade throughput, never availability",
            federation.kill_failures, federation.kill_requests
        );
        return ExitCode::FAILURE;
    }
    let speedup_bar: f64 = std::env::var("FEDERATION_SPEEDUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.8);
    if !args.quick && federation.speedup < speedup_bar {
        eprintln!(
            "perfgate: GATE: federation speedup {:.2}x below {speedup_bar}x (solo {:.2} \
             jobs/sec, fleet {:.2} jobs/sec)",
            federation.speedup, federation.solo_jobs_per_sec, federation.fleet_jobs_per_sec
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "perfgate: federation OK ({:.2}x aggregate jobs/sec, {} vs {} simulator runs, \
         cross-daemon identical with 0 misses, {} post-kill requests all served)",
        federation.speedup,
        federation.solo_sim_runs,
        federation.fleet_sim_runs,
        federation.kill_requests
    );

    // Gate: every current median must stay within FACTOR× of the
    // recorded one (generous by default — the gate exists to catch
    // panics and order-of-magnitude regressions, not machine variance).
    if let Some(gate_path) = &args.gate {
        let factor: f64 = std::env::var("PERFGATE_FACTOR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10.0);
        let recorded_doc = match std::fs::read_to_string(gate_path) {
            Ok(text) => match parse(text.trim()) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("perfgate: cannot parse {gate_path}: {e:?}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("perfgate: cannot read {gate_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let recorded = gate_medians(&recorded_doc);
        if recorded.is_empty() {
            eprintln!("perfgate: {gate_path} contains no recorded medians — refusing to gate");
            return ExitCode::FAILURE;
        }
        let mut violations = 0;
        for (id, base) in &recorded {
            let Some(current) = flat.iter().find(|r| r.id == *id) else {
                eprintln!("perfgate: GATE: `{id}` recorded in {gate_path} but not measured");
                violations += 1;
                continue;
            };
            let limit = *base as f64 * factor;
            if current.median_ns as f64 > limit {
                eprintln!(
                    "perfgate: GATE: `{id}` median {}ns exceeds {:.0}ns ({base}ns × {factor})",
                    current.median_ns, limit
                );
                violations += 1;
            }
        }
        // Fan-out gate: p99 completion-observation latency and process
        // RSS at every waiter count measured in *both* runs (quick runs
        // measure fewer points than a full recorded trajectory).
        if let Some(Json::Arr(points)) = recorded_doc.get("wait_fanout") {
            for point in points {
                let (Some(clients), Some(p99), Some(rss)) = (
                    point.get("clients").and_then(Json::as_i64),
                    point.get("p99_ns").and_then(Json::as_i64),
                    point.get("rss_bytes").and_then(Json::as_i64),
                ) else {
                    continue;
                };
                let Some(current) = fanouts.iter().find(|m| m.clients as i64 == clients) else {
                    continue;
                };
                let p99_limit = p99.max(1) as f64 * factor;
                if current.p99_ns as f64 > p99_limit {
                    eprintln!(
                        "perfgate: GATE: wait_fanout@{clients} p99 {}ns exceeds {p99_limit:.0}ns \
                         ({p99}ns × {factor})",
                        current.p99_ns
                    );
                    violations += 1;
                }
                let rss_limit = rss.max(1) as f64 * factor;
                if current.rss_bytes as f64 > rss_limit {
                    eprintln!(
                        "perfgate: GATE: wait_fanout@{clients} RSS {} bytes exceeds {rss_limit:.0} \
                         ({rss} × {factor})",
                        current.rss_bytes
                    );
                    violations += 1;
                }
            }
        }
        if violations > 0 {
            eprintln!("perfgate: {violations} gate violation(s) against {gate_path}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perfgate: gate OK ({} benchmarks within {factor}x of {gate_path})",
            recorded.len()
        );
    }
    ExitCode::SUCCESS
}
