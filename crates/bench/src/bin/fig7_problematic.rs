//! Fig. 7: the two kinds of problematic vertices.
//!
//! (a) A non-scalable vertex: its execution time does not fall as the
//!     process count rises, unlike well-scaling vertices.
//! (b) An abnormal vertex: at one scale, some ranks take far longer
//!     than the rest (the paper shows ranks 4 and 6 sticking out).

use scalana_bench::bar;
use scalana_core::{analyze, ScalAnaConfig};
use scalana_lang::parse_program;

const SRC: &str = r#"
param WORK = 4_000_000;
fn main() {
    for it in 0 .. 8 {
        // Scales perfectly.
        comp(cycles = WORK / nprocs, ins = WORK / nprocs, lst = WORK / (4 * nprocs));
        // Does not scale (serialized table rebuild), and ranks 4 and 6
        // are slower at it (NUMA placement).
        if rank == 4 || rank == 6 {
            for s in 0 .. 3 { comp(cycles = WORK / 4, ins = WORK / 4); }   // fig7.mmpi:11
        } else {
            for s in 0 .. 2 { comp(cycles = WORK / 8, ins = WORK / 8); }   // fig7.mmpi:13
        }
        barrier();
    }
    allreduce(bytes = 8);
}
"#;

fn main() {
    let program = parse_program("fig7.mmpi", SRC).unwrap();
    let scales = [2, 4, 8, 16, 32];
    let analysis = analyze(&program, &scales, &ScalAnaConfig::default()).unwrap();

    println!("Fig. 7(a) — vertex time vs process count (non-scalable detection)\n");
    for n in &analysis.report.non_scalable {
        println!(
            "  NON-SCALABLE {:<16} slope {:+.2}: {}",
            n.location,
            n.fit.slope,
            n.times
                .iter()
                .map(|t| format!("{t:.2e}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }

    println!("\nFig. 7(b) — per-rank time of the abnormal vertex at 32 ranks\n");
    let ppg = analysis.ppgs.last().unwrap();
    let ab = analysis
        .report
        .abnormal
        .iter()
        .max_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap())
        .expect("an abnormal vertex");
    let times = ppg.times_across_ranks(ab.vertex);
    let max = times.iter().copied().fold(0.0, f64::max);
    for (r, t) in times.iter().enumerate() {
        println!("  rank {r:>2} {:<40} {t:.3e}", bar(*t, max, 40));
    }
    println!(
        "\nabnormal vertex {} ({:.2}x median) on ranks {:?}",
        ab.location, ab.ratio, ab.ranks
    );

    assert!(!analysis.report.non_scalable.is_empty());
    assert!(
        ab.ranks.contains(&4) && ab.ranks.contains(&6),
        "ranks 4 & 6 stick out"
    );
    println!("\nshape check PASSED: both problematic-vertex kinds reproduced");
}
