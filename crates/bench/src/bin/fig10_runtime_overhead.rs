//! Fig. 10: average runtime overhead of the three tools on the NPB
//! kernels, averaged over 4–128 processes (paper: ScalAna 0.72–9.73%,
//! 3.52% average, far below the tracer).

use scalana_bench::{measure_app, Table};

fn main() {
    let scales = [4usize, 16, 64, 128];
    println!(
        "Fig. 10 — average runtime overhead over {:?} processes (NPB kernels)\n",
        scales
    );
    let mut table = Table::new(&["Program", "Scalasca-like", "HPCToolkit-like", "ScalAna"]);

    let kernels = ["BT", "CG", "EP", "FT", "MG", "SP", "LU", "IS"];
    let mut scalana_sum = 0.0;
    let mut tracer_sum = 0.0;
    let mut scalana_max = 0.0f64;
    let mut tracer_max = 0.0f64;
    let mut count = 0.0;
    for name in kernels {
        let app = scalana_apps::by_name(name).unwrap();
        let mut sums = [0.0f64; 3];
        for &p in &scales {
            let report = measure_app(&app, p);
            sums[0] += report.tool("Scalasca-like tracer").unwrap().overhead_pct;
            sums[1] += report
                .tool("HPCToolkit-like profiler")
                .unwrap()
                .overhead_pct;
            sums[2] += report.tool("ScalAna").unwrap().overhead_pct;
        }
        let n = scales.len() as f64;
        table.row(vec![
            name.to_string(),
            format!("{:.2}%", sums[0] / n),
            format!("{:.2}%", sums[1] / n),
            format!("{:.2}%", sums[2] / n),
        ]);
        tracer_sum += sums[0] / n;
        scalana_sum += sums[2] / n;
        tracer_max = tracer_max.max(sums[0] / n);
        scalana_max = scalana_max.max(sums[2] / n);
        count += 1.0;
    }
    table.print();

    let scalana_avg = scalana_sum / count;
    let tracer_avg = tracer_sum / count;
    println!("\nScalAna average overhead: {scalana_avg:.2}% (paper: 3.52% on Gorgon)");
    println!("tracer  average overhead: {tracer_avg:.2}%");
    println!("\nnote: tracing cost is proportional to event density. The paper's");
    println!("applications execute orders of magnitude more events per second of");
    println!("runtime than these scaled-down kernels, so the tracer's penalty is");
    println!("mild on our compute-dense kernels (EP/BT/SP) and pronounced on the");
    println!("communication-dense ones (CG/MG/IS) — compare the per-app rows.");
    assert!(scalana_avg < 10.0, "ScalAna stays inside the paper's band");
    assert!(scalana_max < 15.0, "ScalAna worst case stays light");
    assert!(
        tracer_max > 2.0 * scalana_max,
        "on event-dense kernels tracing is much heavier ({tracer_max:.1}% vs {scalana_max:.1}%)"
    );
    println!("\nshape check PASSED: ScalAna flat & low; tracing explodes with event density");
}
