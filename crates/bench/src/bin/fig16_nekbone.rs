//! Fig. 16: the Nekbone case study — per-rank TOT_LST_INS (equal) vs
//! TOT_CYC (divergent) in the dgemm loop, before/after the BLAS fix.

use scalana_bench::bar;
use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

fn pmu(app: &scalana_apps::App, nprocs: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let psg = build_psg(&app.program, &PsgOptions::default());
    let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(nprocs))
        .run()
        .unwrap();
    (
        res.rank_pmu.iter().map(|p| p.lst_ins).collect(),
        res.rank_pmu.iter().map(|p| p.tot_cyc).collect(),
        res.rank_elapsed.clone(),
    )
}

fn variance(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

fn main() {
    let broken = scalana_apps::nekbone::build(false);
    let fixed = scalana_apps::nekbone::build(true);
    let nprocs = 32;

    println!("Fig. 16 — Nekbone PMU signature (32 ranks)\n");
    let analysis = analyze_app(&broken, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
    assert!(analysis.report.found_at("blas.f:8941"));

    let (lst_b, cyc_b, elapsed_b) = pmu(&broken, nprocs);
    let max_cyc = cyc_b.iter().copied().fold(0.0, f64::max);
    println!("before fix — TOT_CYC per rank (TOT_LST_INS is equal on all ranks):");
    for r in 0..8 {
        println!(
            "  rank {r:>2} {:<40} cyc {:.2e}  lst {:.2e}",
            bar(cyc_b[r], max_cyc, 40),
            cyc_b[r],
            lst_b[r]
        );
    }

    let (lst_f, cyc_f, elapsed_f) = pmu(&fixed, nprocs);
    println!("\nafter fix — TOT_CYC per rank:");
    for r in 0..8 {
        println!(
            "  rank {r:>2} {:<40} cyc {:.2e}  lst {:.2e}",
            bar(cyc_f[r], max_cyc, 40),
            cyc_f[r],
            lst_f[r]
        );
    }

    let lst_red = (1.0 - lst_f.iter().sum::<f64>() / lst_b.iter().sum::<f64>()) * 100.0;
    let var_red = (1.0 - variance(&elapsed_f) / variance(&elapsed_b)) * 100.0;
    println!("\nTOT_LST_INS reduction: {lst_red:.2}% (paper: 89.78%)");
    println!("time variance reduction: {var_red:.2}% (paper: 94.03%)");
    assert!(lst_red > 80.0);
    assert!(var_red > 80.0);
    println!("shape check PASSED");
}
