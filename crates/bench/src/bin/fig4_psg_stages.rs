//! Fig. 3/4: PSG generation on the paper's example program — local
//! PSGs from intra-procedural analysis, the complete PSG from
//! inter-procedural analysis, and the contracted PSG with
//! `MaxLoopDepth = 1`.

use scalana_graph::dot::{local_to_dot, psg_to_dot};
use scalana_graph::intra::build_local;
use scalana_graph::{build_psg, PsgOptions};
use scalana_lang::parse_program;

/// The paper's Fig. 3 MPI program, in MiniMPI.
const FIG3: &str = r#"
param N = 16;
fn main() {
    for i in 0 .. N {              // Loop 1
        let a = i;
        for j in 0 .. i {          // Loop 1.1
            comp(cycles = j);
        }
        for k in 0 .. i {          // Loop 1.2
            comp(cycles = k);
        }
        foo();
        bcast(root = 0, bytes = 8);
    }
}
fn foo() {
    if rank % 2 == 0 {
        send(dst = rank + 1, tag = 0, bytes = 8);
    } else {
        recv(src = rank - 1, tag = 0);
    }
}
"#;

fn main() {
    let program = parse_program("fig3.mmpi", FIG3).unwrap();

    println!("=== Fig. 4(a): local PSGs (intra-procedural analysis) ===\n");
    for func in &program.functions {
        let local = build_local(func);
        println!("-- fn {} ({} vertices) --", func.name, local.vertex_count());
        println!("{}", local_to_dot(&local));
    }

    println!("=== Fig. 4(b): complete PSG (inter-procedural, uncontracted) ===\n");
    let full = build_psg(
        &program,
        &PsgOptions {
            contract: false,
            max_loop_depth: 1,
        },
    );
    println!("{} vertices\n{}", full.vertex_count(), psg_to_dot(&full));

    println!("=== Fig. 4(c): contracted PSG (MaxLoopDepth = 1) ===\n");
    let contracted = build_psg(
        &program,
        &PsgOptions {
            contract: true,
            max_loop_depth: 1,
        },
    );
    println!(
        "{} vertices\n{}",
        contracted.vertex_count(),
        psg_to_dot(&contracted)
    );
    println!("stats: {}", contracted.stats);

    // Paper shape: Loop1 kept (contains MPI); Loop1.1/1.2 folded into
    // one Comp; foo's branch and MPI vertices kept.
    assert_eq!(contracted.stats.loops, 1, "only Loop 1 survives");
    assert_eq!(contracted.stats.branches, 1, "foo's branch survives");
    assert_eq!(contracted.stats.mpis, 3, "send, recv, bcast");
    assert!(contracted.stats.vac < full.stats.vbc);
    println!("\nshape check PASSED: matches paper Fig. 4(c)");
}
