//! Fig. 13: runtime overhead and storage of the three tools on Zeus-MP
//! across process counts (paper: ScalAna 1.85% avg / 20 MB at 64 ranks;
//! Scalasca 40.89% / 28.26 GB).

use scalana_bench::{measure_app, Table};
use scalana_profile::overhead::human_bytes;

fn main() {
    let app = scalana_apps::zeusmp::build(false);
    println!("Fig. 13 — Zeus-MP tool overhead and storage by scale\n");
    let mut overhead = Table::new(&["ranks", "Scalasca-like", "HPCToolkit-like", "ScalAna"]);
    let mut storage = Table::new(&["ranks", "Scalasca-like", "HPCToolkit-like", "ScalAna"]);

    let mut scalana_avg = 0.0;
    let mut tracer_avg = 0.0;
    let scales = [4usize, 8, 16, 32, 64];
    for &p in &scales {
        let report = measure_app(&app, p);
        let t = report.tool("Scalasca-like tracer").unwrap();
        let f = report.tool("HPCToolkit-like profiler").unwrap();
        let s = report.tool("ScalAna").unwrap();
        overhead.row(vec![
            p.to_string(),
            format!("{:.2}%", t.overhead_pct),
            format!("{:.2}%", f.overhead_pct),
            format!("{:.2}%", s.overhead_pct),
        ]);
        storage.row(vec![
            p.to_string(),
            human_bytes(t.storage_bytes),
            human_bytes(f.storage_bytes),
            human_bytes(s.storage_bytes),
        ]);
        scalana_avg += s.overhead_pct;
        tracer_avg += t.overhead_pct;
    }
    scalana_avg /= scales.len() as f64;
    tracer_avg /= scales.len() as f64;

    println!("(a) runtime overhead");
    overhead.print();
    println!("\n(b) storage cost");
    storage.print();
    println!(
        "\nScalAna avg {scalana_avg:.2}% (paper 1.85%); tracer avg {tracer_avg:.2}% \
         (paper 40.89% at 64 — our scaled-down Zeus-MP emits far fewer events \
         per second, so the tracer's runtime penalty shrinks while its storage \
         still dominates)"
    );
    assert!(scalana_avg < 6.0, "ScalAna stays inside the paper's band");
    let report = measure_app(&app, 64);
    let t = report.tool("Scalasca-like tracer").unwrap().storage_bytes;
    let s = report.tool("ScalAna").unwrap().storage_bytes;
    assert!(t > 5 * s, "tracer storage dwarfs ScalAna's ({t} vs {s})");
    println!("shape check PASSED");
}
