//! Table I: qualitative performance and storage comparison on NPB-CG
//! with 128 processes.
//!
//! Paper values: Scalasca 25.3% / 6.77 GB, HPCToolkit 8.41% / 11.45 MB,
//! ScalAna 3.53% / 314 KB. Absolute numbers differ on the simulator;
//! the *shape* (tracing ≫ profiling ≫ ScalAna in both columns) is the
//! claim under reproduction.

use scalana_bench::{measure_app, Table};
use scalana_profile::overhead::human_bytes;

fn main() {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions::default());
    let nprocs = 128;
    println!("Table I — NPB-CG, {nprocs} processes ({} iterations)\n", 25);
    let report = measure_app(&app, nprocs);

    let mut table = Table::new(&["Tool", "Approach", "Time Overhead", "Storage Cost"]);
    for run in &report.tools {
        let approach = match run.name {
            "Scalasca-like tracer" => "Tracing-based",
            "HPCToolkit-like profiler" => "Profiling-based",
            _ => "Graph-based",
        };
        table.row(vec![
            run.name.to_string(),
            approach.to_string(),
            format!("{:.2}%", run.overhead_pct),
            human_bytes(run.storage_bytes),
        ]);
    }
    table.print();
    println!(
        "\nbaseline (uninstrumented): {:.4} virtual seconds",
        report.baseline
    );

    let tracer = report.tool("Scalasca-like tracer").unwrap();
    let flat = report.tool("HPCToolkit-like profiler").unwrap();
    let scalana = report.tool("ScalAna").unwrap();
    assert!(tracer.overhead_pct > flat.overhead_pct);
    assert!(flat.overhead_pct >= scalana.overhead_pct * 0.5);
    assert!(tracer.storage_bytes > flat.storage_bytes);
    assert!(flat.storage_bytes > scalana.storage_bytes);
    println!("\nshape check PASSED: tracing >> profiling >> ScalAna");
}
