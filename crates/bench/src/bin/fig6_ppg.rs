//! Fig. 6: a Program Performance Graph on 8 processes — per-vertex
//! performance vectors plus inter-process dependence edges.

use scalana_core::{analyze, ScalAnaConfig};
use scalana_lang::parse_program;

/// The paper's Fig. 6(a) code sketch: compute, a ring exchange, two
/// exchange-bearing loops.
const SRC: &str = r#"
param N = 200_000;
fn main() {
    comp(cycles = N, ins = N, lst = N / 4, miss = N / 400);
    sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
             sendtag = 0, recvtag = 0, bytes = 4k);
    for i in 0 .. 4 {
        sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
                 sendtag = 1, recvtag = 1, bytes = 2k);
    }
    for j in 0 .. 2 {
        sendrecv(dst = (rank + 2) % nprocs, src = (rank + nprocs - 2) % nprocs,
                 sendtag = 2, recvtag = 2, bytes = 1k);
    }
}
"#;

fn main() {
    let program = parse_program("fig6.mmpi", SRC).unwrap();
    let analysis = analyze(&program, &[8], &ScalAnaConfig::default()).unwrap();
    let ppg = &analysis.ppgs[0];

    println!("Fig. 6 — PPG on 8 processes\n");
    println!("per-vertex performance vectors (rank 0 shown):");
    for v in &analysis.psg.vertices {
        let perf = ppg.perf(v.id, 0);
        if perf.count == 0 {
            continue;
        }
        println!(
            "  v{:<3} {:<14} @{:<12} Time {:>10.3e}  TOT_INS {:>11.0}  TOT_LST {:>10.0}  count {}",
            v.id,
            v.kind.label(),
            v.span.file_line(),
            perf.time,
            perf.tot_ins,
            perf.lst_ins,
            perf.count,
        );
    }

    println!("\ninter-process communication dependence edges (aggregated):");
    let mut shown = 0;
    for dep in &ppg.comm {
        println!(
            "  rank {} v{} -> rank {} v{}  msgs {:>3}  bytes {:>7}  wait {:.2e}s",
            dep.src_rank,
            dep.src_vertex,
            dep.dst_rank,
            dep.dst_vertex,
            dep.count,
            dep.bytes,
            dep.wait_time
        );
        shown += 1;
        if shown >= 24 {
            println!("  ... ({} edges total)", ppg.comm.len());
            break;
        }
    }

    // Every rank exchanges with neighbours in three patterns.
    assert!(ppg.comm.len() >= 16, "dependence edges recorded");
    let perf_entries = analysis
        .psg
        .vertices
        .iter()
        .filter(|v| ppg.perf(v.id, 0).count > 0)
        .count();
    assert!(perf_entries >= 4, "performance vectors attached");
    println!("\nshape check PASSED: PPG carries perf vectors + dependence edges");
}
