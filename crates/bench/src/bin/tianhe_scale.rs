//! The paper's largest-scale claims, on the simulator's stand-in for
//! Tianhe-2: ScalAna overhead at 2,048 processes (paper: 1.73 % average
//! for NPB, 4.72 MB storage) and the Nekbone fix's gain at 2,048
//! (paper: +11.11 %).

use scalana_bench::Table;
use scalana_core::{speedup_curve, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};
use scalana_profile::overhead::human_bytes;
use scalana_profile::{ProfilerConfig, ScalAnaProfiler};

fn main() {
    let nprocs = 2048;
    println!("Tianhe-2-scale runs — {nprocs} processes\n");

    // ScalAna overhead + storage on three NPB kernels at 2,048 ranks
    // (paper-literal 200 Hz sampling: these runs are long enough).
    let mut table = Table::new(&["Program", "baseline (s)", "overhead", "storage"]);
    let mut sum = 0.0;
    let kernels = ["CG", "EP", "IS"];
    for name in kernels {
        let app = scalana_apps::by_name(name).unwrap();
        let psg = build_psg(&app.program, &PsgOptions::default());
        let base = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(nprocs))
            .run()
            .unwrap()
            .total_time();
        let mut profiler = ScalAnaProfiler::new(ProfilerConfig::default());
        let tooled = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut profiler)
            .run()
            .unwrap()
            .total_time();
        let data = profiler.take_data();
        let overhead = (tooled - base) / base * 100.0;
        sum += overhead;
        table.row(vec![
            name.to_string(),
            format!("{base:.4}"),
            format!("{overhead:.2}%"),
            human_bytes(data.storage_bytes),
        ]);
    }
    table.print();
    let avg = sum / kernels.len() as f64;
    println!("\naverage ScalAna overhead at 2,048 ranks: {avg:.2}% (paper: 1.73%)");
    assert!(avg < 5.0, "overhead stays small at full scale");

    // Nekbone before/after at 2,048 ranks (64-rank baseline, like the
    // paper's 27.08x -> 29.97x).
    let broken = scalana_apps::nekbone::build(false);
    let fixed = scalana_apps::nekbone::build(true);
    let scales = [64usize, 256, 1024, 2048];
    let config = ScalAnaConfig::default();
    let before = speedup_curve(&broken.program, &scales, &config).unwrap();
    let after = speedup_curve(&fixed.program, &scales, &config).unwrap();
    let (_, sb) = before.last().unwrap();
    let (_, sa) = after.last().unwrap();
    println!("\nNekbone speedup at 2,048 ranks (each vs its own 64-rank baseline):");
    println!("  before {sb:.2}x, after {sa:.2}x (paper: 27.08x -> 29.97x)");
    // The paper's headline number is the end-to-end gain at 2,048.
    let time_at = |app: &scalana_apps::App| {
        let psg = build_psg(&app.program, &PsgOptions::default());
        Simulation::new(&app.program, &psg, SimConfig::with_nprocs(nprocs))
            .run()
            .unwrap()
            .total_time()
    };
    let tb = time_at(&broken);
    let tf = time_at(&fixed);
    println!(
        "  end-to-end at 2,048 ranks: {tb:.4}s -> {tf:.4}s ({:+.2}% performance; \
         paper: +11.11%)",
        (tb / tf - 1.0) * 100.0
    );
    assert!(tf < tb, "the fix improves end-to-end time at full scale");
    println!("\nshape check PASSED");
}
