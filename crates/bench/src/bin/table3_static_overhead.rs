//! Table III: the static (compile-time) overhead of ScalAna — how much
//! the PSG construction adds on top of ordinary compilation.
//!
//! Paper: 0.28%–3.01% on top of LLVM compilation. Here "compilation" is
//! lexing + parsing + semantic checking of the MiniMPI source, and the
//! static analysis is local-PSG construction + inter-procedural
//! expansion + contraction. Each measurement is repeated and averaged.

use scalana_bench::Table;
use scalana_graph::{build_psg, PsgOptions};
use scalana_lang::parse_program;
use std::time::Instant;

fn time_n<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / n as f64
}

fn main() {
    println!("Table III — static-analysis overhead vs compilation\n");
    let mut table = Table::new(&[
        "Program",
        "compile (µs)",
        "PSG build (µs)",
        "overhead",
        "PSG mem (KB)",
    ]);

    let reps = 50;
    for app in scalana_apps::all_apps() {
        let source = app.source();
        let compile = time_n(reps, || {
            let _ = parse_program("t.mmpi", &source).unwrap();
        });
        let program = parse_program("t.mmpi", &source).unwrap();
        let psg_build = time_n(reps, || {
            let _ = build_psg(&program, &PsgOptions::default());
        });
        let psg = build_psg(&program, &PsgOptions::default());
        // Paper: ~32 B per vertex of static-analysis memory.
        let mem_kb = psg.vertex_count() * std::mem::size_of::<scalana_graph::Vertex>() / 1024;
        table.row(vec![
            app.name.clone(),
            format!("{:.1}", compile * 1e6),
            format!("{:.1}", psg_build * 1e6),
            format!("{:.2}%", psg_build / compile * 100.0),
            mem_kb.max(1).to_string(),
        ]);
    }
    table.print();
    println!(
        "\nnote: the paper reports 0.28%–3.01% because LLVM's optimizing\n\
         compilation dwarfs the pass; MiniMPI parsing is itself tiny, so\n\
         the ratio here is larger while the absolute cost stays microseconds."
    );
}
