//! Table IV: post-mortem detection cost at 128 processes — the
//! wall-clock seconds `ScalAna-detect` takes (paper: 0.29–11.81 s,
//! always a small fraction of the run).

use scalana_bench::Table;
use scalana_core::{analyze_app, ScalAnaConfig};

fn main() {
    println!("Table IV — post-mortem detection cost (scales 4..128)\n");
    let mut table = Table::new(&[
        "Program",
        "detect (ms)",
        "PPG vertices",
        "dep edges @128",
        "root causes",
    ]);

    for app in scalana_apps::all_apps() {
        let analysis = analyze_app(&app, &[4, 16, 64, 128], &ScalAnaConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", app.name));
        let largest = analysis.ppgs.last().unwrap();
        table.row(vec![
            app.name.clone(),
            format!("{:.2}", analysis.detect_seconds * 1e3),
            analysis.psg.vertex_count().to_string(),
            largest.comm.len().to_string(),
            analysis.report.root_causes.len().to_string(),
        ]);
    }
    table.print();
    println!("\n(cost is dominated by per-vertex fits and the backtracking walks,");
    println!(" proportional to PSG size × scales — the paper's observation.)");
}
