//! Table II: code size and PSG vertex statistics for all evaluated
//! programs — vertices before/after contraction and the per-kind
//! breakdown.

use scalana_bench::Table;
use scalana_graph::{build_psg, PsgOptions};

fn main() {
    println!("Table II — PSG statistics (MaxLoopDepth = 10, paper setting)\n");
    let mut table = Table::new(&[
        "Program",
        "LoC",
        "#VBC",
        "#VAC",
        "#Loop",
        "#Branch",
        "#Comp",
        "#MPI",
        "reduction",
    ]);

    let mut total_reduction = 0.0;
    let mut total_comp_mpi = 0.0;
    let apps = scalana_apps::all_apps();
    for app in &apps {
        let psg = build_psg(&app.program, &PsgOptions::default());
        let s = psg.stats;
        total_reduction += s.reduction();
        total_comp_mpi += s.comp_mpi_fraction();
        table.row(vec![
            app.name.clone(),
            app.loc().to_string(),
            s.vbc.to_string(),
            s.vac.to_string(),
            s.loops.to_string(),
            s.branches.to_string(),
            s.comps.to_string(),
            s.mpis.to_string(),
            format!("{:.0}%", s.reduction() * 100.0),
        ]);
    }
    table.print();

    let avg_reduction = total_reduction / apps.len() as f64 * 100.0;
    let avg_comp_mpi = total_comp_mpi / apps.len() as f64 * 100.0;
    println!("\naverage contraction reduction: {avg_reduction:.0}% (paper: 68%)");
    println!("average Comp+MPI fraction:     {avg_comp_mpi:.0}% (paper: >73%)");

    println!(
        "\nnote: the paper's 68% comes from real C/Fortran, where most\n\
         statements are scalar code that contraction folds away. MiniMPI\n\
         workloads are written at skeleton density, so there is less to\n\
         fold; the folding machinery itself is exercised by the unit tests\n\
         on statement-dense programs (see scalana-graph::contract)."
    );
    assert!(
        avg_reduction > 8.0,
        "contraction still removes a visible fraction"
    );
    assert!(avg_comp_mpi > 60.0, "Comp+MPI dominate the final PSG");
    println!("\nshape check PASSED");
}
