//! Fig. 14/15: the SST case study — backtracking to the O(n) scan and
//! the per-rank TOT_INS histogram before/after the fix.

use scalana_bench::bar;
use scalana_core::{analyze_app, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_mpisim::{SimConfig, Simulation};

fn tot_ins_per_rank(app: &scalana_apps::App, nprocs: usize) -> Vec<f64> {
    let psg = build_psg(&app.program, &PsgOptions::default());
    let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(nprocs))
        .run()
        .unwrap();
    res.rank_pmu.iter().map(|p| p.tot_ins).collect()
}

fn main() {
    let broken = scalana_apps::sst::build(false);
    let fixed = scalana_apps::sst::build(true);
    let nprocs = 32;

    println!("Fig. 14 — SST backtracking (32 ranks)\n");
    let analysis = analyze_app(&broken, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
    for path in analysis.report.paths.iter().take(3) {
        for (j, s) in path.steps.iter().enumerate() {
            let hop = if s.via_comm { "~>" } else { "->" };
            let mark = if j == path.root_cause_idx {
                "  <== root cause"
            } else {
                ""
            };
            println!(
                "  {hop} rank {:<3} {:<14} {:<26}{mark}",
                s.rank, s.kind, s.location
            );
        }
        println!();
    }
    assert!(analysis.report.found_at("mirandaCPU.cc:247"));

    println!("Fig. 15 — TOT_INS per rank before/after the data-structure fix\n");
    let before = tot_ins_per_rank(&broken, nprocs);
    let after = tot_ins_per_rank(&fixed, nprocs);
    let max = before.iter().copied().fold(0.0, f64::max);
    println!("before (array scan, O(n)):");
    for (r, v) in before.iter().enumerate() {
        println!("  rank {r:>2} {:<40} {v:.2e}", bar(*v, max, 40));
    }
    println!("after (map lookup, O(log n)):");
    for (r, v) in after.iter().enumerate() {
        println!("  rank {r:>2} {:<40} {v:.2e}", bar(*v, max, 40));
    }

    let sum_b: f64 = before.iter().sum();
    let sum_a: f64 = after.iter().sum();
    println!(
        "\nTOT_INS reduction: {:.2}% (paper: 99.92%)",
        (1.0 - sum_a / sum_b) * 100.0
    );
    assert!(sum_a < sum_b * 0.2);
    println!("shape check PASSED");
}
