//! Fig. 9: the `ScalAna-viewer` output — root-cause vertices with their
//! calling paths (the GUI's upper pane) and the code snippets behind
//! them (the lower pane), rendered as text.

use scalana_core::{analyze_app, viewer, ScalAnaConfig};

fn main() {
    let app = scalana_apps::zeusmp::build(false);
    let analysis = analyze_app(&app, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
    let screen = viewer::render_with_snippets(&app.program, &analysis.report, 3);
    println!("{screen}");

    // The viewer must show: the ranked root-cause list (upper pane), the
    // causal paths, and at least one code snippet (lower pane).
    assert!(screen.contains("Root causes"));
    assert!(screen.contains("Causal paths"));
    assert!(screen.contains("Code snippets"));
    assert!(screen.contains("bval3d.F:155"));
    assert!(
        screen.contains("for j in 0 .. 8"),
        "the boundary loop's source must appear in the snippet pane"
    );
    println!("shape check PASSED: viewer panes populated");
}
