//! The Criterion benchmark suites, as plain functions.
//!
//! Each `benches/*.rs` harness delegates here, and the `perfgate` runner
//! calls the same functions in-process to collect machine-readable
//! medians — one definition, two consumers, so the committed
//! `BENCH_*.json` trajectory always measures exactly what `cargo bench`
//! runs.

use criterion::{BenchmarkId, Criterion};
use scalana_api::paths;
use scalana_core::{analyze_app, profile_one_scale, ScalAnaConfig};
use scalana_detect::{detect, DetectConfig};
use scalana_graph::{build_psg, Ppg, PsgOptions};
use scalana_lang::parse_program;
use scalana_mpisim::{SimConfig, Simulation};
use scalana_obs::Histogram;
use scalana_profile::{FlatProfilerHook, ProfilerConfig, ScalAnaProfiler, TracerHook};
use scalana_service::client::Conn;
use scalana_service::exec::profile_one_scale_instrumented;
use scalana_service::json::Json;
use scalana_service::{client, Server, ServiceConfig, ServiceMetrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Discrete-event simulator throughput — how fast the substrate
/// executes rank-scaled workloads (CG at several scales, and the
/// collective-heavy path).
pub fn simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);

    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    for p in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("cg", p), &p, |b, &p| {
            b.iter(|| {
                Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                    .run()
                    .unwrap()
            });
        });
    }

    let coll = parse_program(
        "coll.mmpi",
        "fn main() { for i in 0 .. 50 { comp(cycles = 10_000); allreduce(bytes = 8); } }",
    )
    .unwrap();
    let coll_psg = build_psg(&coll, &PsgOptions::default());
    for p in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("allreduce_chain", p), &p, |b, &p| {
            b.iter(|| {
                Simulation::new(&coll, &coll_psg, SimConfig::with_nprocs(p))
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// The hook layer itself — how much wall-clock time each tool's
/// instrumentation adds to the simulation loop (separate from the
/// modeled *virtual-time* overheads of Table I).
pub fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("hook_layer");
    group.sample_size(10);

    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    let config = SimConfig::with_nprocs(32);

    group.bench_function("baseline_no_hook", |b| {
        b.iter(|| {
            Simulation::new(&app.program, &psg, config.clone())
                .run()
                .unwrap()
        });
    });
    group.bench_function("scalana_profiler", |b| {
        b.iter(|| {
            let mut hook = ScalAnaProfiler::new(ProfilerConfig::default());
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.take_data()
        });
    });
    group.bench_function("tracer", |b| {
        b.iter(|| {
            let mut hook = TracerHook::with_defaults();
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.storage_bytes()
        });
    });
    group.bench_function("flat_profiler", |b| {
        b.iter(|| {
            let mut hook = FlatProfilerHook::with_defaults();
            Simulation::new(&app.program, &psg, config.clone())
                .with_hook(&mut hook)
                .run()
                .unwrap();
            hook.storage_bytes()
        });
    });
    group.finish();
}

/// Post-mortem detection cost (Table IV, measured precisely) —
/// problematic-vertex detection plus backtracking over pre-built PPGs.
pub fn detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    for name in ["CG", "ZMP"] {
        let app = scalana_apps::by_name(name).unwrap();
        // Build the PPGs once; bench only the offline analysis.
        let analysis = analyze_app(&app, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
        let refs: Vec<&Ppg> = analysis.ppgs.iter().collect();
        group.bench_with_input(BenchmarkId::new("detect", name), &refs, |b, refs| {
            b.iter(|| detect(refs, &DetectConfig::default()));
        });
    }
    group.finish();
}

/// PSG construction (Table III's static-analysis cost, measured
/// precisely) — parsing, full build, contraction on/off.
pub fn psg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("psg_build");
    group.sample_size(20);
    for name in ["CG", "MG", "ZMP"] {
        let app = scalana_apps::by_name(name).unwrap();
        let source = app.source();
        group.bench_with_input(BenchmarkId::new("parse", name), &source, |b, src| {
            b.iter(|| parse_program("bench.mmpi", src).unwrap());
        });
        let program = parse_program("bench.mmpi", &source).unwrap();
        group.bench_with_input(
            BenchmarkId::new("build_contracted", name),
            &program,
            |b, p| {
                b.iter(|| build_psg(p, &PsgOptions::default()));
            },
        );
        group.bench_with_input(BenchmarkId::new("build_raw", name), &program, |b, p| {
            b.iter(|| {
                build_psg(
                    p,
                    &PsgOptions {
                        contract: false,
                        ..Default::default()
                    },
                )
            });
        });
    }
    group.finish();
}

/// Workload-generator throughput — how fast the fuzzer's front half
/// (weighted spec generation, lowering to a checked AST, and the
/// pretty-print → re-parse round trip the differential oracles feed on)
/// turns seeds into runnable MiniMPI programs. Tracks the cost of
/// growing the grammar: a heavier template mix shows up here before it
/// shows up as fuzz wall-clock.
pub fn wgen(c: &mut Criterion) {
    const CASES: usize = 100;
    const SEED: u64 = 0x5ca1_ab1e;

    let mut group = c.benchmark_group("wgen");
    group.sample_size(20);

    group.bench_function("generate_100", |b| {
        b.iter(|| {
            (0..CASES)
                .map(|case| scalana_wgen::generate(SEED, case).stmt_count())
                .sum::<usize>()
        });
    });

    let specs: Vec<_> = (0..CASES)
        .map(|case| scalana_wgen::generate(SEED, case))
        .collect();
    group.bench_function("lower_100", |b| {
        b.iter(|| {
            specs
                .iter()
                .map(|spec| spec.lower().next_node_id)
                .sum::<u32>()
        });
    });

    let sources: Vec<String> = specs.iter().map(|spec| spec.pretty()).collect();
    group.bench_function("reparse_100", |b| {
        b.iter(|| {
            sources
                .iter()
                .map(|src| parse_program("wgen.mmpi", src).unwrap().next_node_id)
                .sum::<u32>()
        });
    });

    group.finish();
}

/// The scales the observability-overhead pair runs at (also the ids
/// perfgate reads back when it computes and gates the overhead ratio).
pub const OBS_SCALES: [usize; 2] = [8, 32];

/// Observability overhead — what always-on self-tracing costs.
///
/// `sim_stripped` is the bare per-scale pipeline call
/// ([`profile_one_scale`]); `sim_instrumented` is the daemon's
/// production path around the *identical* simulation
/// ([`profile_one_scale_instrumented`]): the `simulate` stage span, the
/// latency histogram, the panic guard, and the `ObsSimHook` observer
/// counting every simulator event. The gap between their medians is the
/// overhead perfgate bounds (`OBS_OVERHEAD_FACTOR`, default 5% in full
/// runs) — the paper's thesis prices always-on instrumentation in
/// single-digit percent, and the daemon holds itself to the same bar.
/// The `event_record`/`histogram_record`/`span_timed` cases price the
/// primitives per operation.
pub fn obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.sample_size(20);

    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    let config = ScalAnaConfig::default();
    for p in OBS_SCALES {
        group.bench_with_input(BenchmarkId::new("sim_stripped", p), &p, |b, &p| {
            b.iter(|| profile_one_scale(&app.program, &psg, &config, p).unwrap());
        });
    }
    let metrics = ServiceMetrics::new();
    for p in OBS_SCALES {
        let metrics = &metrics;
        group.bench_with_input(BenchmarkId::new("sim_instrumented", p), &p, |b, &p| {
            b.iter(|| {
                let (result, span) =
                    profile_one_scale_instrumented(metrics, &app.program, &psg, &config, p);
                (result.unwrap(), span)
            });
        });
    }

    // The primitives themselves, per operation: one ring event, one
    // histogram record, one timed span (two clock reads + a record).
    let label = scalana_obs::label("bench.obs.primitive");
    group.bench_function("event_record", |b| {
        b.iter(|| scalana_obs::record(scalana_obs::EventKind::Counter, label, 1));
    });
    let hist = Histogram::detached();
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1237);
            hist.record(v & 0xf_ffff);
        });
    });
    group.bench_function("span_timed", |b| {
        b.iter(|| scalana_obs::span_timed(label, &hist).elapsed_ns());
    });
    group.finish();
}

/// One paired observability-overhead measurement at one scale.
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Process count simulated.
    pub scale: usize,
    /// Pairs measured.
    pub samples: usize,
    /// Median of the stripped runs, nanoseconds.
    pub stripped_median_ns: u64,
    /// Median of the instrumented runs, nanoseconds.
    pub instrumented_median_ns: u64,
}

impl ObsOverhead {
    /// Instrumented over stripped median — 1.0 means free tracing.
    pub fn ratio(&self) -> Option<f64> {
        (self.stripped_median_ns > 0)
            .then(|| self.instrumented_median_ns as f64 / self.stripped_median_ns as f64)
    }
}

/// Measure the instrumented and stripped simulation **interleaved** —
/// one stripped run, one instrumented run, alternating — so machine
/// drift over the run hits both sides alike (the same trick as
/// [`measure_wait`]). The sequential Criterion cases in [`obs`] are
/// kept for `cargo bench` eyeballing, but batch-vs-batch medians drift
/// by more than the single-digit-percent effect the perfgate bounds;
/// the paired run is the recorded and gated comparison.
pub fn measure_obs_overhead(samples: usize) -> Vec<ObsOverhead> {
    let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
        na: 30_000,
        iterations: 5,
        delay_rank: None,
    });
    let psg = build_psg(&app.program, &PsgOptions::default());
    let config = ScalAnaConfig::default();
    let metrics = ServiceMetrics::new();
    let median = |mut v: Vec<Duration>| -> u64 {
        v.sort();
        v[v.len() / 2].as_nanos() as u64
    };
    OBS_SCALES
        .iter()
        .map(|&scale| {
            // One untimed warmup pair.
            profile_one_scale(&app.program, &psg, &config, scale).unwrap();
            profile_one_scale_instrumented(&metrics, &app.program, &psg, &config, scale)
                .0
                .unwrap();
            let mut stripped = Vec::with_capacity(samples);
            let mut instrumented = Vec::with_capacity(samples);
            for _ in 0..samples {
                let started = Instant::now();
                profile_one_scale(&app.program, &psg, &config, scale).unwrap();
                stripped.push(started.elapsed());
                let started = Instant::now();
                profile_one_scale_instrumented(&metrics, &app.program, &psg, &config, scale)
                    .0
                    .unwrap();
                instrumented.push(started.elapsed());
            }
            ObsOverhead {
                scale,
                samples,
                stripped_median_ns: median(stripped),
                instrumented_median_ns: median(instrumented),
            }
        })
        .collect()
}

fn service_program(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 4 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 8, ins = WORK / 8); }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
}

/// Full client round trip; returns once the result is served.
fn submit_and_wait(addr: &str, work: u64) {
    let body = Json::obj(vec![
        ("source", service_program(work).into()),
        ("name", "bench.mmpi".into()),
        ("scales", vec![2usize, 4].into()),
    ])
    .render();
    let response = client::request_json(addr, "POST", "/jobs", &body).unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let status = client::wait_for_job(addr, &key, Duration::from_secs(120)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
    let result = client::request_json(addr, "GET", &format!("/jobs/{key}/result"), "").unwrap();
    assert!(result.get("report").is_some());
}

/// Daemon submission latency, cached vs uncached.
///
/// Starts the real `scalana-service` daemon on an ephemeral port and
/// measures the full client round trip (submit → poll → result). The
/// uncached case forces a distinct content address per iteration (a
/// fresh `WORK` parameter), so every submission runs the simulator; the
/// cached case re-submits one fixed job and is answered from the
/// content-addressed result cache. The gap between the two is the
/// service's work-reuse win.
pub fn service(c: &mut Criterion) {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());

    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    // Every iteration submits a never-seen job: full pipeline each time.
    let unique = AtomicU64::new(0);
    {
        let addr = addr.clone();
        group.bench_function("submit_uncached", move |b| {
            b.iter(|| {
                let work = 400_000 + unique.fetch_add(1, Ordering::Relaxed);
                submit_and_wait(&addr, work);
            });
        });
    }

    // One warmed job, re-submitted: served from the result cache.
    submit_and_wait(&addr, 777_777);
    {
        let addr = addr.clone();
        group.bench_function("submit_cached", move |b| {
            b.iter(|| submit_and_wait(&addr, 777_777));
        });
    }
    group.finish();

    let _ = client::request(&addr, "POST", "/shutdown", "");
}

/// The throughput workload: enough per-iteration work that simulation
/// cost scales visibly with rank count, so the per-scale cache's
/// savings dominate protocol overheads.
fn overlap_program(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 40 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 16, ins = WORK / 16); }}\n\
                 barrier();\n\
                 allreduce(bytes = 8);\n\
             }}\n\
         }}"
    )
}

/// The overlap scenario's scale sets. The warm path primes everything
/// but one cheap middle scale — including the dominant 256-rank run —
/// so the full submission simulates exactly one small scale: the "fill
/// in the curve" workflow. Both sets share the smallest scale: the
/// per-scale cache keys on the discovery scale, so reuse requires it to
/// match (exactly as correctness does).
const OVERLAP_FULL: [usize; 4] = [2, 4, 8, 256];
const OVERLAP_PRIMED: [usize; 3] = [2, 8, 256];

fn boot_daemon(workers: usize) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 256,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Submit `source` over `scales` on `conn` (optionally with a detection
/// threshold override) and wait for completion.
fn submit_scales(conn: &mut Conn, source: &str, scales: &[usize], abnorm_thd: Option<f64>) {
    let mut pairs = vec![
        ("source", Json::from(source)),
        ("name", "throughput.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ];
    if let Some(thd) = abnorm_thd {
        pairs.push(("abnorm_thd", thd.into()));
    }
    let response = conn
        .request_json("POST", "/jobs", &pairs_body(pairs))
        .unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let status = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
}

fn pairs_body(pairs: Vec<(&str, Json)>) -> String {
    Json::obj(pairs).render()
}

/// Service throughput: the per-scale profile cache and the concurrent
/// serving path.
///
/// - `overlap_cold` — a never-seen program over the full scale set:
///   every scale simulates.
/// - `overlap_warm` — the same submission after a priming job covered
///   part of the scale set: only the genuinely new scales simulate.
///   This is the headline sub-job memoization win (the whole-job cache
///   of PR 2 cannot reuse *anything* here — the scale sets differ).
/// - `redetect_warm` — same program and scales, new detection
///   threshold: a different job key whose scales *all* hit the cache;
///   measures the pure post-mortem path (assemble + detect + HTTP).
/// - `clients_8_round` — 8 concurrent keep-alive clients, one unique
///   job each, measured as one round; together with the recorded
///   jobs/sec this tracks multi-client scaling.
/// - `wait_longpoll` vs `wait_poll` — latency from wait start to
///   observed completion of a fresh fast job, through the server-side
///   long-poll (`GET /v1/jobs/<id>/wait`) and through the PR 4
///   client's exponential-backoff status polling (reproduced in
///   `wait_pr4_backoff`). The gap is the poll-cadence quantization
///   the long-poll removes.
pub fn throughput(c: &mut Criterion) {
    let addr = boot_daemon(4);
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);

    let unique = AtomicU64::new(0);

    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("overlap_cold", move |b| {
            let mut conn = Conn::connect(&addr).unwrap();
            b.iter_with_setup(
                || overlap_program(3_000_000 + unique.fetch_add(1, Ordering::Relaxed)),
                |source| submit_scales(&mut conn, &source, &OVERLAP_FULL, None),
            );
        });
    }

    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("overlap_warm", move |b| {
            // Separate connections: the priming submission plays the
            // role of an earlier, unrelated client.
            let mut primer = Conn::connect(&addr).unwrap();
            let mut conn = Conn::connect(&addr).unwrap();
            b.iter_with_setup(
                || {
                    let source =
                        overlap_program(3_000_000 + unique.fetch_add(1, Ordering::Relaxed));
                    // Prime (untimed): covers the extremes, including
                    // the dominant largest scale.
                    submit_scales(&mut primer, &source, &OVERLAP_PRIMED, None);
                    source
                },
                |source| submit_scales(&mut conn, &source, &OVERLAP_FULL, None),
            );
        });
    }

    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("redetect_warm", move |b| {
            let mut primer = Conn::connect(&addr).unwrap();
            let mut conn = Conn::connect(&addr).unwrap();
            b.iter_with_setup(
                || {
                    let source =
                        overlap_program(3_000_000 + unique.fetch_add(1, Ordering::Relaxed));
                    submit_scales(&mut primer, &source, &OVERLAP_FULL, None);
                    source
                },
                // New threshold = new job key, zero new simulations.
                |source| submit_scales(&mut conn, &source, &OVERLAP_FULL, Some(1.7)),
            );
        });
    }

    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("clients_8_round", move |b| {
            b.iter(|| round_of_clients(&addr, 8, 1, unique));
        });
    }

    // Wait-for-completion latency, long-poll vs the polling fallback.
    // Each iteration submits a unique fast job and measures from wait
    // start to observed completion: the job finishes *during* the wait,
    // so the polling client pays its sleep-cadence quantization while
    // the long-poll server answers at the completion transition.
    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("wait_longpoll", move |b| {
            let mut submit_conn = Conn::connect(&addr).unwrap();
            let mut wait_conn = Conn::connect(&addr).unwrap();
            b.iter_with_setup(
                || submit_fast_job(&mut submit_conn, unique),
                |key| {
                    let doc = wait_conn
                        .wait_for_job(&key, Duration::from_secs(60))
                        .unwrap();
                    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
                },
            );
        });
    }
    {
        let addr = addr.clone();
        let unique = &unique;
        group.bench_function("wait_poll", move |b| {
            let mut submit_conn = Conn::connect(&addr).unwrap();
            let mut wait_conn = Conn::connect(&addr).unwrap();
            b.iter_with_setup(
                || submit_fast_job(&mut submit_conn, unique),
                |key| {
                    let doc = wait_pr4_backoff(&mut wait_conn, &key).unwrap();
                    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
                },
            );
        });
    }

    group.finish();
    let _ = client::request(&addr, "POST", "/shutdown", "");
}

/// The PR 4 client's wait loop, verbatim: status polls with
/// exponential backoff, 200µs doubling to a 25ms cap, on a keep-alive
/// connection. Kept here as the honest comparison baseline for
/// `wait_longpoll` — the shipped client no longer contains it (it
/// long-polls, with a fixed-cadence fallback for pre-`/v1` servers).
fn wait_pr4_backoff(conn: &mut Conn, key: &str) -> Result<Json, String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut backoff = Duration::from_micros(200);
    let cap = Duration::from_millis(25);
    loop {
        let doc = conn.request_json("GET", &format!("/jobs/{key}"), "")?;
        match doc.get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some(_) => return Ok(doc),
            None => return Err("status response missing `status`".to_string()),
        }
        if Instant::now() >= deadline {
            return Err(format!("job {key} still pending"));
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(cap);
    }
}

/// Submit one never-seen fast job (no wait); returns its key. Sized to
/// execute in a few milliseconds: long enough that the wait reliably
/// begins *before* the job completes and that thread-wakeup jitter
/// (~1 ms on a busy box) does not dominate, short enough that the
/// backoff poller's late intervals (3–13 ms by then) are the visible
/// cost on the polling side.
fn submit_fast_job(conn: &mut Conn, unique: &AtomicU64) -> String {
    let work = 50_000 + unique.fetch_add(1, Ordering::Relaxed);
    let body = Json::obj(vec![
        (
            "source",
            format!(
                "param WORK = {work};\n\
                 fn main() {{\n\
                     for it in 0 .. 40 {{\n\
                         comp(cycles = WORK / nprocs);\n\
                         barrier();\n\
                         allreduce(bytes = 8);\n\
                     }}\n\
                 }}"
            )
            .into(),
        ),
        ("name", "wait.mmpi".into()),
        ("scales", vec![2usize, 384].into()),
    ])
    .render();
    let response = conn.request_json("POST", paths::JOBS, &body).unwrap();
    response.get("job").unwrap().as_str().unwrap().to_string()
}

/// Paired wait-latency comparison for the `BENCH_*.json` trajectory.
#[derive(Debug, Clone)]
pub struct WaitMetrics {
    /// Jobs measured per strategy.
    pub samples: usize,
    /// Median submit→completion-observed latency via the server-side
    /// long-poll, nanoseconds.
    pub longpoll_median_ns: u64,
    /// Same, via the PR 4 client's exponential-backoff polling.
    pub poll_median_ns: u64,
}

/// Measure both wait strategies **interleaved against one daemon** —
/// one long-poll job, one backoff-poll job, alternating — so that
/// machine-load drift over the run hits both strategies alike. The
/// sequential Criterion cases above are kept for `cargo bench`
/// eyeballing, but job duration varies by milliseconds with background
/// load, so batch-vs-batch medians can swamp the ~poll-interval effect
/// this exists to measure; the paired run is the recorded comparison.
pub fn measure_wait(samples: usize) -> WaitMetrics {
    let addr = boot_daemon(4);
    let unique = AtomicU64::new(0);
    let mut submit_conn = Conn::connect(&addr).unwrap();
    let mut wait_conn = Conn::connect(&addr).unwrap();
    // One untimed warmup pair.
    let key = submit_fast_job(&mut submit_conn, &unique);
    wait_conn
        .wait_for_job(&key, Duration::from_secs(60))
        .unwrap();
    let key = submit_fast_job(&mut submit_conn, &unique);
    wait_pr4_backoff(&mut wait_conn, &key).unwrap();

    let mut longpoll = Vec::with_capacity(samples);
    let mut poll = Vec::with_capacity(samples);
    for _ in 0..samples {
        let key = submit_fast_job(&mut submit_conn, &unique);
        let started = Instant::now();
        let doc = wait_conn
            .wait_for_job(&key, Duration::from_secs(60))
            .unwrap();
        longpoll.push(started.elapsed());
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));

        let key = submit_fast_job(&mut submit_conn, &unique);
        let started = Instant::now();
        let doc = wait_pr4_backoff(&mut wait_conn, &key).unwrap();
        poll.push(started.elapsed());
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    }
    let _ = client::request(&addr, "POST", "/shutdown", "");
    let median = |mut v: Vec<Duration>| -> u64 {
        v.sort();
        v[v.len() / 2].as_nanos() as u64
    };
    WaitMetrics {
        samples,
        longpoll_median_ns: median(longpoll),
        poll_median_ns: median(poll),
    }
}

/// Machine-readable wait fan-out metrics for the `BENCH_*.json`
/// trajectory: one daemon, `clients` concurrent parked long-pollers,
/// one terminal transition observed by all of them.
#[derive(Debug, Clone)]
pub struct WaitFanout {
    /// Concurrent long-poll waiters parked on one job.
    pub clients: usize,
    /// `scalana_longpoll_parked` at saturation (must equal `clients`).
    pub parked: u64,
    /// Median completion-observation latency, nanoseconds, measured
    /// from the *first* observed response (the daemon-side fan-out
    /// spread; the absolute completion instant is not observable from
    /// outside the process).
    pub p50_ns: u64,
    /// 99th-percentile of the same (worst observed at small counts).
    pub p99_ns: u64,
    /// `VmRSS` of the whole process (daemon + parked client sockets) at
    /// park saturation, bytes. The headline: memory stays flat in the
    /// waiter count because a parked waiter is a subscription, not a
    /// thread.
    pub rss_bytes: u64,
}

/// Resident set of this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn vm_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|l| l.strip_prefix("VmRSS:"))
                .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// A never-seen source whose runtime scales linearly in `iters` —
/// `salt` keeps the content address unique across submissions.
fn fanout_source(iters: u64, salt: u64) -> String {
    format!(
        "param SALT = {salt};\n\
         fn main() {{\n\
             for it in 0 .. {iters} {{\n\
                 comp(cycles = 400 + SALT % 2);\n\
                 barrier();\n\
                 allreduce(bytes = 8);\n\
             }}\n\
         }}"
    )
}

/// Submit `source` at one scale without waiting; returns the job key.
fn submit_fanout_job(conn: &mut Conn, source: &str) -> String {
    let body = Json::obj(vec![
        ("source", source.into()),
        ("name", "fanout.mmpi".into()),
        ("scales", vec![4usize].into()),
    ])
    .render();
    let response = conn.request_json("POST", "/jobs", &body).unwrap();
    response.get("job").unwrap().as_str().unwrap().to_string()
}

/// Scrape one gauge/counter sample from `/v1/metrics`.
fn scrape_metric(conn: &mut Conn, name: &str) -> u64 {
    let (code, text) = conn.request("GET", paths::METRICS, "").unwrap();
    assert_eq!(code, 200, "metrics scrape failed: {text}");
    text.lines()
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing from exposition"))
}

/// Like [`scrape_metric`], but re-establishes the connection and retries
/// once if the daemon dropped it. The fan-out harness leaves its control
/// connection idle for tens of seconds while it parks thousands of
/// waiters on a busy machine, which is long enough for the daemon's idle
/// sweep to reap it.
#[cfg(target_os = "linux")]
fn scrape_metric_reconnect(conn: &mut Conn, addr: &str, name: &str) -> u64 {
    if let Ok((200, text)) = conn.request("GET", paths::METRICS, "") {
        if let Some(sample) = text
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.trim().parse::<u64>().ok())
        {
            return sample;
        }
    }
    *conn = Conn::connect(addr).unwrap();
    scrape_metric(conn, name)
}

/// Park `clients` concurrent long-pollers on one pending job and
/// measure the completion fan-out.
///
/// Mechanics: a single-worker daemon runs a calibrated *filler* job
/// while the *target* job queues behind it, so the target stays pending
/// for the whole parking phase no matter how long parking takes. Every
/// waiter is a raw keep-alive socket whose `GET .../wait` request is
/// written and never read; saturation is confirmed on the daemon's own
/// `scalana_longpoll_parked` gauge (exact, not sampled). A fresh submit
/// is then issued *while all waiters are parked* — the acceptance point
/// of the event-loop refactor (the old thread-per-connection daemon
/// shed every submit past 256 parked waiters). When the filler drains,
/// the target completes and the daemon fans the response out; arrival
/// timestamps come from a client-side epoll loop in this thread.
///
/// Daemon and clients share the process (2 fds per waiter), so the fd
/// limit is raised up front; where the environment caps the hard limit
/// (no `CAP_SYS_RESOURCE`), the waiter count is clamped to what the
/// limit affords and the recorded `clients` reflects the clamp — never
/// a silently partial park. The same honesty applies to time: the
/// server clamps each wait at 25 s, so on machines whose accept+park
/// pace cannot fit the requested count inside that window the count is
/// clamped to what a 10 s connect phase affords. The run also asserts, at the end, that no
/// waiter timed out (`scalana_longpoll_wakes_total` grew by the full
/// waiter count) — a timeout would silently turn the fan-out spread
/// into timeout jitter.
#[cfg(target_os = "linux")]
pub fn measure_wait_fanout(clients: usize) -> WaitFanout {
    use scalana_service::net::{self, Epoll, Interest};
    use std::io::Write as _;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    let requested = clients;
    let granted = net::raise_nofile_limit(2 * clients as u64 + 512).unwrap_or(512);
    let mut clients = requested.min((granted.saturating_sub(512) / 2) as usize);
    assert!(clients > 0, "fd limit {granted} leaves no room for waiters");
    if clients < requested {
        eprintln!(
            "wait_fanout: fd limit {granted} caps waiters at {clients} (requested {requested})"
        );
    }

    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 16,
        max_connections: clients + 64,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());

    let unique = AtomicU64::new(0);
    let salt = || 9_700_000 + unique.fetch_add(1, Ordering::Relaxed);
    let mut control = Conn::connect(&addr).unwrap();

    // Calibrate the filler against this machine: parking must finish
    // well inside the filler's runtime, and the filler must finish well
    // inside the waiters' 25 s server-side wait clamp (a timed-out
    // waiter would be answered `pending` early and poison the numbers).
    let probe_iters = 2_000u64;
    let probe = fanout_source(probe_iters, salt());
    let probe_started = Instant::now();
    let key = submit_fanout_job(&mut control, &probe);
    control.wait_for_job(&key, Duration::from_secs(60)).unwrap();
    let per_iter = probe_started.elapsed() / probe_iters as u32;
    let runway = (Duration::from_secs(4) + Duration::from_millis(clients as u64 * 3 / 2))
        .min(Duration::from_secs(14));
    let filler_iters =
        (runway.as_nanos() / per_iter.as_nanos().max(1)).max(probe_iters as u128) as u64;
    eprintln!(
        "wait_fanout: calibrated per_iter={per_iter:?} runway={runway:?} filler_iters={filler_iters}"
    );

    // Parking can race the filler: the probe calibrates against the
    // machine as it is *now*, and a load spike that lifts between
    // calibration and parking leaves the filler drained before the last
    // waiter arrives — every waiter is then answered inline and the
    // gauge never saturates. Detect that case (target already terminal
    // while the gauge is short) and retry with a 4× filler rather than
    // recording a partial park.
    let mut filler_iters = filler_iters;
    let (epoll, waiters, parked, wakes_before) = 'park: {
        for attempt in 0..4u32 {
            // A retry starts by dropping thousands of waiter sockets at
            // once; processing that disconnect storm can occupy the
            // daemon long enough that its idle sweep reaps the control
            // connection in the meantime. Re-establish it rather than
            // racing the sweep.
            if attempt > 0 {
                control = Conn::connect(&addr).unwrap();
            }
            // Let the daemon retire the previous attempt's sockets so
            // its connection budget is free again before reconnecting.
            let drain_deadline = Instant::now() + Duration::from_secs(30);
            while scrape_metric_reconnect(&mut control, &addr, "scalana_connections ") > 8 {
                assert!(
                    Instant::now() < drain_deadline,
                    "stale waiter connections never drained"
                );
                std::thread::sleep(Duration::from_millis(20));
            }

            let wakes_before =
                scrape_metric_reconnect(&mut control, &addr, "scalana_longpoll_wakes_total ");
            submit_fanout_job(&mut control, &fanout_source(filler_iters, salt()));
            let target = submit_fanout_job(&mut control, &fanout_source(64, salt()));

            // Park the waiters: blocking connect + write (both instant
            // on loopback), then nonblocking and registered for
            // readability.
            let epoll = Epoll::new().unwrap();
            let wait_request = format!(
                "GET /v1/jobs/{target}/wait?timeout_ms=25000 HTTP/1.1\r\nHost: fanout\r\n\r\n"
            );
            // Every waiter must be parked *simultaneously*, and the
            // server clamps each wait at 25 s, so the whole connect
            // phase has to fit well inside that clamp. On a loaded
            // single-core machine the daemon's accept+park pace
            // (competing with the filler simulation for the same core)
            // can drop to milliseconds per waiter; clamp the waiter
            // count to what the window affords — a partial park honestly
            // recorded beats an impossible one retried forever. (The
            // filler cannot simply be grown to cover a slow connect
            // phase either: the simulator's per-rank step budget caps
            // its runtime, and waits expiring at the 25 s clamp would
            // poison the fan-out anyway.)
            let park_window = Duration::from_secs(10);
            let connect_started = Instant::now();
            let mut waiters: Vec<TcpStream> = Vec::with_capacity(clients);
            for token in 0..clients {
                if token != 0 && token % 256 == 0 && connect_started.elapsed() > park_window {
                    break;
                }
                let mut socket = TcpStream::connect(addr.as_str()).unwrap();
                socket.write_all(wait_request.as_bytes()).unwrap();
                socket.set_nonblocking(true).unwrap();
                epoll
                    .add(socket.as_raw_fd(), token as u64, Interest::READ)
                    .unwrap();
                waiters.push(socket);
            }
            if waiters.len() < clients {
                eprintln!(
                    "wait_fanout: accept pace fits only {} of {clients} waiters inside the \
                     {park_window:?} park window — clamping",
                    waiters.len()
                );
                clients = waiters.len();
            }
            eprintln!(
                "wait_fanout: connected {clients} waiters in {:?} (attempt {attempt})",
                connect_started.elapsed()
            );

            let park_deadline = Instant::now() + runway + Duration::from_secs(30);
            loop {
                let parked =
                    scrape_metric_reconnect(&mut control, &addr, "scalana_longpoll_parked ");
                if parked >= clients as u64 {
                    break 'park (epoll, waiters, parked, wakes_before);
                }
                let view = control
                    .request_json("GET", &format!("/jobs/{target}"), "")
                    .unwrap();
                let state = view
                    .get("status")
                    .and_then(Json::as_str)
                    .and_then(scalana_api::JobState::parse);
                if state.is_some_and(|s| s.is_terminal()) {
                    eprintln!(
                        "wait_fanout: filler drained before park saturated \
                         ({parked}/{clients}, attempt {attempt}) — resizing filler"
                    );
                    filler_iters *= 4;
                    break; // drops this attempt's sockets
                }
                assert!(
                    Instant::now() < park_deadline,
                    "only {parked}/{clients} waiters parked — filler undersized or waiters shed"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        panic!("wait_fanout: park never saturated after 4 filler resizes");
    };
    let rss_bytes = vm_rss_bytes();

    // The acceptance point: a fresh submission lands while every waiter
    // is parked (it queues behind the target and is never waited on).
    submit_fanout_job(&mut control, &fanout_source(32, salt()));

    // Observe the fan-out: each readiness event is one waiter seeing
    // the terminal response. Tokens are deleted on arrival so the
    // level-triggered registration fires exactly once per waiter.
    let mut arrivals: Vec<u64> = Vec::with_capacity(clients);
    let mut events = Vec::new();
    let observe_deadline = Instant::now() + Duration::from_secs(120);
    while arrivals.len() < clients {
        assert!(
            Instant::now() < observe_deadline,
            "only {}/{clients} waiters observed completion",
            arrivals.len()
        );
        epoll
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        let now = scalana_obs::now_ns();
        for event in &events {
            if event.readable || event.broken {
                arrivals.push(now);
                epoll
                    .delete(waiters[event.token as usize].as_raw_fd())
                    .unwrap();
            }
        }
    }

    // No waiter may have timed out into a `pending` answer: every one
    // must have been woken by the terminal transition.
    let wakes = scrape_metric_reconnect(&mut control, &addr, "scalana_longpoll_wakes_total ");
    assert!(
        wakes - wakes_before >= clients as u64,
        "only {} of {clients} waiters woke on completion (the rest timed out)",
        wakes - wakes_before
    );
    let _ = client::request(&addr, "POST", "/shutdown", "");

    arrivals.sort_unstable();
    let t0 = arrivals[0];
    let pct = |p: f64| -> u64 {
        let idx = ((clients as f64 * p).ceil() as usize).clamp(1, clients) - 1;
        arrivals[idx] - t0
    };
    WaitFanout {
        clients,
        parked,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        rss_bytes,
    }
}

/// One round: `clients` threads, each submitting `jobs_per_client`
/// unique jobs over [2, 4, 8] on its own keep-alive connection.
/// Returns every job's end-to-end latency.
fn round_of_clients(
    addr: &str,
    clients: usize,
    jobs_per_client: usize,
    unique: &AtomicU64,
) -> Vec<Duration> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut conn = Conn::connect(addr).unwrap();
                    let mut latencies = Vec::with_capacity(jobs_per_client);
                    for _ in 0..jobs_per_client {
                        let source =
                            overlap_program(9_000_000 + unique.fetch_add(1, Ordering::Relaxed));
                        let started = Instant::now();
                        submit_scales(&mut conn, &source, &[2, 4, 8], None);
                        latencies.push(started.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Machine-readable multi-client metrics for the `BENCH_*.json`
/// trajectory (jobs/sec plus p50/p99 end-to-end latency).
#[derive(Debug, Clone)]
pub struct ThroughputMetrics {
    /// Concurrent clients.
    pub clients: usize,
    /// Total jobs submitted.
    pub jobs: usize,
    /// Wall-clock of the whole round, nanoseconds.
    pub elapsed_ns: u64,
    /// Jobs per second over the round.
    pub jobs_per_sec: f64,
    /// Median end-to-end job latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile end-to-end job latency, nanoseconds (with small
    /// sample counts: the worst observed).
    pub p99_ns: u64,
}

/// Run one multi-client round against a fresh daemon and aggregate it.
pub fn measure_clients(clients: usize, jobs_per_client: usize) -> ThroughputMetrics {
    let addr = boot_daemon(4);
    let unique = AtomicU64::new(0);
    // Warm the listener/worker path so thread spawn-up is not billed.
    round_of_clients(&addr, 1, 1, &unique);
    let started = Instant::now();
    let mut latencies = round_of_clients(&addr, clients, jobs_per_client, &unique);
    let elapsed = started.elapsed();
    let _ = client::request(&addr, "POST", "/shutdown", "");

    latencies.sort();
    let jobs = latencies.len();
    let pct = |p: f64| -> u64 {
        let idx = ((jobs as f64 * p).ceil() as usize).clamp(1, jobs) - 1;
        latencies[idx].as_nanos() as u64
    };
    ThroughputMetrics {
        clients,
        jobs,
        elapsed_ns: elapsed.as_nanos() as u64,
        jobs_per_sec: jobs as f64 / elapsed.as_secs_f64(),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    }
}

/// Warm-restart metrics for the `BENCH_*.json` trajectory: a durable
/// store-backed daemon analyses a workload cold, stops, and a
/// successor booted on the same `--store-dir` answers the identical
/// submission entirely from disk.
#[derive(Debug, Clone)]
pub struct WarmRestart {
    /// Cold submit→done latency against a fresh daemon + empty store,
    /// nanoseconds.
    pub cold_ns: u64,
    /// Warm submit→done latency against the restarted daemon,
    /// nanoseconds.
    pub warm_ns: u64,
    /// Entries the successor warm-loaded at boot.
    pub loaded: u64,
    /// Per-scale cache misses the warm resubmission incurred. The
    /// crash-safety contract pins this to exactly 0 — perfgate fails
    /// on any other value, no factor applied.
    pub scale_misses: u64,
}

/// Run the cold → restart → warm cycle once and aggregate it.
pub fn measure_warm_restart() -> WarmRestart {
    let dir =
        std::env::temp_dir().join(format!("scalana-bench-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let boot = || {
        let server = Server::bind(&ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    };
    let body = Json::obj(vec![
        ("app", "CG".into()),
        ("scales", vec![2usize, 4usize].into()),
    ])
    .render();
    let stat = |conn: &mut Conn, key: &str| -> u64 {
        conn.request_json("GET", paths::STATS, "")
            .unwrap()
            .get(key)
            .and_then(Json::as_i64)
            .unwrap_or(0) as u64
    };
    let timed_submit = |conn: &mut Conn| -> u64 {
        let started = Instant::now();
        let ack = conn.request_json("POST", paths::JOBS, &body).unwrap();
        let key = ack.get("job").unwrap().as_str().unwrap().to_string();
        let done = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
        assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
        started.elapsed().as_nanos() as u64
    };

    // Cold: fresh daemon, empty store; graceful shutdown flushes the
    // write-behind queue so the successor has everything.
    let (addr, handle) = boot();
    let mut conn = Conn::connect(&addr).unwrap();
    let cold_ns = timed_submit(&mut conn);
    let _ = conn.request("POST", paths::SHUTDOWN, "");
    let _ = handle.join();

    // Warm: a successor on the same directory must answer the same
    // submission without touching the simulator.
    let (addr, handle) = boot();
    let mut conn = Conn::connect(&addr).unwrap();
    let loaded = stat(&mut conn, "store_loaded");
    let warm_ns = timed_submit(&mut conn);
    let scale_misses = stat(&mut conn, "scale_misses");
    let _ = conn.request("POST", paths::SHUTDOWN, "");
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    WarmRestart {
        cold_ns,
        warm_ns,
        loaded,
        scale_misses,
    }
}

/// Federation metrics for the `BENCH_*.json` trajectory: aggregate
/// jobs/sec of one capacity-constrained daemon vs a three-daemon fleet
/// over the same skewed-popularity workload, plus the deterministic
/// cross-daemon and dead-peer legs.
#[derive(Debug, Clone)]
pub struct FederationMetrics {
    /// Fleet size of the federated round.
    pub daemons: usize,
    /// Jobs per measured round (identical for solo and fleet).
    pub jobs: usize,
    /// Aggregate jobs/sec of the single daemon.
    pub solo_jobs_per_sec: f64,
    /// Aggregate jobs/sec of the fleet.
    pub fleet_jobs_per_sec: f64,
    /// `fleet_jobs_per_sec / solo_jobs_per_sec` — the headline number;
    /// perfgate requires ≥ 1.8.
    pub speedup: f64,
    /// Simulator runs the solo round incurred (cache thrash made
    /// visible).
    pub solo_sim_runs: u64,
    /// Simulator runs the fleet round incurred, summed over daemons.
    pub fleet_sim_runs: u64,
    /// Cross-daemon leg: the resubmitted analysis matched A's byte for
    /// byte. Gated `true`, no factor.
    pub remote_identical: bool,
    /// Cross-daemon leg: per-scale misses on the answering daemon.
    /// Gated exactly 0.
    pub remote_scale_misses: u64,
    /// Cross-daemon leg: simulator runs on the answering daemon.
    /// Gated exactly 0.
    pub remote_sim_runs: u64,
    /// Cross-daemon leg: peer fetches the answering daemon issued
    /// (recorded; how many of B's scales its owners served remotely vs
    /// write-through having landed them locally is placement-dependent).
    pub remote_peer_requests: u64,
    /// Cross-daemon leg: peer fetches answered with a decodable entry.
    pub remote_peer_hits: u64,
    /// Dead-peer leg: requests issued after one fleet member was
    /// killed.
    pub kill_requests: usize,
    /// Dead-peer leg: requests that failed. Gated exactly 0 — a dead
    /// peer degrades throughput, never availability.
    pub kill_failures: usize,
}

/// The skewed-popularity program set: every client cycles the same
/// popular programs, so the fleet-wide per-scale working set
/// (`POPULAR_PROGRAMS × FEDERATION_SCALES.len()` keys) is hot on every
/// daemon.
const POPULAR_PROGRAMS: usize = 48;
/// The 512-rank scale dominates each job's simulation cost (the small
/// scales are protocol-overhead-bound), so cache outcomes — simulate
/// 512 ranks vs one peer round trip — dwarf everything else in the
/// jobs/sec ratio.
const FEDERATION_SCALES: [usize; 3] = [2, 8, 512];
/// Per-daemon profile-cache capacity. Deliberately below the 144-key
/// working set: one daemon thrashes (access order matches insertion
/// order, so FIFO eviction re-simulates the popular set continuously),
/// while three federated daemons hold it comfortably — each retains
/// roughly its owned shard (~48 keys) plus what it simulated at prime
/// time, because remote hits are served by their owners, not admitted
/// locally. The capacity also leaves the cache's internal 16 shards
/// enough per-shard FIFO headroom (ceil(96/16) = 6 entries against an
/// expected 3 owned keys per shard) that hash imbalance does not evict
/// a daemon's own shard. That aggregate-capacity effect, not CPU
/// parallelism, is what the speedup gate measures — it holds on a
/// single-core runner.
const FEDERATION_CACHE_CAPACITY: usize = 96;

fn federation_program(index: usize) -> String {
    overlap_program(12_000_000 + index as u64)
}

/// Boot one capacity-constrained daemon with `peers` as federation
/// seeds; returns its bound address (also its ring identity).
fn boot_federation_daemon(peers: Vec<String>) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 256,
        max_cached_profiles: FEDERATION_CACHE_CAPACITY,
        peers,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Poll every daemon's `GET /v1/peer/ring` until all agree on a
/// `members`-member ring (announce gossip is asynchronous).
fn await_ring(addrs: &[String], members: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    'outer: loop {
        for addr in addrs {
            let (code, body) = client::request(addr, "GET", paths::PEER_RING, "").unwrap();
            assert_eq!(code, 200, "ring endpoint on {addr}: {body}");
            let doc = scalana_service::json::parse(&body).unwrap();
            let seen = doc
                .get("members")
                .and_then(Json::as_array)
                .map_or(0, |m| m.len());
            if seen != members {
                assert!(
                    Instant::now() < deadline,
                    "{addr} still sees {seen}/{members} ring members"
                );
                std::thread::sleep(Duration::from_millis(20));
                continue 'outer;
            }
        }
        return;
    }
}

/// One `/v1/stats` field.
fn fleet_stat(conn: &mut Conn, key: &str) -> u64 {
    conn.request_json("GET", paths::STATS, "")
        .unwrap()
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or(0) as u64
}

/// Poll until a daemon's peer write-behind backlog settles, so
/// cross-daemon reads are deterministic.
fn await_peer_backlog(conn: &mut Conn) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while fleet_stat(conn, "peer_backlog") != 0 {
        assert!(Instant::now() < deadline, "peer backlog never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Submit and wait without panicking; `Err` carries the failure shape
/// (the dead-peer leg counts these — the gate demands zero).
fn try_submit_scales(
    conn: &mut Conn,
    source: &str,
    scales: &[usize],
    abnorm_thd: Option<f64>,
) -> Result<String, String> {
    let mut pairs = vec![
        ("source", Json::from(source)),
        ("name", "federation.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ];
    if let Some(thd) = abnorm_thd {
        pairs.push(("abnorm_thd", thd.into()));
    }
    let ack = conn
        .request_json("POST", "/jobs", &pairs_body(pairs))
        .map_err(|e| format!("submit: {e}"))?;
    let key = ack
        .get("job")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("no job key in {}", ack.render()))?
        .to_string();
    let done = conn
        .wait_for_job(&key, Duration::from_secs(120))
        .map_err(|e| format!("wait: {e}"))?;
    match done.get("status").and_then(Json::as_str) {
        Some("done") => Ok(key),
        other => Err(format!("job ended {other:?}")),
    }
}

/// The `report` + `runs` fragments of a job's result — the analysis
/// itself, excluding `detect_seconds` (wall-clock, legitimately
/// varies between daemons).
fn analysis_fragments(conn: &mut Conn, key: &str) -> (String, String) {
    let doc = conn
        .request_json("GET", &format!("{}/{key}/result", paths::JOBS), "")
        .unwrap();
    (
        doc.get("report").unwrap().render(),
        doc.get("runs").unwrap().render(),
    )
}

/// One measured round: 3 client threads, each pinned to one daemon
/// (round-robin when fewer daemons than clients), cycling the popular
/// program set with a unique detection threshold per submission — a
/// fresh job key every time, so each job exercises the per-scale tier
/// rather than the whole-job result cache.
fn federation_round(addrs: &[String], jobs_per_client: usize, unique: &AtomicU64) -> Duration {
    const CLIENTS: usize = 3;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &addrs[c % addrs.len()];
            scope.spawn(move || {
                let mut conn = Conn::connect(addr).unwrap();
                for j in 0..jobs_per_client {
                    // Stride by the client count so the three clients
                    // partition the program set (client c touches only
                    // indices ≡ c mod 3) and a repeat of the same
                    // program is as far apart in the global access
                    // stream as the set allows — adjacent repeats would
                    // hand the under-provisioned solo daemon FIFO hits
                    // it does not deserve.
                    let program = federation_program((j * CLIENTS + c) % POPULAR_PROGRAMS);
                    let thd = 2.5 + unique.fetch_add(1, Ordering::Relaxed) as f64 * 1e-6;
                    submit_scales(&mut conn, &program, &FEDERATION_SCALES, Some(thd));
                }
            });
        }
    });
    started.elapsed()
}

/// Prime every popular program once (spread round-robin over the
/// daemons) so both rounds start from the same steady state: PSGs
/// discovered, every profile simulated at least once, write-through
/// settled.
fn federation_prime(addrs: &[String]) {
    let mut conns: Vec<Conn> = addrs.iter().map(|a| Conn::connect(a).unwrap()).collect();
    for i in 0..POPULAR_PROGRAMS {
        let conn = &mut conns[i % addrs.len()];
        submit_scales(conn, &federation_program(i), &FEDERATION_SCALES, None);
    }
    for conn in &mut conns {
        await_peer_backlog(conn);
    }
}

/// Simulator runs summed over a set of daemons.
fn fleet_sim_runs(addrs: &[String]) -> u64 {
    addrs
        .iter()
        .map(|a| {
            let mut conn = Conn::connect(a).unwrap();
            scrape_metric(&mut conn, "scalana_sim_runs_total ")
        })
        .sum()
}

/// The federation benchmark: solo round, fleet round, deterministic
/// cross-daemon resubmission, dead-peer survival.
pub fn measure_federation(jobs_per_client: usize) -> FederationMetrics {
    let unique = AtomicU64::new(0);
    let jobs = 3 * jobs_per_client;

    // Solo: one daemon whose profile cache cannot hold the popular
    // working set — FIFO thrash re-simulates it continuously.
    let solo = vec![boot_federation_daemon(Vec::new())];
    federation_prime(&solo);
    let sims_before = fleet_sim_runs(&solo);
    let solo_elapsed = federation_round(&solo, jobs_per_client, &unique);
    let solo_sim_runs = fleet_sim_runs(&solo) - sims_before;
    let _ = client::request(&solo[0], "POST", "/shutdown", "");

    // Fleet: three such daemons federated. Each daemon's cache holds
    // its owned shard; everything else is one peer round trip away.
    let a = boot_federation_daemon(Vec::new());
    let b = boot_federation_daemon(vec![a.clone()]);
    let c = boot_federation_daemon(vec![a.clone(), b.clone()]);
    let fleet = vec![a, b, c];
    await_ring(&fleet, fleet.len());
    federation_prime(&fleet);
    let sims_before = fleet_sim_runs(&fleet);
    let fleet_elapsed = federation_round(&fleet, jobs_per_client, &unique);
    let fleet_sims = fleet_sim_runs(&fleet) - sims_before;

    // Cross-daemon leg: a never-seen program analysed cold on A must be
    // served by B without a single per-scale miss or simulator run,
    // byte-identical — once A's write-through has settled.
    let fresh = overlap_program(13_000_000);
    let mut conn_a = Conn::connect(&fleet[0]).unwrap();
    let mut conn_b = Conn::connect(&fleet[1]).unwrap();
    let key_a = try_submit_scales(&mut conn_a, &fresh, &FEDERATION_SCALES, None).unwrap();
    await_peer_backlog(&mut conn_a);
    let misses_before = fleet_stat(&mut conn_b, "scale_misses");
    let sims_b_before = scrape_metric(&mut conn_b, "scalana_sim_runs_total ");
    let requests_before = fleet_stat(&mut conn_b, "peer_requests");
    let hits_before = fleet_stat(&mut conn_b, "peer_hits");
    let key_b = try_submit_scales(&mut conn_b, &fresh, &FEDERATION_SCALES, None).unwrap();
    assert_eq!(key_a, key_b, "content-addressed job keys must agree");
    let remote_scale_misses = fleet_stat(&mut conn_b, "scale_misses") - misses_before;
    let remote_sim_runs = scrape_metric(&mut conn_b, "scalana_sim_runs_total ") - sims_b_before;
    let remote_peer_requests = fleet_stat(&mut conn_b, "peer_requests") - requests_before;
    let remote_peer_hits = fleet_stat(&mut conn_b, "peer_hits") - hits_before;
    let remote_identical =
        analysis_fragments(&mut conn_a, &key_a) == analysis_fragments(&mut conn_b, &key_b);

    // Dead-peer leg: kill the third daemon mid-fleet and keep
    // submitting to the survivors. Probes to the dead owner fail fast
    // (then its breaker opens) and every job still completes locally.
    let _ = client::request(&fleet[2], "POST", "/shutdown", "");
    let kill_requests = 2 * jobs_per_client.max(2);
    let mut kill_failures = 0usize;
    for i in 0..kill_requests {
        let conn = if i % 2 == 0 { &mut conn_a } else { &mut conn_b };
        let program = federation_program(i % POPULAR_PROGRAMS);
        let thd = 2.5 + unique.fetch_add(1, Ordering::Relaxed) as f64 * 1e-6;
        if try_submit_scales(conn, &program, &FEDERATION_SCALES, Some(thd)).is_err() {
            kill_failures += 1;
        }
    }
    for addr in &fleet[..2] {
        let _ = client::request(addr, "POST", "/shutdown", "");
    }

    let solo_jobs_per_sec = jobs as f64 / solo_elapsed.as_secs_f64();
    let fleet_jobs_per_sec = jobs as f64 / fleet_elapsed.as_secs_f64();
    FederationMetrics {
        daemons: fleet.len(),
        jobs,
        solo_jobs_per_sec,
        fleet_jobs_per_sec,
        speedup: fleet_jobs_per_sec / solo_jobs_per_sec,
        solo_sim_runs,
        fleet_sim_runs: fleet_sims,
        remote_identical,
        remote_scale_misses,
        remote_sim_runs,
        remote_peer_requests,
        remote_peer_hits,
        kill_requests,
        kill_failures,
    }
}
