//! # scalana-bench — harness regenerating every table and figure
//!
//! One binary per experiment of the paper's evaluation (§VI), plus
//! Criterion micro-benchmarks of the analysis machinery itself. Run a
//! harness with e.g.
//!
//! ```sh
//! cargo run --release -p scalana-bench --bin table1_overhead_cg
//! ```
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_overhead_cg`    | Table I: CG overhead/storage across tools |
//! | `fig2_motivating`       | Fig. 2: injected-delay CG and its backtracking |
//! | `fig4_psg_stages`       | Fig. 3/4: local → complete → contracted PSG |
//! | `fig6_ppg`              | Fig. 6: a PPG with performance vectors |
//! | `fig7_problematic`      | Fig. 7: non-scalable & abnormal vertex examples |
//! | `fig8_backtracking`     | Fig. 8: backtracking paths over a PPG |
//! | `table2_psg_stats`      | Table II: PSG sizes for all 11 programs |
//! | `table3_static_overhead`| Table III: static-analysis overhead |
//! | `fig10_runtime_overhead`| Fig. 10: per-app runtime overhead, 3 tools |
//! | `fig11_storage`         | Fig. 11: per-app storage at 128 ranks |
//! | `table4_detection_cost` | Table IV: post-mortem detection cost |
//! | `fig12_zeusmp`          | Fig. 12: Zeus-MP backtracking |
//! | `fig13_zeusmp_overhead` | Fig. 13: Zeus-MP overhead/storage vs tools |
//! | `fig14_15_sst`          | Fig. 14/15: SST diagnosis + PMU data |
//! | `fig16_nekbone`         | Fig. 16: Nekbone diagnosis + PMU data |
//! | `speedup_after_fix`     | §VI-D: before/after-fix speedups |
//! | `ablation`              | design-choice ablations (DESIGN.md §5) |

use scalana_apps::App;
use scalana_mpisim::SimConfig;
use scalana_profile::overhead::ToolKind;
use scalana_profile::{measure_overhead, FlatConfig, OverheadReport, ProfilerConfig, TracerConfig};

pub mod suites;

/// Simulated workloads run ~10⁴× less virtual time than the paper's
/// real executions (milliseconds instead of minutes), so tool costs are
/// rescaled to keep *per-run event and sample counts* comparable:
/// sampling at 20 kHz on a 5 ms run takes about as many samples as
/// 200 Hz over the paper's runs, and fixed per-rank metadata shrinks by
/// the same factor. Cost ratios between tools are preserved.
pub const BENCH_SAMPLING_HZ: f64 = 20_000.0;

/// The three tools of the paper's comparison, with cost models
/// calibrated for the compressed timescale (see [`BENCH_SAMPLING_HZ`]).
pub fn standard_tools() -> Vec<ToolKind> {
    vec![
        ToolKind::Tracer(TracerConfig {
            record_cost: 0.3e-6,
        }),
        ToolKind::Flat(FlatConfig {
            sampling_hz: BENCH_SAMPLING_HZ,
            per_rank_metadata: 2048,
            ..FlatConfig::default()
        }),
        ToolKind::ScalAna(ProfilerConfig {
            sampling_hz: BENCH_SAMPLING_HZ,
            ..ProfilerConfig::default()
        }),
    ]
}

/// Measure one app at one scale under the standard tools.
pub fn measure_app(app: &App, nprocs: usize) -> OverheadReport {
    let psg = scalana_graph::build_psg(&app.program, &scalana_graph::PsgOptions::default());
    let mut config = SimConfig::with_nprocs(nprocs);
    config.machine = std::sync::Arc::new(app.machine.clone());
    measure_overhead(&app.program, &psg, &config, &standard_tools())
        .unwrap_or_else(|e| panic!("{} failed at {nprocs} ranks: {e}", app.name))
}

/// Simple fixed-width table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// ASCII sparkline-ish bar for harness "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["app", "overhead"]);
        t.row(vec!["CG".into(), "3.5%".into()]);
        t.row(vec!["ZEUSMP".into(), "1.9%".into()]);
        let text = t.render();
        assert!(text.contains("app"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn measure_app_produces_three_tools() {
        let app = scalana_apps::cg::build(&scalana_apps::CgOptions {
            na: 10_000,
            iterations: 2,
            delay_rank: None,
        });
        let report = measure_app(&app, 4);
        assert_eq!(report.tools.len(), 3);
        assert!(report.baseline > 0.0);
    }
}
