//! Property-based tests for PSG construction and contraction.

use proptest::prelude::*;
use scalana_graph::{build_psg, Children, PsgOptions, VertexKind};
use scalana_lang::builder::*;
use scalana_lang::Program;

/// Strategy: a random nesting of loops/branches/comps/MPI, deadlock-free
/// by construction (only collectives + self-consistent ring sendrecv).
#[derive(Debug, Clone)]
enum Node {
    Comp(i64),
    Barrier,
    Allreduce,
    Ring,
    Loop(Vec<Node>),
    Branch(Vec<Node>, Vec<Node>),
}

fn arb_node(depth: u32) -> BoxedStrategy<Node> {
    let leaf = prop_oneof![
        (1i64..10_000).prop_map(Node::Comp),
        Just(Node::Barrier),
        Just(Node::Allreduce),
        Just(Node::Ring),
    ];
    leaf.prop_recursive(depth, 48, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Node::Loop),
            (
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner, 0..3)
            )
                .prop_map(|(t, e)| Node::Branch(t, e)),
        ]
    })
    .boxed()
}

fn emit(nodes: &[Node], f: &mut scalana_lang::builder::BlockBuilder<'_>, salt: &mut i64) {
    for node in nodes {
        *salt += 1;
        match node {
            Node::Comp(c) => f.comp_cycles(int(*c)),
            Node::Barrier => f.barrier(),
            Node::Allreduce => f.allreduce(int(8)),
            Node::Ring => f.sendrecv(
                (rank() + int(1)) % nprocs(),
                (rank() + nprocs() - int(1)) % nprocs(),
                int(*salt % 1000),
                int(256),
            ),
            Node::Loop(body) => {
                let body = body.clone();
                let mut inner_salt = *salt;
                f.for_("i", int(0), int(2), |f| emit(&body, f, &mut inner_salt));
                *salt = inner_salt;
            }
            Node::Branch(t, e) => {
                // Condition must be rank-uniform so collectives inside
                // arms stay deadlock-free.
                let (t, e) = (t.clone(), e.clone());
                let mut s1 = *salt;
                let mut s2 = *salt + 500;
                f.if_else(
                    eq(nprocs() % int(2), int(0)),
                    |f| emit(&t, f, &mut s1),
                    |f| emit(&e, f, &mut s2),
                );
                *salt = s2;
            }
        }
    }
}

fn build(nodes: &[Node]) -> Program {
    let mut b = ProgramBuilder::new("prop.mmpi");
    b.function("main", &[], |f| {
        let mut salt = 0;
        emit(nodes, f, &mut salt);
    });
    b.finish().expect("generated program is valid")
}

fn count_kind(psg: &scalana_graph::Psg, pred: impl Fn(&VertexKind) -> bool) -> usize {
    psg.vertices.iter().filter(|v| pred(&v.kind)).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Contraction never loses MPI vertices, never grows the graph, and
    /// the attribution map covers every statement.
    #[test]
    fn contraction_invariants(nodes in proptest::collection::vec(arb_node(3), 1..6),
                              depth in 0u32..5) {
        let program = build(&nodes);
        let raw = build_psg(&program, &PsgOptions { contract: false, ..Default::default() });
        let contracted =
            build_psg(&program, &PsgOptions { contract: true, max_loop_depth: depth });
        prop_assert_eq!(
            count_kind(&raw, |k| matches!(k, VertexKind::Mpi(_))),
            count_kind(&contracted, |k| matches!(k, VertexKind::Mpi(_)))
        );
        prop_assert!(contracted.vertex_count() <= raw.vertex_count());
        // Every statement attributes to a live vertex in both graphs.
        program.for_each_stmt(|stmt| {
            for psg in [&raw, &contracted] {
                if let Some(v) = psg.vertex_of(psg.root_ctx(), stmt.id) {
                    assert!((v as usize) < psg.vertex_count());
                }
            }
        });
    }

    /// Tree integrity: parents and children agree, ids are table
    /// indices, the root is unique.
    #[test]
    fn tree_integrity(nodes in proptest::collection::vec(arb_node(3), 1..6)) {
        let program = build(&nodes);
        let psg = build_psg(&program, &PsgOptions::default());
        let mut roots = 0;
        for (i, v) in psg.vertices.iter().enumerate() {
            prop_assert_eq!(v.id as usize, i);
            if v.parent.is_none() {
                roots += 1;
            }
            for child in v.children.all() {
                prop_assert_eq!(psg.vertex(child).parent, Some(v.id));
            }
        }
        prop_assert_eq!(roots, 1);
        // Preorder reaches every vertex exactly once.
        let order = psg.iter_preorder();
        prop_assert_eq!(order.len(), psg.vertex_count());
    }

    /// Structural navigation is self-consistent: seq_pred of the n-th
    /// child is the (n-1)-th, loop_end is the last child.
    #[test]
    fn navigation_consistency(nodes in proptest::collection::vec(arb_node(3), 1..6)) {
        let program = build(&nodes);
        let psg = build_psg(&program, &PsgOptions::default());
        for v in &psg.vertices {
            if let Children::Seq(kids) = &v.children {
                for pair in kids.windows(2) {
                    prop_assert_eq!(psg.seq_pred(pair[1]), Some(pair[0]));
                }
                if let Some(&first) = kids.first() {
                    prop_assert_eq!(psg.seq_pred(first), None);
                }
                if v.kind == VertexKind::Loop {
                    prop_assert_eq!(psg.loop_end(v.id), kids.last().copied());
                }
            }
        }
    }

    /// Depth bound: MPI-free loops deeper than MaxLoopDepth never
    /// survive contraction.
    #[test]
    fn max_loop_depth_is_respected(nodes in proptest::collection::vec(arb_node(3), 1..5),
                                   depth in 0u32..4) {
        let program = build(&nodes);
        let psg = build_psg(&program, &PsgOptions { contract: true, max_loop_depth: depth });
        for v in &psg.vertices {
            if v.kind == VertexKind::Loop && v.loop_depth + 1 > depth {
                // Such a loop may only survive because its subtree
                // contains MPI.
                let mut stack = v.children.all();
                let mut has_mpi = false;
                while let Some(c) = stack.pop() {
                    let cv = psg.vertex(c);
                    if cv.is_mpi() || cv.kind == VertexKind::CallSite {
                        has_mpi = true;
                        break;
                    }
                    stack.extend(cv.children.all());
                }
                prop_assert!(
                    has_mpi,
                    "MPI-free loop at depth {} survived MaxLoopDepth {}",
                    v.loop_depth,
                    depth
                );
            }
        }
    }
}
