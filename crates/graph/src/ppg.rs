//! Program Performance Graph (paper §III-C).
//!
//! The PPG replicates the per-process PSG across all ranks, attributes a
//! performance vector to every `(vertex, rank)` pair, and adds the
//! inter-process communication-dependence edges collected at runtime.
//! Point-to-point edges connect matched send/receive vertices; collective
//! operations associate all participating ranks.

use crate::psg::Psg;
use crate::vertex::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-`(vertex, rank)` performance vector: execution time plus the
/// simulated PMU counters the paper records via PAPI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VertexPerf {
    /// Virtual seconds attributed to this vertex.
    pub time: f64,
    /// Number of executions observed.
    pub count: u64,
    /// Instructions retired (`PAPI_TOT_INS`).
    pub tot_ins: f64,
    /// Cycles (`PAPI_TOT_CYC`).
    pub tot_cyc: f64,
    /// Load/store instructions (`PAPI_LST_INS`).
    pub lst_ins: f64,
    /// L2 cache misses.
    pub l2_miss: f64,
    /// Branch mispredictions.
    pub br_miss: f64,
    /// Of `time`, seconds spent blocked waiting on other ranks
    /// (meaningful for MPI vertices).
    pub wait_time: f64,
    /// Bytes sent or received at this vertex.
    pub bytes: f64,
}

impl VertexPerf {
    /// Accumulate another sample into this vector.
    pub fn merge(&mut self, other: &VertexPerf) {
        self.time += other.time;
        self.count += other.count;
        self.tot_ins += other.tot_ins;
        self.tot_cyc += other.tot_cyc;
        self.lst_ins += other.lst_ins;
        self.l2_miss += other.l2_miss;
        self.br_miss += other.br_miss;
        self.wait_time += other.wait_time;
        self.bytes += other.bytes;
    }
}

/// One aggregated inter-process communication-dependence edge:
/// messages from `(src_rank, src_vertex)` consumed at
/// `(dst_rank, dst_vertex)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommDep {
    /// Sending rank.
    pub src_rank: usize,
    /// Send-side vertex (e.g. `MPI_Send`, `MPI_Isend`, `MPI_Sendrecv`).
    pub src_vertex: VertexId,
    /// Receiving rank.
    pub dst_rank: usize,
    /// Receive-side vertex where the dependence completes (`MPI_Recv`,
    /// `MPI_Wait`, `MPI_Waitall`, `MPI_Sendrecv`).
    pub dst_vertex: VertexId,
    /// Matched messages aggregated into this edge.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Seconds the destination spent blocked on messages of this edge —
    /// the "waiting event" signal Algorithm 1 uses to prune edges.
    pub wait_time: f64,
}

/// The Program Performance Graph for one run (one process count).
#[derive(Debug)]
pub struct Ppg {
    /// The shared per-process structure.
    pub psg: Arc<Psg>,
    /// Number of ranks in this run.
    pub nprocs: usize,
    /// Per-rank end-to-end runtime (virtual seconds).
    pub rank_elapsed: Vec<f64>,
    /// Vertex-major performance matrix: `perf[v * nprocs + rank]`.
    perf: Vec<VertexPerf>,
    /// Aggregated communication-dependence edges.
    pub comm: Vec<CommDep>,
    /// Reverse index: edges arriving at `(dst_rank, dst_vertex)`.
    comm_in: HashMap<(usize, VertexId), Vec<usize>>,
}

impl Ppg {
    /// Create an empty PPG over `nprocs` replicas of `psg`.
    pub fn new(psg: Arc<Psg>, nprocs: usize) -> Ppg {
        let n = psg.vertex_count() * nprocs;
        Ppg {
            psg,
            nprocs,
            rank_elapsed: vec![0.0; nprocs],
            perf: vec![VertexPerf::default(); n],
            comm: Vec::new(),
            comm_in: HashMap::new(),
        }
    }

    fn idx(&self, v: VertexId, rank: usize) -> usize {
        debug_assert!(rank < self.nprocs);
        v as usize * self.nprocs + rank
    }

    /// Performance vector of `(vertex, rank)`.
    pub fn perf(&self, v: VertexId, rank: usize) -> &VertexPerf {
        &self.perf[self.idx(v, rank)]
    }

    /// Mutable performance vector of `(vertex, rank)`.
    pub fn perf_mut(&mut self, v: VertexId, rank: usize) -> &mut VertexPerf {
        let i = self.idx(v, rank);
        &mut self.perf[i]
    }

    /// If the PSG grew after this PPG was allocated (late indirect-call
    /// resolution), extend the matrix so new vertices are addressable.
    pub fn sync_with_psg(&mut self) {
        let needed = self.psg.vertex_count() * self.nprocs;
        if needed > self.perf.len() {
            self.perf.resize(needed, VertexPerf::default());
        }
    }

    /// Record one aggregated communication-dependence edge.
    pub fn add_comm(&mut self, dep: CommDep) {
        let key = (dep.dst_rank, dep.dst_vertex);
        let idx = self.comm.len();
        self.comm.push(dep);
        self.comm_in.entry(key).or_default().push(idx);
    }

    /// Dependence edges arriving at `(rank, vertex)` — the inter-process
    /// edges backtracking follows from an MPI vertex.
    pub fn deps_into(&self, rank: usize, v: VertexId) -> Vec<&CommDep> {
        self.comm_in
            .get(&(rank, v))
            .map(|idxs| idxs.iter().map(|&i| &self.comm[i]).collect())
            .unwrap_or_default()
    }

    /// Execution time of one vertex across all ranks.
    pub fn times_across_ranks(&self, v: VertexId) -> Vec<f64> {
        (0..self.nprocs).map(|r| self.perf(v, r).time).collect()
    }

    /// Mean execution time of a vertex across ranks.
    pub fn mean_time(&self, v: VertexId) -> f64 {
        if self.nprocs == 0 {
            return 0.0;
        }
        self.times_across_ranks(v).iter().sum::<f64>() / self.nprocs as f64
    }

    /// End-to-end runtime of the run: the slowest rank.
    pub fn total_time(&self) -> f64 {
        self.rank_elapsed.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of a vertex's time over ranks divided by total aggregate time
    /// — used to rank problematic vertices by impact.
    pub fn time_fraction(&self, v: VertexId) -> f64 {
        let total: f64 = self.rank_elapsed.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.times_across_ranks(v).iter().sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psg::{build, PsgOptions};
    use scalana_lang::parse_program;

    fn test_ppg(nprocs: usize) -> Ppg {
        let src = "fn main() { comp(cycles = 100); send(dst = (rank + 1) % nprocs, \
                    tag = 0, bytes = 64); recv(src = (rank + nprocs - 1) % nprocs, tag = 0); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = Arc::new(build(&program, &PsgOptions::default()));
        Ppg::new(psg, nprocs)
    }

    #[test]
    fn perf_matrix_addressing() {
        let mut ppg = test_ppg(4);
        ppg.perf_mut(1, 2).time = 3.5;
        ppg.perf_mut(1, 2).count = 2;
        assert_eq!(ppg.perf(1, 2).time, 3.5);
        assert_eq!(ppg.perf(1, 3).time, 0.0);
        assert_eq!(ppg.times_across_ranks(1), vec![0.0, 0.0, 3.5, 0.0]);
        assert!((ppg.mean_time(1) - 3.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn comm_edges_indexed_by_destination() {
        let mut ppg = test_ppg(4);
        ppg.add_comm(CommDep {
            src_rank: 0,
            src_vertex: 2,
            dst_rank: 1,
            dst_vertex: 3,
            count: 5,
            bytes: 320,
            wait_time: 0.25,
        });
        ppg.add_comm(CommDep {
            src_rank: 2,
            src_vertex: 2,
            dst_rank: 1,
            dst_vertex: 3,
            count: 1,
            bytes: 64,
            wait_time: 0.0,
        });
        let deps = ppg.deps_into(1, 3);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].src_rank, 0);
        assert!(ppg.deps_into(0, 3).is_empty());
    }

    #[test]
    fn total_time_is_slowest_rank() {
        let mut ppg = test_ppg(3);
        ppg.rank_elapsed = vec![1.0, 4.0, 2.0];
        assert_eq!(ppg.total_time(), 4.0);
    }

    #[test]
    fn time_fraction_normalizes_by_aggregate() {
        let mut ppg = test_ppg(2);
        ppg.rank_elapsed = vec![2.0, 2.0];
        ppg.perf_mut(0, 0).time = 1.0;
        ppg.perf_mut(0, 1).time = 1.0;
        assert!((ppg.time_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = VertexPerf {
            time: 1.0,
            count: 1,
            tot_ins: 10.0,
            ..Default::default()
        };
        let b = VertexPerf {
            time: 0.5,
            count: 2,
            tot_ins: 5.0,
            wait_time: 0.25,
            bytes: 64.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.time, 1.5);
        assert_eq!(a.count, 3);
        assert_eq!(a.tot_ins, 15.0);
        assert_eq!(a.wait_time, 0.25);
        assert_eq!(a.bytes, 64.0);
    }

    #[test]
    fn sync_with_psg_grows_matrix() {
        let mut ppg = test_ppg(2);
        let before = ppg.psg.vertex_count();
        // Simulate PSG growth by checking resize is a no-op at same size
        ppg.sync_with_psg();
        assert_eq!(ppg.psg.vertex_count(), before);
    }
}
