//! Graphviz DOT export for PSGs (debugging aid and the Fig. 4 harness).

use crate::intra::{LocalChildren, LocalPsg};
use crate::psg::Psg;
use crate::vertex::Children;
use std::fmt::Write;

/// Render the contracted PSG as a DOT digraph: structural (tree) edges
/// solid, execution-order edges dashed.
pub fn psg_to_dot(psg: &Psg) -> String {
    let mut out = String::from("digraph PSG {\n  node [shape=box, fontsize=10];\n");
    for v in &psg.vertices {
        let _ = writeln!(
            out,
            "  v{} [label=\"{} @{}\"];",
            v.id,
            v.kind.label(),
            v.span.file_line()
        );
    }
    for v in &psg.vertices {
        let kids = match &v.children {
            Children::Seq(kids) => kids.clone(),
            Children::Arms { then_arm, else_arm } => {
                let mut all = then_arm.clone();
                all.extend_from_slice(else_arm);
                all
            }
        };
        for k in &kids {
            let _ = writeln!(out, "  v{} -> v{};", v.id, k);
        }
        // Execution-order edges between consecutive siblings.
        for pair in kids.windows(2) {
            let _ = writeln!(
                out,
                "  v{} -> v{} [style=dashed, constraint=false];",
                pair[0], pair[1]
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Render a local (per-function) PSG as DOT, for the Fig. 4(a) stage.
pub fn local_to_dot(psg: &LocalPsg) -> String {
    let mut out = format!(
        "digraph local_{} {{\n  node [shape=box, fontsize=10];\n",
        psg.func
    );
    for v in &psg.vertices {
        let label = match &v.kind {
            crate::intra::LocalKind::Entry => format!("fn {}", psg.func),
            crate::intra::LocalKind::Loop => "Loop".to_string(),
            crate::intra::LocalKind::Branch => "Branch".to_string(),
            crate::intra::LocalKind::CompStmt => "Comp".to_string(),
            crate::intra::LocalKind::Mpi(k) => k.mpi_name().to_string(),
            crate::intra::LocalKind::DirectCall { callee } => format!("call {callee}"),
            crate::intra::LocalKind::IndirectCall => "call (indirect)".to_string(),
        };
        let _ = writeln!(
            out,
            "  v{} [label=\"{} @{}\"];",
            v.id,
            label,
            v.span.file_line()
        );
    }
    for v in &psg.vertices {
        let kids = match &v.children {
            LocalChildren::Seq(kids) => kids.clone(),
            LocalChildren::Arms { then_arm, else_arm } => {
                let mut all = then_arm.clone();
                all.extend_from_slice(else_arm);
                all
            }
        };
        for k in kids {
            let _ = writeln!(out, "  v{} -> v{};", v.id, k);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::intra::build_local;
    use crate::psg::{build, PsgOptions};
    use scalana_lang::parse_program;

    #[test]
    fn dot_outputs_are_well_formed() {
        let src = "fn main() { for i in 0 .. 2 { if rank == 0 { barrier(); } } }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build(&program, &PsgOptions::default());
        let dot = super::psg_to_dot(&psg);
        assert!(dot.starts_with("digraph PSG {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("MPI_Barrier"));

        let local = build_local(program.function("main").unwrap());
        let ldot = super::local_to_dot(&local);
        assert!(ldot.contains("digraph local_main"));
        assert!(ldot.contains("Loop"));
    }
}
