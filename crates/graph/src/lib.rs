//! # scalana-graph — Program Structure Graph and Program Performance Graph
//!
//! Implements the paper's graph-generation module (§III):
//!
//! - **Intra-procedural analysis** ([`intra`]): walk each function's AST
//!   (the stand-in for LLVM IR) and build a *local PSG* whose vertices are
//!   `Loop`, `Branch`, `Comp`, MPI invocations, and call sites.
//! - **Inter-procedural analysis** ([`inter`]): traverse the program call
//!   graph top-down from `main`, replacing every direct call with an
//!   instantiated copy of the callee's local PSG. Recursive calls form
//!   cycles (a `RecursiveCall` vertex pointing back at the active
//!   expansion); indirect calls stay as `CallSite` placeholders that the
//!   runtime resolves (paper §III-B3).
//! - **Graph contraction** ([`contract`]): preserve all MPI vertices and
//!   the control structures containing them, merge MPI-free computation
//!   into `Comp` vertices, and bound MPI-free loop nesting with
//!   `MaxLoopDepth` (paper Fig. 4).
//! - **PPG construction** ([`ppg`]): replicate the per-process PSG across
//!   ranks, attach per-vertex performance vectors, and add inter-process
//!   communication-dependence edges collected at runtime (paper §III-C).
//!
//! The contracted PSG also carries the *attribution map* used at runtime:
//! interned calling contexts plus a `(context, statement) → vertex`
//! mapping, which is how profiling data lands on the right vertex — the
//! role call-stack unwinding plays in the paper's PAPI-based profiler.

pub mod contract;
pub mod dot;
pub mod index;
pub mod inter;
pub mod intra;
pub mod ppg;
pub mod psg;
pub mod stats;
pub mod vertex;

pub use index::AttrIndex;
pub use ppg::{CommDep, Ppg, VertexPerf};
pub use psg::{CtxId, Psg, PsgOptions};
pub use stats::PsgStats;
pub use vertex::{Children, MpiKind, Vertex, VertexId, VertexKind};

/// Build the contracted PSG (plus pre-contraction statistics) for a
/// checked program. This is the `ScalAna-static` entry point.
pub fn build_psg(program: &scalana_lang::Program, opts: &PsgOptions) -> Psg {
    psg::build(program, opts)
}
