//! Dense attribution index for the simulator's inner loop.
//!
//! [`crate::psg::Psg`] keys its attribution map and call transitions by
//! `(CtxId, NodeId)` in hash maps — fine for analysis passes, but the
//! simulator consults both once per *executed statement*, which makes
//! hashing the single hottest operation of a run. Both id spaces are
//! dense (contexts are interned `0..ctx_count`, statement ids are
//! `0..next_node_id`), so the maps flatten into two `ctx × stmt` arrays
//! and each lookup becomes two adds and a load.
//!
//! The flattened tables cost `ctx_count × next_node_id` slots even
//! though each context only owns one function's statements, so builds
//! that would exceed `DENSE_SLOT_LIMIT` (pathologically large
//! submitted programs) fall back to a hashed snapshot instead of
//! allocating gigabytes.
//!
//! The index is a snapshot: build it after the PSG stops mutating (for
//! profiled runs, after indirect-call discovery). Out-of-range ids
//! resolve to `None`, matching the hash maps' behavior for unknown keys.

use crate::psg::{CtxId, Psg};
use crate::vertex::VertexId;
use scalana_lang::ast::NodeId;
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

/// Above this many `ctx × stmt` slots (× 2 tables × 4 bytes ≈ 32 MiB)
/// the dense layout stops paying for itself and the snapshot stays
/// hashed. Every paper workload is orders of magnitude below this.
const DENSE_SLOT_LIMIT: usize = 1 << 22;

/// Flattened `(context, statement) → vertex / callee-context` tables.
#[derive(Debug)]
pub struct AttrIndex {
    tables: Tables,
}

#[derive(Debug)]
enum Tables {
    Dense {
        ctxs: usize,
        stmts: usize,
        vertex: Vec<u32>,
        transition: Vec<u32>,
    },
    /// Fallback for degenerate `ctx × stmt` volumes: same snapshot
    /// semantics, hash-map storage.
    Sparse {
        vertex: HashMap<(CtxId, NodeId), VertexId>,
        transition: HashMap<(CtxId, NodeId), CtxId>,
    },
}

impl AttrIndex {
    /// Snapshot `psg`'s attribution map and direct-call transitions for
    /// a program whose statement ids are `0..next_node_id`.
    pub fn build(psg: &Psg, next_node_id: NodeId) -> AttrIndex {
        let ctxs = psg.ctx_count();
        let stmts = next_node_id as usize;
        if ctxs.checked_mul(stmts).is_none_or(|n| n > DENSE_SLOT_LIMIT) {
            return AttrIndex {
                tables: Tables::Sparse {
                    vertex: psg.attribution_entries().map(|(k, v)| (*k, *v)).collect(),
                    transition: psg.transition_entries().map(|(k, v)| (*k, *v)).collect(),
                },
            };
        }
        let mut vertex = vec![NONE; ctxs * stmts];
        let mut transition = vec![NONE; ctxs * stmts];
        for (&(ctx, stmt), &v) in psg.attribution_entries() {
            debug_assert_ne!(v, NONE, "vertex id collides with the sentinel");
            if (ctx as usize) < ctxs && (stmt as usize) < stmts {
                vertex[ctx as usize * stmts + stmt as usize] = v;
            }
        }
        for (&(ctx, stmt), &c) in psg.transition_entries() {
            debug_assert_ne!(c, NONE, "context id collides with the sentinel");
            if (ctx as usize) < ctxs && (stmt as usize) < stmts {
                transition[ctx as usize * stmts + stmt as usize] = c;
            }
        }
        AttrIndex {
            tables: Tables::Dense {
                ctxs,
                stmts,
                vertex,
                transition,
            },
        }
    }

    /// Attribution: the vertex owning `stmt` in `ctx`. Equivalent to
    /// [`Psg::vertex_of`] on the snapshotted graph.
    #[inline]
    pub fn vertex_of(&self, ctx: CtxId, stmt: NodeId) -> Option<VertexId> {
        match &self.tables {
            Tables::Dense {
                ctxs,
                stmts,
                vertex,
                ..
            } => {
                let (c, s) = (ctx as usize, stmt as usize);
                if c >= *ctxs || s >= *stmts {
                    return None;
                }
                match vertex[c * stmts + s] {
                    NONE => None,
                    v => Some(v),
                }
            }
            Tables::Sparse { vertex, .. } => vertex.get(&(ctx, stmt)).copied(),
        }
    }

    /// Context transition for a direct call statement. Equivalent to
    /// [`Psg::enter_call`] on the snapshotted graph.
    #[inline]
    pub fn enter_call(&self, ctx: CtxId, call_stmt: NodeId) -> Option<CtxId> {
        match &self.tables {
            Tables::Dense {
                ctxs,
                stmts,
                transition,
                ..
            } => {
                let (c, s) = (ctx as usize, call_stmt as usize);
                if c >= *ctxs || s >= *stmts {
                    return None;
                }
                match transition[c * stmts + s] {
                    NONE => None,
                    t => Some(t),
                }
            }
            Tables::Sparse { transition, .. } => transition.get(&(ctx, call_stmt)).copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psg::PsgOptions;
    use scalana_lang::parse_program;

    const SRC: &str = r#"
        fn main() {
            for i in 0 .. 3 { work(i); }
            barrier();
        }
        fn work(n) { comp(cycles = n * 100); allreduce(bytes = 8); }
    "#;

    #[test]
    fn index_agrees_with_hash_maps_everywhere() {
        let program = parse_program("t.mmpi", SRC).unwrap();
        let psg = crate::build_psg(&program, &PsgOptions::default());
        let idx = AttrIndex::build(&psg, program.next_node_id);
        assert!(matches!(idx.tables, Tables::Dense { .. }));
        for ctx in 0..psg.ctx_count() as CtxId {
            for stmt in 0..program.next_node_id {
                assert_eq!(idx.vertex_of(ctx, stmt), psg.vertex_of(ctx, stmt));
                assert_eq!(idx.enter_call(ctx, stmt), psg.enter_call(ctx, stmt));
            }
        }
    }

    #[test]
    fn sparse_fallback_agrees_with_hash_maps_everywhere() {
        // Claiming a statement-id space past the dense limit must not
        // allocate the flat tables, and lookups stay equivalent.
        let program = parse_program("t.mmpi", SRC).unwrap();
        let psg = crate::build_psg(&program, &PsgOptions::default());
        let idx = AttrIndex::build(&psg, u32::MAX);
        assert!(matches!(idx.tables, Tables::Sparse { .. }));
        for ctx in 0..psg.ctx_count() as CtxId {
            for stmt in 0..program.next_node_id {
                assert_eq!(idx.vertex_of(ctx, stmt), psg.vertex_of(ctx, stmt));
                assert_eq!(idx.enter_call(ctx, stmt), psg.enter_call(ctx, stmt));
            }
        }
    }

    #[test]
    fn out_of_range_ids_resolve_to_none() {
        let program = parse_program("t.mmpi", "fn main() { barrier(); }").unwrap();
        let psg = crate::build_psg(&program, &PsgOptions::default());
        let idx = AttrIndex::build(&psg, program.next_node_id);
        assert_eq!(idx.vertex_of(999, 0), None);
        assert_eq!(idx.vertex_of(0, 999), None);
        assert_eq!(idx.enter_call(999, 999), None);
    }
}
