//! The contracted Program Structure Graph and its runtime interface.
//!
//! [`Psg`] is the artifact of `ScalAna-static`: the contracted vertex
//! tree, the calling-context table, and the `(context, statement) →
//! vertex` attribution map the simulator uses to land profiling data on
//! vertices. It also retains the per-function local PSGs so indirect
//! calls observed at runtime can be expanded post-hoc
//! ([`Psg::resolve_indirect`], paper §III-B3).

use crate::contract::contract;
use crate::inter::{mpi_closure, CtxNode, Expander, ROOT_CTX};
use crate::intra::{build_local, LocalPsg};
use crate::stats::PsgStats;
use crate::vertex::{Children, Vertex, VertexId, VertexKind};
use scalana_lang::ast::NodeId;
use scalana_lang::Program;
use std::collections::HashMap;

pub use crate::inter::CtxId;

/// Static-analysis knobs (paper §V: user-adjustable parameters).
#[derive(Debug, Clone)]
pub struct PsgOptions {
    /// The paper's `MaxLoopDepth`: MPI-free loops nested deeper than this
    /// are folded into their parent `Comp`. Paper default: 10.
    pub max_loop_depth: u32,
    /// Disable to skip contraction entirely (ablation; `#VBC == #VAC`).
    pub contract: bool,
}

impl Default for PsgOptions {
    fn default() -> Self {
        PsgOptions {
            max_loop_depth: 10,
            contract: true,
        }
    }
}

/// The contracted whole-program structure graph.
#[derive(Debug)]
pub struct Psg {
    /// Contracted vertex table; `vertices[i].id == i`.
    pub vertices: Vec<Vertex>,
    /// The root vertex.
    pub root: VertexId,
    /// Vertex-count statistics (Table II).
    pub stats: PsgStats,
    contexts: Vec<CtxNode>,
    /// Direct-call context transitions.
    transitions: HashMap<(CtxId, NodeId), CtxId>,
    /// Indirect-call transitions discovered at runtime.
    indirect: HashMap<(CtxId, NodeId), Vec<(String, CtxId)>>,
    /// Attribution map.
    stmt_map: HashMap<(CtxId, NodeId), VertexId>,
    /// Per-function local PSGs (kept for indirect-call expansion).
    locals: HashMap<String, LocalPsg>,
    /// Transitive does-MPI flags per function.
    mpi_flags: HashMap<String, bool>,
    opts: PsgOptions,
}

/// Build the PSG for a checked program.
pub fn build(program: &Program, opts: &PsgOptions) -> Psg {
    let locals: HashMap<String, LocalPsg> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), build_local(f)))
        .collect();
    let mpi_flags = mpi_closure(&locals);
    let mut contexts = Vec::new();
    let expansion = Expander::expand_program(&locals, &mut contexts);
    let vbc = expansion.vertices.len();

    let (vertices, root, stmt_map) = if opts.contract {
        let contracted = contract(
            &expansion.vertices,
            expansion.root,
            &mpi_flags,
            opts.max_loop_depth,
            0,
        );
        let stmt_map = expansion
            .stmt_map
            .iter()
            .map(|(key, old)| (*key, contracted.map[old]))
            .collect();
        (contracted.vertices, contracted.root, stmt_map)
    } else {
        (expansion.vertices, expansion.root, expansion.stmt_map)
    };

    let stats = PsgStats::compute(vbc, &vertices);
    Psg {
        vertices,
        root,
        stats,
        contexts,
        transitions: expansion.transitions,
        indirect: HashMap::new(),
        stmt_map,
        locals,
        mpi_flags,
        opts: opts.clone(),
    }
}

impl Psg {
    /// Vertex lookup.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id as usize]
    }

    /// Number of vertices after contraction.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// `main`'s calling context.
    pub fn root_ctx(&self) -> CtxId {
        ROOT_CTX
    }

    /// Function executing in a context.
    pub fn ctx_func(&self, ctx: CtxId) -> &str {
        &self.contexts[ctx as usize].func
    }

    /// Parent context.
    pub fn ctx_parent(&self, ctx: CtxId) -> Option<CtxId> {
        self.contexts[ctx as usize].parent
    }

    /// Context transition for a *direct* call statement. Recursive calls
    /// transition back to the active frame's context.
    pub fn enter_call(&self, ctx: CtxId, call_stmt: NodeId) -> Option<CtxId> {
        self.transitions.get(&(ctx, call_stmt)).copied()
    }

    /// Context transition for an *indirect* call, if this target has been
    /// resolved already.
    pub fn enter_indirect(&self, ctx: CtxId, stmt: NodeId, callee: &str) -> Option<CtxId> {
        self.indirect
            .get(&(ctx, stmt))?
            .iter()
            .find(|(name, _)| name == callee)
            .map(|(_, c)| *c)
    }

    /// Attribution: the vertex owning `stmt` in `ctx`.
    pub fn vertex_of(&self, ctx: CtxId, stmt: NodeId) -> Option<VertexId> {
        self.stmt_map.get(&(ctx, stmt)).copied()
    }

    /// Every `(context, statement) → vertex` attribution entry (for
    /// building dense snapshots such as [`crate::index::AttrIndex`]).
    pub fn attribution_entries(&self) -> impl Iterator<Item = (&(CtxId, NodeId), &VertexId)> {
        self.stmt_map.iter()
    }

    /// Every direct-call `(context, statement) → callee context` entry.
    pub fn transition_entries(&self) -> impl Iterator<Item = (&(CtxId, NodeId), &CtxId)> {
        self.transitions.iter()
    }

    /// Resolve an indirect call observed at runtime: expand (and
    /// contract) the callee under the `CallSite` vertex and register the
    /// context transition. Idempotent per `(ctx, stmt, callee)`.
    ///
    /// Returns the callee context, or `None` when the callee does not
    /// exist or `(ctx, stmt)` is not a known call site.
    pub fn resolve_indirect(&mut self, ctx: CtxId, stmt: NodeId, callee: &str) -> Option<CtxId> {
        if let Some(existing) = self.enter_indirect(ctx, stmt, callee) {
            return Some(existing);
        }
        if !self.locals.contains_key(callee) {
            return None;
        }
        let callsite = self.vertex_of(ctx, stmt)?;
        if self.vertex(callsite).kind != VertexKind::CallSite {
            return None;
        }

        // Dynamic recursion through a function pointer: reuse the active
        // ancestor context, exactly like the static recursion rule.
        let mut cursor = Some(ctx);
        while let Some(c) = cursor {
            if self.ctx_func(c) == callee {
                self.indirect
                    .entry((ctx, stmt))
                    .or_default()
                    .push((callee.to_string(), c));
                return Some(c);
            }
            cursor = self.ctx_parent(c);
        }

        let new_ctx = self.contexts.len() as CtxId;
        self.contexts.push(CtxNode {
            parent: Some(ctx),
            call_site: Some(stmt),
            func: callee.to_string(),
        });
        let base_depth = self.vertex(callsite).loop_depth;
        let expansion = Expander::expand_function_region(
            &self.locals,
            &mut self.contexts,
            callee,
            new_ctx,
            base_depth,
        );

        let base = self.vertices.len() as VertexId;
        let (mut region, region_root, region_map) = if self.opts.contract {
            let c = contract(
                &expansion.vertices,
                expansion.root,
                &self.mpi_flags,
                self.opts.max_loop_depth,
                base,
            );
            (c.vertices, c.root, c.map)
        } else {
            // Raw splice: offset ids without contraction.
            let mut vs = expansion.vertices.clone();
            let mut map = HashMap::with_capacity(vs.len());
            for v in &mut vs {
                map.insert(v.id, v.id + base);
                v.id += base;
                if let Some(p) = &mut v.parent {
                    *p += base;
                }
                match &mut v.children {
                    Children::Seq(kids) => kids.iter_mut().for_each(|k| *k += base),
                    Children::Arms { then_arm, else_arm } => {
                        then_arm.iter_mut().for_each(|k| *k += base);
                        else_arm.iter_mut().for_each(|k| *k += base);
                    }
                }
                if let VertexKind::RecursiveCall(t) = &mut v.kind {
                    *t += base;
                }
            }
            (vs, expansion.root + base, map)
        };

        // The region's synthetic root becomes a pass-through Comp hanging
        // off the CallSite vertex.
        let root_idx = (region_root - base) as usize;
        region[root_idx].kind = VertexKind::Comp;
        region[root_idx].stmt_ids.clear();
        region[root_idx].parent = Some(callsite);
        self.vertices.extend(region);
        self.vertices[callsite as usize].children = Children::Seq(vec![region_root]);

        for (key, old) in &expansion.stmt_map {
            self.stmt_map.insert(*key, region_map[old]);
        }
        for (key, target) in &expansion.transitions {
            self.transitions.insert(*key, *target);
        }
        self.indirect
            .entry((ctx, stmt))
            .or_default()
            .push((callee.to_string(), new_ctx));
        self.stats = PsgStats::compute(self.stats.vbc + expansion.vertices.len(), &self.vertices);
        Some(new_ctx)
    }

    // ----- structural queries used by backtracking (Algorithm 1) -----

    /// Structural parent.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.vertex(v).parent
    }

    /// Previous sibling in execution order (staying inside a branch arm).
    /// `None` when `v` is the first vertex of its block.
    pub fn seq_pred(&self, v: VertexId) -> Option<VertexId> {
        let parent = self.vertex(v).parent?;
        match &self.vertex(parent).children {
            Children::Seq(kids) => prev_in(kids, v),
            Children::Arms { then_arm, else_arm } => {
                prev_in(then_arm, v).or_else(|| prev_in(else_arm, v))
            }
        }
    }

    /// The end (last) vertex of a loop body, i.e. the target of the
    /// loop's control-dependence edge during backtracking.
    pub fn loop_end(&self, v: VertexId) -> Option<VertexId> {
        match &self.vertex(v).children {
            Children::Seq(kids) => kids.last().copied(),
            Children::Arms { .. } => None,
        }
    }

    /// The end vertices of a branch's arms (one per non-empty arm).
    pub fn branch_arm_ends(&self, v: VertexId) -> Vec<VertexId> {
        match &self.vertex(v).children {
            Children::Arms { then_arm, else_arm } => [then_arm.last(), else_arm.last()]
                .into_iter()
                .flatten()
                .copied()
                .collect(),
            Children::Seq(_) => Vec::new(),
        }
    }

    /// Pre-order DFS over all vertices.
    pub fn iter_preorder(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.vertices.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            let mut kids = self.vertex(v).children.all();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Total number of calling contexts (grows as indirect calls resolve).
    pub fn ctx_count(&self) -> usize {
        self.contexts.len()
    }

    /// The options the PSG was built with.
    pub fn options(&self) -> &PsgOptions {
        &self.opts
    }
}

fn prev_in(kids: &[VertexId], v: VertexId) -> Option<VertexId> {
    let pos = kids.iter().position(|&k| k == v)?;
    if pos == 0 {
        None
    } else {
        Some(kids[pos - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::MpiKind;
    use scalana_lang::parse_program;

    fn psg_of(src: &str) -> Psg {
        let program = parse_program("t.mmpi", src).unwrap();
        build(&program, &PsgOptions::default())
    }

    #[test]
    fn builds_and_counts() {
        let psg = psg_of(
            "fn main() { let a = 1; let b = 2; barrier(); for i in 0 .. 2 { \
             comp(cycles = i); } allreduce(bytes = 8); }",
        );
        assert!(psg.stats.vbc >= psg.stats.vac);
        assert_eq!(psg.stats.mpis, 2);
        assert_eq!(psg.vertex(psg.root).kind, VertexKind::Root);
    }

    #[test]
    fn attribution_map_reaches_contracted_vertices() {
        let src = "fn main() { let a = 1; let b = a + 1; barrier(); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build(&program, &PsgOptions::default());
        // Both lets map to the same merged Comp vertex.
        let ids: Vec<NodeId> = {
            let mut v = vec![];
            program.for_each_stmt(|s| v.push(s.id));
            v
        };
        let v0 = psg.vertex_of(ROOT_CTX, ids[0]).unwrap();
        let v1 = psg.vertex_of(ROOT_CTX, ids[1]).unwrap();
        assert_eq!(v0, v1);
        assert_eq!(psg.vertex(v0).kind, VertexKind::Comp);
    }

    #[test]
    fn seq_pred_and_parent_navigation() {
        let psg = psg_of("fn main() { comp(cycles = 1); barrier(); allreduce(bytes = 8); }");
        let Children::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        assert_eq!(psg.seq_pred(top[2]), Some(top[1]));
        assert_eq!(psg.seq_pred(top[1]), Some(top[0]));
        assert_eq!(psg.seq_pred(top[0]), None);
        assert_eq!(psg.parent(top[0]), Some(psg.root));
    }

    #[test]
    fn loop_end_is_last_body_vertex() {
        let psg = psg_of(
            "fn main() { for i in 0 .. 2 { barrier(); comp(cycles = 1); \
                          allreduce(bytes = 8); } }",
        );
        let Children::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        let end = psg.loop_end(top[0]).unwrap();
        assert_eq!(psg.vertex(end).kind, VertexKind::Mpi(MpiKind::Allreduce));
    }

    #[test]
    fn branch_arm_ends() {
        let psg = psg_of(
            "fn main() { if rank == 0 { barrier(); } else { comp(cycles = 1); \
             allreduce(bytes = 8); } }",
        );
        let Children::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        let ends = psg.branch_arm_ends(top[0]);
        assert_eq!(ends.len(), 2);
        assert_eq!(psg.vertex(ends[0]).kind, VertexKind::Mpi(MpiKind::Barrier));
        assert_eq!(
            psg.vertex(ends[1]).kind,
            VertexKind::Mpi(MpiKind::Allreduce)
        );
    }

    #[test]
    fn resolve_indirect_expands_callsite() {
        let src = "fn main() { let f = &leaf; call f(); } \
                    fn leaf() { comp(cycles = 1); barrier(); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let mut psg = build(&program, &PsgOptions::default());
        let callsite_stmt = {
            let mut found = None;
            program.for_each_stmt(|s| {
                if matches!(s.kind, scalana_lang::ast::StmtKind::CallIndirect { .. }) {
                    found = Some(s.id);
                }
            });
            found.unwrap()
        };
        let before = psg.vertex_count();
        assert!(psg
            .enter_indirect(ROOT_CTX, callsite_stmt, "leaf")
            .is_none());
        let ctx = psg
            .resolve_indirect(ROOT_CTX, callsite_stmt, "leaf")
            .unwrap();
        assert!(psg.vertex_count() > before);
        assert_eq!(psg.ctx_func(ctx), "leaf");
        // Second resolution is idempotent.
        let ctx2 = psg
            .resolve_indirect(ROOT_CTX, callsite_stmt, "leaf")
            .unwrap();
        assert_eq!(ctx, ctx2);
        // The callee's barrier is now attributable.
        let barrier_stmt = {
            let mut found = None;
            program.for_each_stmt(|s| {
                if matches!(
                    s.kind,
                    scalana_lang::ast::StmtKind::Mpi(scalana_lang::ast::MpiOp::Barrier)
                ) {
                    found = Some(s.id);
                }
            });
            found.unwrap()
        };
        let v = psg.vertex_of(ctx, barrier_stmt).unwrap();
        assert_eq!(psg.vertex(v).kind, VertexKind::Mpi(MpiKind::Barrier));
        // And the CallSite now has children.
        let callsite = psg.vertex_of(ROOT_CTX, callsite_stmt).unwrap();
        assert!(!psg.vertex(callsite).children.is_empty());
    }

    #[test]
    fn resolve_indirect_rejects_unknown_callee() {
        let src = "fn main() { let f = &leaf; call f(); } fn leaf() { }";
        let program = parse_program("t.mmpi", src).unwrap();
        let mut psg = build(&program, &PsgOptions::default());
        assert_eq!(psg.resolve_indirect(ROOT_CTX, 999, "leaf"), None);
    }

    #[test]
    fn no_contract_mode_keeps_everything() {
        let src = "fn main() { let a = 1; let b = 2; let c = 3; barrier(); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let contracted = build(&program, &PsgOptions::default());
        let raw = build(
            &program,
            &PsgOptions {
                contract: false,
                ..Default::default()
            },
        );
        assert!(raw.vertex_count() > contracted.vertex_count());
        assert_eq!(raw.stats.vbc, raw.stats.vac);
    }

    #[test]
    fn preorder_covers_all_vertices() {
        let psg = psg_of(
            "fn main() { for i in 0 .. 2 { if rank == 0 { barrier(); } else { \
             allreduce(bytes = 8); } } }",
        );
        let order = psg.iter_preorder();
        assert_eq!(order.len(), psg.vertex_count());
    }

    #[test]
    fn enter_call_transitions_exist_for_direct_calls() {
        let src = "fn main() { work(); } fn work() { barrier(); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build(&program, &PsgOptions::default());
        let call_stmt = {
            let mut found = None;
            program.for_each_stmt(|s| {
                if matches!(s.kind, scalana_lang::ast::StmtKind::Call { .. }) {
                    found = Some(s.id);
                }
            });
            found.unwrap()
        };
        let ctx = psg.enter_call(ROOT_CTX, call_stmt).unwrap();
        assert_eq!(psg.ctx_func(ctx), "work");
        assert_eq!(psg.ctx_parent(ctx), Some(ROOT_CTX));
    }
}
