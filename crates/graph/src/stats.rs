//! PSG vertex statistics (paper Table II).

use crate::vertex::{Vertex, VertexKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Vertex counts before/after contraction and the per-kind breakdown of
/// the final graph — the columns of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PsgStats {
    /// Vertices before contraction (`#VBC`).
    pub vbc: usize,
    /// Vertices after contraction (`#VAC`).
    pub vac: usize,
    /// `Loop` vertices in the final graph.
    pub loops: usize,
    /// `Branch` vertices.
    pub branches: usize,
    /// `Comp` vertices.
    pub comps: usize,
    /// MPI vertices.
    pub mpis: usize,
    /// Unresolved indirect call sites.
    pub callsites: usize,
    /// Recursive-call cycle vertices.
    pub recursive: usize,
}

impl PsgStats {
    /// Count kinds over a final vertex table.
    pub fn compute(vbc: usize, vertices: &[Vertex]) -> PsgStats {
        let mut stats = PsgStats {
            vbc,
            vac: vertices.len(),
            ..Default::default()
        };
        for v in vertices {
            match v.kind {
                VertexKind::Root => {}
                VertexKind::Loop => stats.loops += 1,
                VertexKind::Branch => stats.branches += 1,
                VertexKind::Comp => stats.comps += 1,
                VertexKind::Mpi(_) => stats.mpis += 1,
                VertexKind::CallSite => stats.callsites += 1,
                VertexKind::RecursiveCall(_) => stats.recursive += 1,
            }
        }
        stats
    }

    /// Fraction of vertices removed by contraction (paper: 68% average).
    pub fn reduction(&self) -> f64 {
        if self.vbc == 0 {
            0.0
        } else {
            1.0 - self.vac as f64 / self.vbc as f64
        }
    }

    /// Fraction of final vertices that are `Comp` or MPI (paper: >73%).
    pub fn comp_mpi_fraction(&self) -> f64 {
        if self.vac == 0 {
            0.0
        } else {
            (self.comps + self.mpis) as f64 / self.vac as f64
        }
    }
}

impl fmt::Display for PsgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#VBC={} #VAC={} #Loop={} #Branch={} #Comp={} #MPI={}",
            self.vbc, self.vac, self.loops, self.branches, self.comps, self.mpis
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psg::{build, PsgOptions};
    use scalana_lang::parse_program;

    #[test]
    fn stats_count_kinds() {
        let src = "fn main() { let a = 1; for i in 0 .. 2 { barrier(); } \
                    if rank == 0 { allreduce(bytes = 8); } }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build(&program, &PsgOptions::default());
        assert_eq!(psg.stats.loops, 1);
        assert_eq!(psg.stats.branches, 1);
        assert_eq!(psg.stats.mpis, 2);
        assert!(psg.stats.comps >= 1);
        assert!(psg.stats.reduction() >= 0.0);
        assert!(psg.stats.comp_mpi_fraction() > 0.0);
    }

    #[test]
    fn display_matches_table_headers() {
        let s = PsgStats {
            vbc: 10,
            vac: 4,
            loops: 1,
            branches: 0,
            comps: 2,
            mpis: 1,
            ..Default::default()
        };
        assert_eq!(
            s.to_string(),
            "#VBC=10 #VAC=4 #Loop=1 #Branch=0 #Comp=2 #MPI=1"
        );
        assert!((s.reduction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = PsgStats::default();
        assert_eq!(s.reduction(), 0.0);
        assert_eq!(s.comp_mpi_fraction(), 0.0);
    }
}
