//! Vertex model shared by the expanded and contracted PSG.

use scalana_lang::ast::{MpiOp, NodeId};
use scalana_lang::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a vertex within one PSG.
pub type VertexId = u32;

/// MPI operation class carried by an MPI vertex (parameter expressions
/// stay in the AST; the vertex records only the operation kind, as the
/// paper's PSG does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiKind {
    /// Blocking send.
    Send,
    /// Blocking receive.
    Recv,
    /// Combined exchange.
    Sendrecv,
    /// Non-blocking send.
    Isend,
    /// Non-blocking receive.
    Irecv,
    /// Wait on one request.
    Wait,
    /// Wait on all outstanding requests.
    Waitall,
    /// Barrier collective.
    Barrier,
    /// Broadcast collective.
    Bcast,
    /// Reduce collective.
    Reduce,
    /// Allreduce collective.
    Allreduce,
    /// All-to-all collective.
    Alltoall,
    /// Allgather collective.
    Allgather,
}

impl MpiKind {
    /// Classify an AST MPI operation.
    pub fn of(op: &MpiOp) -> MpiKind {
        match op {
            MpiOp::Send { .. } => MpiKind::Send,
            MpiOp::Recv { .. } => MpiKind::Recv,
            MpiOp::Sendrecv { .. } => MpiKind::Sendrecv,
            MpiOp::Isend { .. } => MpiKind::Isend,
            MpiOp::Irecv { .. } => MpiKind::Irecv,
            MpiOp::Wait { .. } => MpiKind::Wait,
            MpiOp::Waitall => MpiKind::Waitall,
            MpiOp::Barrier => MpiKind::Barrier,
            MpiOp::Bcast { .. } => MpiKind::Bcast,
            MpiOp::Reduce { .. } => MpiKind::Reduce,
            MpiOp::Allreduce { .. } => MpiKind::Allreduce,
            MpiOp::Alltoall { .. } => MpiKind::Alltoall,
            MpiOp::Allgather { .. } => MpiKind::Allgather,
        }
    }

    /// Whether all ranks participate. Backtracking (Algorithm 1) stops at
    /// collective vertices.
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiKind::Barrier
                | MpiKind::Bcast
                | MpiKind::Reduce
                | MpiKind::Allreduce
                | MpiKind::Alltoall
                | MpiKind::Allgather
        )
    }

    /// Whether this vertex can accrue wait time blocked on a peer.
    pub fn can_wait(self) -> bool {
        !matches!(self, MpiKind::Isend | MpiKind::Irecv)
    }

    /// MPI-style display name (`MPI_Allreduce`).
    pub fn mpi_name(self) -> &'static str {
        match self {
            MpiKind::Send => "MPI_Send",
            MpiKind::Recv => "MPI_Recv",
            MpiKind::Sendrecv => "MPI_Sendrecv",
            MpiKind::Isend => "MPI_Isend",
            MpiKind::Irecv => "MPI_Irecv",
            MpiKind::Wait => "MPI_Wait",
            MpiKind::Waitall => "MPI_Waitall",
            MpiKind::Barrier => "MPI_Barrier",
            MpiKind::Bcast => "MPI_Bcast",
            MpiKind::Reduce => "MPI_Reduce",
            MpiKind::Allreduce => "MPI_Allreduce",
            MpiKind::Alltoall => "MPI_Alltoall",
            MpiKind::Allgather => "MPI_Allgather",
        }
    }
}

/// Vertex classification, matching the paper's `Root` / `Loop` / `Branch`
/// / `Comp` / MPI taxonomy plus the two runtime-resolved call forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VertexKind {
    /// Program entry (one per PSG).
    Root,
    /// A `for`/`while` loop.
    Loop,
    /// An `if`/`else`.
    Branch,
    /// Merged computation (one or more non-MPI statements).
    Comp,
    /// One MPI invocation.
    Mpi(MpiKind),
    /// Unresolved indirect call site; expanded when the runtime reports
    /// the resolved target (paper §III-B3).
    CallSite,
    /// Re-entrant call forming a cycle; payload is the entry vertex of
    /// the active expansion it loops back to.
    RecursiveCall(VertexId),
}

impl VertexKind {
    /// Short label for DOT dumps and reports.
    pub fn label(&self) -> String {
        match self {
            VertexKind::Root => "Root".to_string(),
            VertexKind::Loop => "Loop".to_string(),
            VertexKind::Branch => "Branch".to_string(),
            VertexKind::Comp => "Comp".to_string(),
            VertexKind::Mpi(k) => k.mpi_name().to_string(),
            VertexKind::CallSite => "CallSite".to_string(),
            VertexKind::RecursiveCall(target) => format!("RecursiveCall->{target}"),
        }
    }
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Ordered children of a vertex. `Branch` keeps its arms separate so the
/// backtracking algorithm can pick an arm end; every other kind has one
/// ordered sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Children {
    /// Execution-ordered child sequence.
    Seq(Vec<VertexId>),
    /// Branch arms.
    Arms {
        /// Vertices of the then-arm.
        then_arm: Vec<VertexId>,
        /// Vertices of the else-arm (empty when there is no `else`).
        else_arm: Vec<VertexId>,
    },
}

impl Children {
    /// Empty sequence.
    pub fn none() -> Children {
        Children::Seq(Vec::new())
    }

    /// All children in order (arms concatenated).
    pub fn all(&self) -> Vec<VertexId> {
        match self {
            Children::Seq(v) => v.clone(),
            Children::Arms { then_arm, else_arm } => {
                let mut v = then_arm.clone();
                v.extend_from_slice(else_arm);
                v
            }
        }
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        match self {
            Children::Seq(v) => v.len(),
            Children::Arms { then_arm, else_arm } => then_arm.len() + else_arm.len(),
        }
    }

    /// True when there are no children.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A PSG vertex: a code snippet plus its structural position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// This vertex's id (index into the PSG vertex table).
    pub id: VertexId,
    /// Classification.
    pub kind: VertexKind,
    /// Source location of the first statement merged into this vertex.
    pub span: Span,
    /// Function the code lives in (after inlining, the *defining*
    /// function, not the caller).
    pub func: String,
    /// AST statements merged into this vertex. A kept `Loop`/`Branch`/
    /// MPI vertex holds exactly its own statement; a contracted `Comp`
    /// holds every statement it absorbed.
    pub stmt_ids: Vec<NodeId>,
    /// Structural parent (`None` only for the root).
    pub parent: Option<VertexId>,
    /// Children in execution order.
    pub children: Children,
    /// Loop-nesting depth (number of enclosing `Loop` vertices).
    pub loop_depth: u32,
}

impl Vertex {
    /// Whether this is an MPI vertex.
    pub fn is_mpi(&self) -> bool {
        matches!(self.kind, VertexKind::Mpi(_))
    }

    /// Whether this is a collective MPI vertex.
    pub fn is_collective(&self) -> bool {
        matches!(self.kind, VertexKind::Mpi(k) if k.is_collective())
    }

    /// `file:line` of the vertex for reports.
    pub fn location(&self) -> String {
        self.span.file_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_lang::ast::Expr;

    #[test]
    fn mpi_kind_classification() {
        let op = MpiOp::Allreduce {
            bytes: Expr::Int(8),
        };
        assert_eq!(MpiKind::of(&op), MpiKind::Allreduce);
        assert!(MpiKind::Allreduce.is_collective());
        assert!(!MpiKind::Sendrecv.is_collective());
        assert!(MpiKind::Wait.can_wait());
        assert!(!MpiKind::Irecv.can_wait());
    }

    #[test]
    fn children_all_concatenates_arms() {
        let c = Children::Arms {
            then_arm: vec![1, 2],
            else_arm: vec![3],
        };
        assert_eq!(c.all(), vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Children::none().is_empty());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(VertexKind::Mpi(MpiKind::Waitall).label(), "MPI_Waitall");
        assert_eq!(VertexKind::RecursiveCall(7).label(), "RecursiveCall->7");
        assert_eq!(VertexKind::Loop.to_string(), "Loop");
    }
}
