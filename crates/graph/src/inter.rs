//! Inter-procedural analysis: combine local PSGs into a whole-program
//! graph (paper §III-A).
//!
//! The expander performs a top-down traversal of the program call graph
//! from `main`, replacing every direct call with a fresh *instantiation*
//! of the callee's local PSG. Each instantiation gets its own **calling
//! context** ([`CtxId`]) so performance data collected under different
//! call paths lands on different vertices — the paper attaches "extra
//! call-stack information" for the same reason.
//!
//! - **Recursive calls** are not expanded a second time: a
//!   [`VertexKind::RecursiveCall`] vertex closes the cycle and the context
//!   transition points back at the active frame, so runtime attribution of
//!   deeper recursion folds onto the first expansion.
//! - **Indirect calls** become [`VertexKind::CallSite`] placeholders; the
//!   runtime reports resolved targets and [`crate::psg::Psg::resolve_indirect`]
//!   expands them post-hoc (paper §III-B3).

use crate::intra::{LocalChildren, LocalKind, LocalPsg, LocalVertexId};
use crate::vertex::{Children, Vertex, VertexId, VertexKind};
use scalana_lang::ast::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned calling-context id; `ROOT_CTX` is `main`'s context.
pub type CtxId = u32;

/// `main`'s calling context.
pub const ROOT_CTX: CtxId = 0;

/// One node of the calling-context tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtxNode {
    /// Parent context (`None` for `main`).
    pub parent: Option<CtxId>,
    /// The call statement that opened this context (`None` for `main`).
    pub call_site: Option<NodeId>,
    /// Function executing in this context.
    pub func: String,
}

/// Result of expanding a region: vertices (pre-contraction), the
/// attribution map, and context transitions.
#[derive(Debug)]
pub struct Expansion {
    /// Expanded vertex table (tree, ids are table indices).
    pub vertices: Vec<Vertex>,
    /// Root of the expanded region.
    pub root: VertexId,
    /// `(context, statement) → vertex` attribution map.
    pub stmt_map: HashMap<(CtxId, NodeId), VertexId>,
    /// `(caller context, call statement) → callee context` transitions
    /// for direct calls (recursive calls map back to the active frame).
    pub transitions: HashMap<(CtxId, NodeId), CtxId>,
}

/// Compute, for every function, whether it transitively performs MPI
/// (through direct calls). Indirect targets are *not* included — call
/// sites are conservatively preserved by contraction instead.
pub fn mpi_closure(locals: &HashMap<String, LocalPsg>) -> HashMap<String, bool> {
    let mut flags: HashMap<String, bool> = locals
        .iter()
        .map(|(name, lp)| (name.clone(), lp.has_direct_mpi()))
        .collect();
    loop {
        let mut changed = false;
        for (name, lp) in locals {
            if flags[name] {
                continue;
            }
            if lp
                .direct_callees()
                .iter()
                .any(|c| flags.get(*c).copied().unwrap_or(false))
            {
                flags.insert(name.clone(), true);
                changed = true;
            }
        }
        if !changed {
            return flags;
        }
    }
}

/// An active call frame during expansion (for cycle detection).
struct Frame {
    func: String,
    ctx: CtxId,
    /// Vertex id the first vertex of this frame's expansion receives.
    entry_vertex: VertexId,
}

/// Expands local PSGs into a whole-program vertex tree. The context table
/// is borrowed mutably so post-hoc indirect-call resolution can extend an
/// existing PSG's contexts.
pub struct Expander<'a> {
    locals: &'a HashMap<String, LocalPsg>,
    contexts: &'a mut Vec<CtxNode>,
    vertices: Vec<Vertex>,
    stmt_map: HashMap<(CtxId, NodeId), VertexId>,
    transitions: HashMap<(CtxId, NodeId), CtxId>,
}

impl<'a> Expander<'a> {
    /// Expand the whole program from `main`. Context 0 is created for
    /// `main`; the returned root vertex has kind [`VertexKind::Root`].
    pub fn expand_program(
        locals: &'a HashMap<String, LocalPsg>,
        contexts: &'a mut Vec<CtxNode>,
    ) -> Expansion {
        assert!(
            contexts.is_empty(),
            "expand_program requires a fresh context table"
        );
        contexts.push(CtxNode {
            parent: None,
            call_site: None,
            func: "main".to_string(),
        });
        let mut ex = Expander {
            locals,
            contexts,
            vertices: Vec::new(),
            stmt_map: HashMap::new(),
            transitions: HashMap::new(),
        };
        let main = &ex.locals["main"];
        let root = ex.alloc(
            VertexKind::Root,
            main.vertex(main.root).span.clone(),
            "main".to_string(),
            vec![],
            None,
            0,
        );
        let mut active = vec![Frame {
            func: "main".to_string(),
            ctx: ROOT_CTX,
            entry_vertex: root,
        }];
        let children = ex.expand_seq(
            main,
            &seq_ids(main, main.root),
            ROOT_CTX,
            root,
            0,
            &mut active,
        );
        ex.vertices[root as usize].children = Children::Seq(children);
        Expansion {
            vertices: ex.vertices,
            root,
            stmt_map: ex.stmt_map,
            transitions: ex.transitions,
        }
    }

    /// Expand one function body as a detached region (used for runtime
    /// resolution of indirect calls). `ctx` must already exist in the
    /// context table and name the callee.
    pub fn expand_function_region(
        locals: &'a HashMap<String, LocalPsg>,
        contexts: &'a mut Vec<CtxNode>,
        func: &str,
        ctx: CtxId,
        base_loop_depth: u32,
    ) -> Expansion {
        let mut ex = Expander {
            locals,
            contexts,
            vertices: Vec::new(),
            stmt_map: HashMap::new(),
            transitions: HashMap::new(),
        };
        let lp = &ex.locals[func];
        let root = ex.alloc(
            VertexKind::Root,
            lp.vertex(lp.root).span.clone(),
            func.to_string(),
            vec![],
            None,
            base_loop_depth,
        );
        let mut active = vec![Frame {
            func: func.to_string(),
            ctx,
            entry_vertex: root,
        }];
        let children = ex.expand_seq(
            lp,
            &seq_ids(lp, lp.root),
            ctx,
            root,
            base_loop_depth,
            &mut active,
        );
        ex.vertices[root as usize].children = Children::Seq(children);
        Expansion {
            vertices: ex.vertices,
            root,
            stmt_map: ex.stmt_map,
            transitions: ex.transitions,
        }
    }

    fn alloc(
        &mut self,
        kind: VertexKind,
        span: scalana_lang::span::Span,
        func: String,
        stmt_ids: Vec<NodeId>,
        parent: Option<VertexId>,
        loop_depth: u32,
    ) -> VertexId {
        let id = self.vertices.len() as VertexId;
        self.vertices.push(Vertex {
            id,
            kind,
            span,
            func,
            stmt_ids,
            parent,
            children: Children::none(),
            loop_depth,
        });
        id
    }

    fn expand_seq(
        &mut self,
        lp: &LocalPsg,
        ids: &[LocalVertexId],
        ctx: CtxId,
        parent: VertexId,
        loop_depth: u32,
        active: &mut Vec<Frame>,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(ids.len());
        for &lid in ids {
            out.extend(self.expand_vertex(lp, lid, ctx, parent, loop_depth, active));
        }
        out
    }

    /// Expand one local vertex; a direct call splices the callee body, so
    /// the result may be zero or more global vertices.
    fn expand_vertex(
        &mut self,
        lp: &LocalPsg,
        lid: LocalVertexId,
        ctx: CtxId,
        parent: VertexId,
        loop_depth: u32,
        active: &mut Vec<Frame>,
    ) -> Vec<VertexId> {
        let lv = lp.vertex(lid).clone();
        let stmt = lv
            .stmt_id
            .expect("non-entry local vertices carry a statement");
        match &lv.kind {
            LocalKind::Entry => unreachable!("entry vertices are not expanded directly"),
            LocalKind::CompStmt => {
                let v = self.alloc(
                    VertexKind::Comp,
                    lv.span,
                    lp.func.clone(),
                    vec![stmt],
                    Some(parent),
                    loop_depth,
                );
                self.stmt_map.insert((ctx, stmt), v);
                vec![v]
            }
            LocalKind::Mpi(kind) => {
                let v = self.alloc(
                    VertexKind::Mpi(*kind),
                    lv.span,
                    lp.func.clone(),
                    vec![stmt],
                    Some(parent),
                    loop_depth,
                );
                self.stmt_map.insert((ctx, stmt), v);
                vec![v]
            }
            LocalKind::Loop => {
                let v = self.alloc(
                    VertexKind::Loop,
                    lv.span,
                    lp.func.clone(),
                    vec![stmt],
                    Some(parent),
                    loop_depth,
                );
                self.stmt_map.insert((ctx, stmt), v);
                let LocalChildren::Seq(kids) = &lv.children else {
                    unreachable!("loop children are a sequence")
                };
                let children = self.expand_seq(lp, kids, ctx, v, loop_depth + 1, active);
                self.vertices[v as usize].children = Children::Seq(children);
                vec![v]
            }
            LocalKind::Branch => {
                let v = self.alloc(
                    VertexKind::Branch,
                    lv.span,
                    lp.func.clone(),
                    vec![stmt],
                    Some(parent),
                    loop_depth,
                );
                self.stmt_map.insert((ctx, stmt), v);
                let LocalChildren::Arms { then_arm, else_arm } = &lv.children else {
                    unreachable!("branch children are arms")
                };
                let t = self.expand_seq(lp, then_arm, ctx, v, loop_depth, active);
                let e = self.expand_seq(lp, else_arm, ctx, v, loop_depth, active);
                self.vertices[v as usize].children = Children::Arms {
                    then_arm: t,
                    else_arm: e,
                };
                vec![v]
            }
            LocalKind::IndirectCall => {
                let v = self.alloc(
                    VertexKind::CallSite,
                    lv.span,
                    lp.func.clone(),
                    vec![stmt],
                    Some(parent),
                    loop_depth,
                );
                self.stmt_map.insert((ctx, stmt), v);
                vec![v]
            }
            LocalKind::DirectCall { callee } => {
                if let Some(frame) = active.iter().find(|f| &f.func == callee) {
                    // Cycle: point back at the active expansion, as the
                    // paper's PCG-derived recursive edges do.
                    let target_ctx = frame.ctx;
                    let entry = frame.entry_vertex;
                    let v = self.alloc(
                        VertexKind::RecursiveCall(entry),
                        lv.span,
                        lp.func.clone(),
                        vec![stmt],
                        Some(parent),
                        loop_depth,
                    );
                    self.stmt_map.insert((ctx, stmt), v);
                    self.transitions.insert((ctx, stmt), target_ctx);
                    return vec![v];
                }
                let callee_lp = &self.locals[callee];
                let new_ctx = self.contexts.len() as CtxId;
                self.contexts.push(CtxNode {
                    parent: Some(ctx),
                    call_site: Some(stmt),
                    func: callee.clone(),
                });
                self.transitions.insert((ctx, stmt), new_ctx);
                active.push(Frame {
                    func: callee.clone(),
                    ctx: new_ctx,
                    entry_vertex: self.vertices.len() as VertexId,
                });
                let spliced = self.expand_seq(
                    callee_lp,
                    &seq_ids(callee_lp, callee_lp.root),
                    new_ctx,
                    parent,
                    loop_depth,
                    active,
                );
                active.pop();
                spliced
            }
        }
    }
}

fn seq_ids(lp: &LocalPsg, id: LocalVertexId) -> Vec<LocalVertexId> {
    match &lp.vertex(id).children {
        LocalChildren::Seq(v) => v.clone(),
        LocalChildren::Arms { .. } => unreachable!("entry is a sequence"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::build_local;
    use crate::vertex::MpiKind;
    use scalana_lang::parse_program;

    fn expand(src: &str) -> (Expansion, Vec<CtxNode>) {
        let program = parse_program("t.mmpi", src).unwrap();
        let locals: HashMap<String, LocalPsg> = program
            .functions
            .iter()
            .map(|f| (f.name.clone(), build_local(f)))
            .collect();
        let mut contexts = Vec::new();
        let expansion = Expander::expand_program(&locals, &mut contexts);
        (expansion, contexts)
    }

    fn kinds_of(ex: &Expansion, ids: &[VertexId]) -> Vec<VertexKind> {
        ids.iter().map(|&i| ex.vertices[i as usize].kind).collect()
    }

    #[test]
    fn inlines_direct_calls() {
        let (ex, ctxs) =
            expand("fn main() { helper(); barrier(); } fn helper() { comp(cycles = 1); }");
        let root = &ex.vertices[ex.root as usize];
        let Children::Seq(top) = &root.children else {
            panic!()
        };
        // helper's body spliced in place of the call, then the barrier.
        assert_eq!(
            kinds_of(&ex, top),
            vec![VertexKind::Comp, VertexKind::Mpi(MpiKind::Barrier)]
        );
        // Contexts: main + one instantiation of helper.
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[1].func, "helper");
        assert_eq!(ctxs[1].parent, Some(ROOT_CTX));
    }

    #[test]
    fn distinct_call_sites_get_distinct_contexts_and_vertices() {
        let (ex, ctxs) = expand("fn main() { work(); work(); } fn work() { comp(cycles = 1); }");
        let Children::Seq(top) = &ex.vertices[ex.root as usize].children else {
            panic!()
        };
        assert_eq!(top.len(), 2);
        assert_ne!(top[0], top[1], "two instantiations are distinct vertices");
        assert_eq!(ctxs.len(), 3);
        // Both comp statements have the same NodeId but different contexts.
        let comp_stmt = ex.vertices[top[0] as usize].stmt_ids[0];
        assert_eq!(ex.stmt_map[&(1, comp_stmt)], top[0]);
        assert_eq!(ex.stmt_map[&(2, comp_stmt)], top[1]);
    }

    #[test]
    fn recursion_forms_cycle_vertex() {
        let (ex, ctxs) =
            expand("fn main() { rec(3); } fn rec(n) { if n > 0 { rec(n - 1); } barrier(); }");
        // rec expanded once; the inner call is a RecursiveCall vertex.
        let rec_vertices: Vec<_> = ex
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::RecursiveCall(_)))
            .collect();
        assert_eq!(rec_vertices.len(), 1);
        // The recursive transition maps back to the active context.
        assert_eq!(ctxs.len(), 2);
        let (key, target) = ex
            .transitions
            .iter()
            .find(|((c, _), _)| *c == 1)
            .map(|(k, v)| (*k, *v))
            .unwrap();
        assert_eq!(key.0, 1);
        assert_eq!(target, 1, "recursive call re-enters its own context");
    }

    #[test]
    fn mutual_recursion_cycles_back_to_first_frame() {
        let (ex, ctxs) = expand(
            "fn main() { ping(2); } fn ping(n) { if n > 0 { pong(n); } } \
             fn pong(n) { ping(n - 1); }",
        );
        assert_eq!(ctxs.len(), 3); // main, ping, pong
        let cycles: Vec<_> = ex
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::RecursiveCall(_)))
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].func, "pong", "cycle closes inside pong");
    }

    #[test]
    fn indirect_calls_stay_as_callsites() {
        let (ex, _) =
            expand("fn main() { let f = &leaf; call f(); } fn leaf() { comp(cycles = 1); }");
        let callsites: Vec<_> = ex
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::CallSite)
            .collect();
        assert_eq!(callsites.len(), 1);
        assert!(callsites[0].children.is_empty(), "unresolved until runtime");
        // leaf was never statically expanded.
        assert!(ex.vertices.iter().all(|v| v.func != "leaf"));
    }

    #[test]
    fn loop_depth_tracks_nesting_across_inlining() {
        let (ex, _) = expand(
            "fn main() { for i in 0 .. 2 { f(); } } \
             fn f() { for j in 0 .. 2 { comp(cycles = 1); } }",
        );
        let inner_comp = ex
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Comp)
            .unwrap();
        assert_eq!(inner_comp.loop_depth, 2, "comp under two nested loops");
    }

    #[test]
    fn mpi_closure_is_transitive() {
        let program = parse_program(
            "t.mmpi",
            "fn main() { a(); } fn a() { b(); } fn b() { barrier(); } fn c() { }",
        )
        .unwrap();
        let locals: HashMap<String, LocalPsg> = program
            .functions
            .iter()
            .map(|f| (f.name.clone(), build_local(f)))
            .collect();
        let flags = mpi_closure(&locals);
        assert!(flags["main"] && flags["a"] && flags["b"]);
        assert!(!flags["c"]);
    }

    #[test]
    fn parents_are_consistent() {
        let (ex, _) = expand("fn main() { for i in 0 .. 2 { if rank == 0 { barrier(); } } }");
        for v in &ex.vertices {
            for child in v.children.all() {
                assert_eq!(ex.vertices[child as usize].parent, Some(v.id));
            }
        }
    }
}
