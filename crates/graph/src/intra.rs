//! Intra-procedural analysis: build a *local PSG* for each function.
//!
//! Mirrors the paper's first phase (§III-A): traverse the function's
//! control flow at IR level, identify loops, branches, and calls, and
//! connect them in execution order. Every non-MPI simple statement becomes
//! its own `CompStmt` vertex at this stage — contraction later merges them
//! — so the before-contraction vertex counts (`#VBC` in Table II) reflect
//! raw program structure.

use crate::vertex::MpiKind;
use scalana_lang::ast::{Block, Function, NodeId, StmtKind};
use scalana_lang::span::Span;

/// Index of a vertex within one [`LocalPsg`].
pub type LocalVertexId = u32;

/// Vertex classification in a local (per-function) PSG.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalKind {
    /// Synthetic function-entry vertex (owns the body sequence).
    Entry,
    /// `for` / `while` loop.
    Loop,
    /// `if` / `else`.
    Branch,
    /// One non-MPI simple statement (`let`, assignment, `comp`, `return`).
    CompStmt,
    /// One MPI invocation.
    Mpi(MpiKind),
    /// Direct call to a user function (replaced during inter-procedural
    /// expansion).
    DirectCall {
        /// Callee name.
        callee: String,
    },
    /// Indirect call; target resolved at runtime.
    IndirectCall,
}

/// Ordered children of a local vertex.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalChildren {
    /// Execution-ordered sequence.
    Seq(Vec<LocalVertexId>),
    /// Branch arms.
    Arms {
        /// Then-arm vertices.
        then_arm: Vec<LocalVertexId>,
        /// Else-arm vertices (empty without `else`).
        else_arm: Vec<LocalVertexId>,
    },
}

/// A vertex of a local PSG.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalVertex {
    /// Id within the local PSG.
    pub id: LocalVertexId,
    /// Classification.
    pub kind: LocalKind,
    /// Source location.
    pub span: Span,
    /// The AST statement this vertex represents (`None` for `Entry`).
    pub stmt_id: Option<NodeId>,
    /// Children in execution order.
    pub children: LocalChildren,
}

/// The local PSG of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalPsg {
    /// Function name.
    pub func: String,
    /// Vertex table; index = id.
    pub vertices: Vec<LocalVertex>,
    /// The `Entry` vertex (always 0).
    pub root: LocalVertexId,
}

impl LocalPsg {
    /// Vertex lookup.
    pub fn vertex(&self, id: LocalVertexId) -> &LocalVertex {
        &self.vertices[id as usize]
    }

    /// Number of vertices, excluding the synthetic entry.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// True if this function *directly* performs MPI operations
    /// (transitivity is computed over the call graph in [`crate::inter`]).
    pub fn has_direct_mpi(&self) -> bool {
        self.vertices
            .iter()
            .any(|v| matches!(v.kind, LocalKind::Mpi(_)))
    }

    /// Names of functions this one calls directly.
    pub fn direct_callees(&self) -> Vec<&str> {
        self.vertices
            .iter()
            .filter_map(|v| match &v.kind {
                LocalKind::DirectCall { callee } => Some(callee.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// Build the local PSG for one function.
pub fn build_local(func: &Function) -> LocalPsg {
    let mut builder = LocalBuilder {
        vertices: Vec::new(),
    };
    let root = builder.push(
        LocalKind::Entry,
        func.span.clone(),
        None,
        LocalChildren::Seq(vec![]),
    );
    let body = builder.block(&func.body);
    builder.vertices[root as usize].children = LocalChildren::Seq(body);
    LocalPsg {
        func: func.name.clone(),
        vertices: builder.vertices,
        root,
    }
}

struct LocalBuilder {
    vertices: Vec<LocalVertex>,
}

impl LocalBuilder {
    fn push(
        &mut self,
        kind: LocalKind,
        span: Span,
        stmt_id: Option<NodeId>,
        children: LocalChildren,
    ) -> LocalVertexId {
        let id = self.vertices.len() as LocalVertexId;
        self.vertices.push(LocalVertex {
            id,
            kind,
            span,
            stmt_id,
            children,
        });
        id
    }

    fn block(&mut self, block: &Block) -> Vec<LocalVertexId> {
        let mut out = Vec::with_capacity(block.stmts.len());
        for stmt in &block.stmts {
            let span = stmt.span.clone();
            let sid = Some(stmt.id);
            let id = match &stmt.kind {
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                    let children = self.block(body);
                    self.push(LocalKind::Loop, span, sid, LocalChildren::Seq(children))
                }
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    let then_arm = self.block(then_block);
                    let else_arm = else_block
                        .as_ref()
                        .map(|b| self.block(b))
                        .unwrap_or_default();
                    self.push(
                        LocalKind::Branch,
                        span,
                        sid,
                        LocalChildren::Arms { then_arm, else_arm },
                    )
                }
                StmtKind::Call { callee, .. } => self.push(
                    LocalKind::DirectCall {
                        callee: callee.clone(),
                    },
                    span,
                    sid,
                    LocalChildren::Seq(vec![]),
                ),
                StmtKind::CallIndirect { .. } => self.push(
                    LocalKind::IndirectCall,
                    span,
                    sid,
                    LocalChildren::Seq(vec![]),
                ),
                StmtKind::Mpi(op) => self.push(
                    LocalKind::Mpi(MpiKind::of(op)),
                    span,
                    sid,
                    LocalChildren::Seq(vec![]),
                ),
                StmtKind::Let { .. }
                | StmtKind::Assign { .. }
                | StmtKind::Comp(_)
                | StmtKind::Return => {
                    self.push(LocalKind::CompStmt, span, sid, LocalChildren::Seq(vec![]))
                }
            };
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_lang::parse_program;

    fn local(src: &str, func: &str) -> LocalPsg {
        let program = parse_program("t.mmpi", src).unwrap();
        build_local(program.function(func).unwrap())
    }

    /// The paper's Fig. 3 example program, transcribed to MiniMPI.
    const FIG3: &str = r#"
        param N = 16;
        fn main() {
            for i in 0 .. N {              // Loop 1
                let a = i;
                for j in 0 .. i {          // Loop 1.1
                    comp(cycles = j);
                }
                for k in 0 .. i {          // Loop 1.2
                    comp(cycles = k);
                }
                foo();
                bcast(root = 0, bytes = 8);
            }
        }
        fn foo() {
            if rank % 2 == 0 {
                send(dst = rank + 1, tag = 0, bytes = 8);
            } else {
                recv(src = rank - 1, tag = 0);
            }
        }
    "#;

    #[test]
    fn fig3_main_local_psg_shape() {
        let psg = local(FIG3, "main");
        // Entry -> Loop1 -> [let, Loop1.1, Loop1.2, call foo, bcast]
        let entry = psg.vertex(psg.root);
        let LocalChildren::Seq(top) = &entry.children else {
            panic!()
        };
        assert_eq!(top.len(), 1);
        let loop1 = psg.vertex(top[0]);
        assert_eq!(loop1.kind, LocalKind::Loop);
        let LocalChildren::Seq(body) = &loop1.children else {
            panic!()
        };
        assert_eq!(body.len(), 5);
        assert_eq!(psg.vertex(body[0]).kind, LocalKind::CompStmt);
        assert_eq!(psg.vertex(body[1]).kind, LocalKind::Loop);
        assert_eq!(psg.vertex(body[2]).kind, LocalKind::Loop);
        assert_eq!(
            psg.vertex(body[3]).kind,
            LocalKind::DirectCall {
                callee: "foo".into()
            }
        );
        assert_eq!(psg.vertex(body[4]).kind, LocalKind::Mpi(MpiKind::Bcast));
    }

    #[test]
    fn fig3_foo_local_psg_shape() {
        let psg = local(FIG3, "foo");
        let entry = psg.vertex(psg.root);
        let LocalChildren::Seq(top) = &entry.children else {
            panic!()
        };
        let branch = psg.vertex(top[0]);
        assert_eq!(branch.kind, LocalKind::Branch);
        let LocalChildren::Arms { then_arm, else_arm } = &branch.children else {
            panic!()
        };
        assert_eq!(psg.vertex(then_arm[0]).kind, LocalKind::Mpi(MpiKind::Send));
        assert_eq!(psg.vertex(else_arm[0]).kind, LocalKind::Mpi(MpiKind::Recv));
        assert!(psg.has_direct_mpi());
    }

    #[test]
    fn direct_callees_listed() {
        let psg = local(FIG3, "main");
        assert_eq!(psg.direct_callees(), vec!["foo"]);
        assert!(psg.has_direct_mpi(), "main has bcast -> direct MPI");
    }

    #[test]
    fn vertex_count_excludes_entry() {
        let psg = local("fn main() { barrier(); barrier(); }", "main");
        assert_eq!(psg.vertex_count(), 2);
    }

    #[test]
    fn while_is_a_loop_vertex() {
        let psg = local(
            "fn main() { let x = 4; while x > 0 { x = x - 1; } }",
            "main",
        );
        let LocalChildren::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        assert_eq!(psg.vertex(top[1]).kind, LocalKind::Loop);
    }

    #[test]
    fn indirect_call_vertex() {
        let psg = local(
            "fn main() { let f = &leaf; call f(); } fn leaf() { }",
            "main",
        );
        let LocalChildren::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        assert_eq!(psg.vertex(top[1]).kind, LocalKind::IndirectCall);
    }

    #[test]
    fn spans_point_at_source_lines() {
        let psg = local(FIG3, "main");
        let LocalChildren::Seq(top) = &psg.vertex(psg.root).children else {
            panic!()
        };
        let loop1 = psg.vertex(top[0]);
        assert_eq!(loop1.span.line, 4); // `for i in 0 .. N` line in FIG3
    }
}
