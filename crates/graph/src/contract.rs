//! Graph contraction (paper §III-A, Fig. 4).
//!
//! The expanded PSG has one vertex per statement, which is too fine for
//! profiling: attributing samples to thousands of tiny vertices costs
//! overhead without analytical benefit. Contraction applies the paper's
//! rules:
//!
//! 1. **All MPI invocations and the control structures containing them
//!    are preserved** — communication is the usual scalability bottleneck.
//! 2. MPI-free branches are folded into computation.
//! 3. MPI-free loops are preserved only up to `MaxLoopDepth` nesting
//!    (loop iterations may dominate compute time, so shallow loops keep
//!    their own vertices); deeper loops fold into their parent.
//! 4. Consecutive foldable statements merge into a single `Comp` vertex.
//!
//! Unresolved `CallSite`s are conservatively preserved (their targets may
//! perform MPI); `RecursiveCall`s are preserved exactly when the function
//! they re-enter transitively performs MPI.

use crate::vertex::{Children, Vertex, VertexId, VertexKind};
use scalana_lang::ast::NodeId;
use scalana_lang::span::Span;
use std::collections::HashMap;

/// Output of contraction: a fresh vertex table (ids offset by `base`) and
/// the old→new id mapping covering *every* old vertex (merged vertices
/// map onto the `Comp` that absorbed them).
#[derive(Debug)]
pub struct Contracted {
    /// Contracted vertex table. `vertices[i].id == base + i`.
    pub vertices: Vec<Vertex>,
    /// Old id → new id, total over the input region.
    pub map: HashMap<VertexId, VertexId>,
    /// New id of the region root.
    pub root: VertexId,
}

/// Contract the expanded region rooted at `root`.
///
/// - `mpi_flags`: per-function transitive does-MPI flags (for
///   `RecursiveCall` preservation).
/// - `max_loop_depth`: the paper's `MaxLoopDepth` knob.
/// - `base`: id offset for the output table (non-zero when splicing a
///   resolved indirect call into an existing PSG).
pub fn contract(
    expanded: &[Vertex],
    root: VertexId,
    mpi_flags: &HashMap<String, bool>,
    max_loop_depth: u32,
    base: VertexId,
) -> Contracted {
    let mut ctx = Ctx {
        expanded,
        mpi_flags,
        max_loop_depth,
        subtree_mpi: vec![None; expanded.len()],
        out: Vec::new(),
        map: HashMap::with_capacity(expanded.len()),
        base,
    };
    // The root is always kept.
    let new_root = ctx.alloc_from(&expanded[root as usize], None);
    ctx.map.insert(root, new_root);
    let pieces = ctx.contract_seq(&expanded[root as usize].children.all(), new_root);
    let children = ctx.seal_pieces(pieces, new_root);
    ctx.out[(new_root - base) as usize].children = Children::Seq(children);
    ctx.fixup_recursive_targets();
    Contracted {
        vertices: ctx.out,
        map: ctx.map,
        root: new_root,
    }
}

struct Ctx<'a> {
    expanded: &'a [Vertex],
    mpi_flags: &'a HashMap<String, bool>,
    max_loop_depth: u32,
    subtree_mpi: Vec<Option<bool>>,
    out: Vec<Vertex>,
    map: HashMap<VertexId, VertexId>,
    base: VertexId,
}

/// A contracted child: either a kept vertex or foldable material awaiting
/// coalescing with its neighbours.
enum Piece {
    Keep(VertexId),
    Fold(FoldGroup),
}

/// Foldable statements accumulated from one or more old vertices.
struct FoldGroup {
    old_ids: Vec<VertexId>,
    stmt_ids: Vec<NodeId>,
    span: Span,
    func: String,
    loop_depth: u32,
}

impl<'a> Ctx<'a> {
    fn alloc_from(&mut self, old: &Vertex, parent: Option<VertexId>) -> VertexId {
        let id = self.base + self.out.len() as VertexId;
        self.out.push(Vertex {
            id,
            kind: old.kind,
            span: old.span.clone(),
            func: old.func.clone(),
            stmt_ids: old.stmt_ids.clone(),
            parent,
            children: Children::none(),
            loop_depth: old.loop_depth,
        });
        id
    }

    /// Does the subtree rooted at `v` contain MPI (or an unresolved call
    /// that might)?
    fn subtree_mpi(&mut self, v: VertexId) -> bool {
        if let Some(flag) = self.subtree_mpi[v as usize] {
            return flag;
        }
        let vertex = &self.expanded[v as usize];
        let flag = match vertex.kind {
            VertexKind::Mpi(_) | VertexKind::CallSite => true,
            VertexKind::RecursiveCall(target) => {
                let callee = &self.expanded[target as usize].func;
                self.mpi_flags.get(callee).copied().unwrap_or(false)
            }
            _ => {
                let children = vertex.children.all();
                children.into_iter().any(|c| self.subtree_mpi(c))
            }
        };
        self.subtree_mpi[v as usize] = Some(flag);
        flag
    }

    fn contract_seq(&mut self, old_ids: &[VertexId], new_parent: VertexId) -> Vec<Piece> {
        old_ids
            .iter()
            .flat_map(|&id| self.contract_vertex(id, new_parent))
            .collect()
    }

    /// Contract one vertex. A dissolved MPI-free branch yields multiple
    /// pieces (its own statement plus the contracted arm contents), so
    /// the result is a list.
    fn contract_vertex(&mut self, old_id: VertexId, new_parent: VertexId) -> Vec<Piece> {
        let old = &self.expanded[old_id as usize];
        match old.kind {
            VertexKind::Root => unreachable!("root handled by `contract`"),
            VertexKind::Mpi(_) | VertexKind::CallSite => {
                let old = old.clone();
                let id = self.alloc_from(&old, Some(new_parent));
                self.map.insert(old_id, id);
                vec![Piece::Keep(id)]
            }
            VertexKind::RecursiveCall(_) => {
                if self.subtree_mpi(old_id) {
                    let old = old.clone();
                    let id = self.alloc_from(&old, Some(new_parent));
                    self.map.insert(old_id, id);
                    vec![Piece::Keep(id)]
                } else {
                    vec![Piece::Fold(self.fold_subtree(old_id))]
                }
            }
            VertexKind::Comp => vec![Piece::Fold(self.fold_subtree(old_id))],
            VertexKind::Branch => {
                if self.subtree_mpi(old_id) {
                    let old = old.clone();
                    let id = self.alloc_from(&old, Some(new_parent));
                    self.map.insert(old_id, id);
                    let Children::Arms { then_arm, else_arm } = &old.children else {
                        unreachable!("branch children are arms")
                    };
                    let t_pieces = self.contract_seq(then_arm, id);
                    let t = self.seal_pieces(t_pieces, id);
                    let e_pieces = self.contract_seq(else_arm, id);
                    let e = self.seal_pieces(e_pieces, id);
                    self.out[(id - self.base) as usize].children = Children::Arms {
                        then_arm: t,
                        else_arm: e,
                    };
                    vec![Piece::Keep(id)]
                } else if self.has_keepable_loop(old_id) {
                    // Paper rule: among MPI-free structures only loops
                    // are preserved. The branch dissolves, but loops in
                    // its arms keep their own vertices.
                    let old = old.clone();
                    let mut pieces = vec![Piece::Fold(FoldGroup {
                        old_ids: vec![old_id],
                        stmt_ids: old.stmt_ids.clone(),
                        span: old.span.clone(),
                        func: old.func.clone(),
                        loop_depth: old.loop_depth,
                    })];
                    pieces.extend(self.contract_seq(&old.children.all(), new_parent));
                    pieces
                } else {
                    vec![Piece::Fold(self.fold_subtree(old_id))]
                }
            }
            VertexKind::Loop => {
                let keep = self.subtree_mpi(old_id) || old.loop_depth < self.max_loop_depth;
                if keep {
                    let old = old.clone();
                    let id = self.alloc_from(&old, Some(new_parent));
                    self.map.insert(old_id, id);
                    let kids = old.children.all();
                    let pieces = self.contract_seq(&kids, id);
                    let children = self.seal_pieces(pieces, id);
                    self.out[(id - self.base) as usize].children = Children::Seq(children);
                    vec![Piece::Keep(id)]
                } else {
                    vec![Piece::Fold(self.fold_subtree(old_id))]
                }
            }
        }
    }

    /// Whether an MPI-free subtree contains a loop that the depth rule
    /// would preserve.
    fn has_keepable_loop(&self, old_id: VertexId) -> bool {
        let mut stack = self.expanded[old_id as usize].children.all();
        while let Some(v) = stack.pop() {
            let vertex = &self.expanded[v as usize];
            if vertex.kind == VertexKind::Loop && vertex.loop_depth < self.max_loop_depth {
                return true;
            }
            stack.extend(vertex.children.all());
        }
        false
    }

    /// Collect an entire MPI-free subtree into one fold group.
    fn fold_subtree(&mut self, old_id: VertexId) -> FoldGroup {
        let old = &self.expanded[old_id as usize];
        let mut group = FoldGroup {
            old_ids: vec![old_id],
            stmt_ids: old.stmt_ids.clone(),
            span: old.span.clone(),
            func: old.func.clone(),
            loop_depth: old.loop_depth,
        };
        let mut stack = old.children.all();
        stack.reverse();
        while let Some(v) = stack.pop() {
            let vertex = &self.expanded[v as usize];
            debug_assert!(
                !matches!(vertex.kind, VertexKind::Mpi(_) | VertexKind::CallSite),
                "folded subtrees must be MPI-free"
            );
            group.old_ids.push(v);
            group.stmt_ids.extend_from_slice(&vertex.stmt_ids);
            let mut kids = vertex.children.all();
            kids.reverse();
            stack.extend(kids);
        }
        group
    }

    /// Turn a piece list into a child-id list, coalescing consecutive
    /// fold groups into single `Comp` vertices.
    fn seal_pieces(&mut self, pieces: Vec<Piece>, new_parent: VertexId) -> Vec<VertexId> {
        let mut children = Vec::with_capacity(pieces.len());
        let mut pending: Option<FoldGroup> = None;
        for piece in pieces {
            match piece {
                Piece::Keep(id) => {
                    if let Some(group) = pending.take() {
                        children.push(self.emit_comp(group, new_parent));
                    }
                    children.push(id);
                }
                Piece::Fold(group) => match &mut pending {
                    Some(acc) => {
                        acc.old_ids.extend(group.old_ids);
                        acc.stmt_ids.extend(group.stmt_ids);
                    }
                    None => pending = Some(group),
                },
            }
        }
        if let Some(group) = pending.take() {
            children.push(self.emit_comp(group, new_parent));
        }
        children
    }

    fn emit_comp(&mut self, group: FoldGroup, new_parent: VertexId) -> VertexId {
        let id = self.base + self.out.len() as VertexId;
        self.out.push(Vertex {
            id,
            kind: VertexKind::Comp,
            span: group.span,
            func: group.func,
            stmt_ids: group.stmt_ids,
            parent: Some(new_parent),
            children: Children::none(),
            loop_depth: group.loop_depth,
        });
        for old in group.old_ids {
            self.map.insert(old, id);
        }
        id
    }

    /// Repoint `RecursiveCall` targets at the contracted ids.
    fn fixup_recursive_targets(&mut self) {
        for v in &mut self.out {
            if let VertexKind::RecursiveCall(target) = v.kind {
                if let Some(new_target) = self.map.get(&target) {
                    v.kind = VertexKind::RecursiveCall(*new_target);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inter::Expander;
    use crate::intra::{build_local, LocalPsg};
    use crate::vertex::MpiKind;
    use scalana_lang::parse_program;

    fn contract_src(src: &str, max_loop_depth: u32) -> (Vec<Vertex>, Contracted) {
        let program = parse_program("t.mmpi", src).unwrap();
        let locals: HashMap<String, LocalPsg> = program
            .functions
            .iter()
            .map(|f| (f.name.clone(), build_local(f)))
            .collect();
        let flags = crate::inter::mpi_closure(&locals);
        let mut contexts = Vec::new();
        let ex = Expander::expand_program(&locals, &mut contexts);
        let contracted = contract(&ex.vertices, ex.root, &flags, max_loop_depth, 0);
        (ex.vertices, contracted)
    }

    fn kinds(c: &Contracted, ids: &[VertexId]) -> Vec<VertexKind> {
        ids.iter().map(|&i| c.vertices[i as usize].kind).collect()
    }

    /// Paper Fig. 3/4: with MaxLoopDepth=1, Loop1 (contains MPI) stays;
    /// Loop1.1 and Loop1.2 fold with the preceding `let` into one Comp.
    #[test]
    fn fig4_contraction() {
        let src = r#"
            param N = 16;
            fn main() {
                for i in 0 .. N {
                    let a = i;
                    for j in 0 .. i { comp(cycles = j); }
                    for k in 0 .. i { comp(cycles = k); }
                    foo();
                    bcast(root = 0, bytes = 8);
                }
            }
            fn foo() {
                if rank % 2 == 0 { send(dst = rank + 1, tag = 0, bytes = 8); }
                else { recv(src = rank - 1, tag = 0); }
            }
        "#;
        let (_, c) = contract_src(src, 1);
        let root = &c.vertices[c.root as usize];
        let Children::Seq(top) = &root.children else {
            panic!()
        };
        assert_eq!(kinds(&c, top), vec![VertexKind::Loop]);
        let loop1 = &c.vertices[top[0] as usize];
        let Children::Seq(body) = &loop1.children else {
            panic!()
        };
        // [Comp(let + Loop1.1 + Loop1.2), Branch, Bcast] — matching Fig 4(c).
        assert_eq!(
            kinds(&c, body),
            vec![
                VertexKind::Comp,
                VertexKind::Branch,
                VertexKind::Mpi(MpiKind::Bcast)
            ]
        );
        // The merged Comp absorbed five statements: let, 2 loops, 2 comps.
        let comp = &c.vertices[body[0] as usize];
        assert_eq!(comp.stmt_ids.len(), 5);
    }

    #[test]
    fn mpi_free_loops_kept_up_to_max_depth() {
        let src = "fn main() { for i in 0 .. 2 { for j in 0 .. 2 { for k in 0 .. 2 { \
                    comp(cycles = 1); } } } barrier(); }";
        // Depth 2: keep i and j loops, fold the k loop.
        let (_, c) = contract_src(src, 2);
        let loops = c
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Loop)
            .count();
        assert_eq!(loops, 2);
        // Depth 10: keep everything.
        let (_, c) = contract_src(src, 10);
        let loops = c
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Loop)
            .count();
        assert_eq!(loops, 3);
        // Depth 0: fold all MPI-free loops.
        let (_, c) = contract_src(src, 0);
        let loops = c
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Loop)
            .count();
        assert_eq!(loops, 0);
    }

    #[test]
    fn mpi_loops_kept_regardless_of_depth() {
        let src = "fn main() { for i in 0 .. 2 { for j in 0 .. 2 { for k in 0 .. 2 { \
                    barrier(); } } } }";
        let (_, c) = contract_src(src, 0);
        let loops = c
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Loop)
            .count();
        assert_eq!(loops, 3, "MPI-bearing loops survive MaxLoopDepth=0");
    }

    #[test]
    fn mpi_free_branch_folds() {
        let src = "fn main() { if rank == 0 { comp(cycles = 5); } else { comp(cycles = 9); } \
                    barrier(); }";
        let (_, c) = contract_src(src, 10);
        assert!(c.vertices.iter().all(|v| v.kind != VertexKind::Branch));
        // But an MPI-bearing branch is kept.
        let src = "fn main() { if rank == 0 { barrier(); } else { comp(cycles = 9); } }";
        let (_, c) = contract_src(src, 10);
        assert!(c.vertices.iter().any(|v| v.kind == VertexKind::Branch));
    }

    #[test]
    fn consecutive_comp_statements_merge() {
        let src = "fn main() { let a = 1; let b = 2; comp(cycles = 3); barrier(); \
                    let c = 4; comp(cycles = 5); }";
        let (_, c) = contract_src(src, 10);
        let comps: Vec<_> = c
            .vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Comp)
            .collect();
        assert_eq!(comps.len(), 2, "one Comp before the barrier, one after");
        assert_eq!(comps[0].stmt_ids.len(), 3);
        assert_eq!(comps[1].stmt_ids.len(), 2);
    }

    #[test]
    fn map_covers_every_old_vertex() {
        let src = r#"
            fn main() {
                for i in 0 .. 4 {
                    let x = i;
                    if x % 2 == 0 { comp(cycles = x); } else { comp(cycles = 1); }
                }
                work();
            }
            fn work() { for j in 0 .. 2 { comp(cycles = j); } allreduce(bytes = 8); }
        "#;
        let (expanded, c) = contract_src(src, 1);
        for v in &expanded {
            let new =
                c.map.get(&v.id).copied().unwrap_or_else(|| {
                    panic!("old vertex {} ({:?}) missing from map", v.id, v.kind)
                });
            assert!((new as usize) < c.vertices.len());
        }
    }

    #[test]
    fn contraction_reduces_vertex_count_substantially() {
        // Table II reports ~68% average reduction; assert the direction.
        let src = r#"
            fn main() {
                for i in 0 .. 8 {
                    let a = i; let b = a + 1; let c = b * 2;
                    for j in 0 .. 4 { let t = j; comp(cycles = t); }
                    if a % 2 == 0 { let u = 1; comp(cycles = u); } else { let w = 2; comp(cycles = w); }
                    sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
                             sendtag = 0, recvtag = 0, bytes = 8);
                }
                allreduce(bytes = 8);
            }
        "#;
        let (expanded, c) = contract_src(src, 1);
        assert!(
            c.vertices.len() * 2 < expanded.len(),
            "contraction should reduce vertices by >50% here: {} -> {}",
            expanded.len(),
            c.vertices.len()
        );
    }

    #[test]
    fn recursive_call_without_mpi_folds() {
        let src = "fn main() { quiet(3); barrier(); } \
                    fn quiet(n) { if n > 0 { quiet(n - 1); } comp(cycles = n); }";
        let (_, c) = contract_src(src, 10);
        assert!(
            c.vertices
                .iter()
                .all(|v| !matches!(v.kind, VertexKind::RecursiveCall(_))),
            "MPI-free recursion folds into Comp"
        );
    }

    #[test]
    fn recursive_call_with_mpi_is_kept_and_retargeted() {
        let src = "fn main() { noisy(3); } \
                    fn noisy(n) { if n > 0 { noisy(n - 1); } barrier(); }";
        let (_, c) = contract_src(src, 10);
        let rec = c
            .vertices
            .iter()
            .find(|v| matches!(v.kind, VertexKind::RecursiveCall(_)))
            .expect("recursive call kept");
        let VertexKind::RecursiveCall(target) = rec.kind else {
            unreachable!()
        };
        assert!(
            (target as usize) < c.vertices.len(),
            "target remapped into new table"
        );
    }

    #[test]
    fn parent_links_hold_after_contraction() {
        let src = "fn main() { for i in 0 .. 2 { if rank == 0 { barrier(); } \
                    comp(cycles = 1); } }";
        let (_, c) = contract_src(src, 10);
        for v in &c.vertices {
            for child in v.children.all() {
                assert_eq!(c.vertices[child as usize].parent, Some(v.id));
            }
        }
    }
}
