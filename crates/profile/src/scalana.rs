//! The ScalAna profiler (paper §III-B): sampling-based performance data
//! collection plus graph-guided communication dependence recording.

use crate::codec::RecordWriter;
use crate::data::ProfileData;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scalana_graph::VertexPerf;
use scalana_mpisim::hook::{
    CommDepEvent, CompEvent, Hook, IndirectCallEvent, MpiEnterEvent, MpiExitEvent,
};
use std::collections::HashSet;

/// ScalAna profiler knobs (paper §V user parameters plus cost model).
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Timer sampling frequency (paper: 200 Hz, matching HPCToolkit).
    pub sampling_hz: f64,
    /// Virtual-time cost of one sample (PSG-vertex attribution is a map
    /// lookup — much cheaper than a full call-stack unwind).
    pub sample_cost: f64,
    /// Cost of one PMPI wrapper invocation (enter or exit).
    pub mpi_event_cost: f64,
    /// Cost of persisting one communication record.
    pub comm_record_cost: f64,
    /// Random-sampling instrumentation (paper §III-B2): probability that
    /// a communication's parameters are examined at all. 1.0 records
    /// every dependence; lower rates trade completeness for overhead.
    pub comm_check_probability: f64,
    /// Graph-guided communication compression (paper §III-B2): persist a
    /// communication's parameters only once per dependence-edge key.
    pub graph_compression: bool,
    /// `true`: attribute exact event durations (the engine knows them);
    /// `false`: quantize attribution to whole sampling periods, modeling
    /// real timer-interrupt attribution error.
    pub exact_attribution: bool,
    /// RNG seed for the random-sampling instrumentation.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sampling_hz: 200.0,
            sample_cost: 1.5e-6,
            mpi_event_cost: 0.15e-6,
            comm_record_cost: 0.4e-6,
            comm_check_probability: 1.0,
            graph_compression: true,
            exact_attribution: true,
            seed: 0xa11c,
        }
    }
}

/// The ScalAna profiling hook. Attach with
/// [`Simulation::with_hook`](scalana_mpisim::Simulation::with_hook), run,
/// then [`take_data`](ScalAnaProfiler::take_data).
pub struct ScalAnaProfiler {
    config: ProfilerConfig,
    data: ProfileData,
    writer: RecordWriter,
    /// Per-rank fraction of a sampling period already elapsed.
    sample_phase: Vec<f64>,
    /// Per-rank RNG for the random-sampling instrumentation.
    rngs: Vec<SmallRng>,
    /// Compression keys already persisted.
    recorded_keys: HashSet<(usize, u32, usize, u32, i64, u64)>,
    /// Indirect calls already recorded.
    recorded_indirect: HashSet<(u32, u32, String)>,
}

impl ScalAnaProfiler {
    /// New profiler with the given configuration.
    pub fn new(config: ProfilerConfig) -> ScalAnaProfiler {
        ScalAnaProfiler {
            config,
            data: ProfileData::default(),
            writer: RecordWriter::new(),
            sample_phase: Vec::new(),
            rngs: Vec::new(),
            recorded_keys: HashSet::new(),
            recorded_indirect: HashSet::new(),
        }
    }

    /// Paper-default configuration.
    pub fn with_defaults() -> ScalAnaProfiler {
        ScalAnaProfiler::new(ProfilerConfig::default())
    }

    /// Finish the run: persist the per-vertex performance table and
    /// return the collected data.
    pub fn take_data(mut self) -> ProfileData {
        // Post-mortem dump: one record per touched (vertex, rank).
        let mut entries: Vec<_> = self.data.perf.iter().collect();
        entries.sort_by_key(|((v, r), _)| (*v, *r));
        for ((vertex, rank), perf) in entries {
            self.writer.vertex_perf(
                *vertex,
                *rank as u32,
                perf.time,
                perf.tot_ins,
                perf.wait_time,
            );
        }
        self.data.storage_bytes = self.writer.bytes_written();
        self.data
    }

    /// Number of timer samples so far (tests/ablation).
    pub fn sample_count(&self) -> u64 {
        self.data.sample_count
    }

    fn period(&self) -> f64 {
        1.0 / self.config.sampling_hz
    }

    /// Count timer ticks inside an interval and update the rank's phase.
    fn take_samples(&mut self, rank: usize, duration: f64) -> u64 {
        let period = self.period();
        let total = self.sample_phase[rank] + duration;
        let n = (total / period).floor() as u64;
        self.sample_phase[rank] = total - n as f64 * period;
        self.data.sample_count += n;
        n
    }
}

impl Hook for ScalAnaProfiler {
    fn on_run_start(&mut self, nprocs: usize) {
        self.data = ProfileData::new(nprocs);
        self.sample_phase = vec![0.0; nprocs];
        self.rngs = (0..nprocs)
            .map(|r| SmallRng::seed_from_u64(self.config.seed.wrapping_add(r as u64)))
            .collect();
    }

    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        let n = self.take_samples(ev.rank, ev.duration);
        let delta = if self.config.exact_attribution {
            VertexPerf {
                time: ev.duration,
                count: 1,
                tot_ins: ev.tot_ins,
                tot_cyc: ev.tot_cyc,
                lst_ins: ev.lst_ins,
                l2_miss: ev.l2_miss,
                br_miss: ev.br_miss,
                ..Default::default()
            }
        } else {
            // Timer-quantized attribution: whole periods only.
            let seen = n as f64 * self.period();
            let scale = if ev.duration > 0.0 {
                seen / ev.duration
            } else {
                0.0
            };
            VertexPerf {
                time: seen,
                count: 1,
                tot_ins: ev.tot_ins * scale,
                tot_cyc: ev.tot_cyc * scale,
                lst_ins: ev.lst_ins * scale,
                l2_miss: ev.l2_miss * scale,
                br_miss: ev.br_miss * scale,
                ..Default::default()
            }
        };
        if delta.time > 0.0 || delta.count > 0 {
            self.data.add_perf(ev.vertex, ev.rank, &delta);
        }
        n as f64 * self.config.sample_cost
    }

    fn on_mpi_enter(&mut self, _ev: &MpiEnterEvent) -> f64 {
        self.config.mpi_event_cost
    }

    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        // PMPI wrappers time the operation exactly.
        self.take_samples(ev.rank, ev.elapsed);
        let delta = VertexPerf {
            time: ev.elapsed,
            count: 1,
            wait_time: ev.wait_time,
            ..Default::default()
        };
        self.data.add_perf(ev.vertex, ev.rank, &delta);
        self.config.mpi_event_cost
    }

    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        // Random-sampling instrumentation: maybe skip this message.
        if self.config.comm_check_probability < 1.0 {
            let roll: f64 = self.rngs[ev.dst_rank].gen();
            if roll > self.config.comm_check_probability {
                return 0.0;
            }
        }
        self.data.add_comm(
            ev.src_rank,
            ev.src_vertex,
            ev.dst_rank,
            ev.dst_vertex,
            ev.bytes,
            ev.wait_time,
        );
        let key = (
            ev.src_rank,
            ev.src_vertex,
            ev.dst_rank,
            ev.dst_vertex,
            ev.tag,
            ev.bytes,
        );
        if self.config.graph_compression && !self.recorded_keys.insert(key) {
            // Same parameters already persisted: the PSG's structure
            // makes the repeat redundant (graph-guided compression).
            return 0.02e-6;
        }
        self.writer.comm_dep(
            ev.src_rank as u32,
            ev.src_vertex,
            ev.dst_vertex,
            ev.tag as i32,
            ev.bytes,
        );
        self.config.comm_record_cost
    }

    fn on_indirect_call(&mut self, ev: &IndirectCallEvent) -> f64 {
        let key = (ev.ctx, ev.stmt, ev.callee.clone());
        if self.recorded_indirect.insert(key) {
            self.data
                .indirect_calls
                .push((ev.ctx, ev.stmt, ev.callee.clone()));
            self.writer.indirect_call(ev.ctx, ev.stmt, &ev.callee);
            self.config.comm_record_cost
        } else {
            0.02e-6
        }
    }

    fn on_run_end(&mut self, rank_elapsed: &[f64]) {
        self.data.rank_elapsed = rank_elapsed.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;
    use scalana_mpisim::{SimConfig, Simulation};

    fn profile(src: &str, nprocs: usize, config: ProfilerConfig) -> ProfileData {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut profiler = ScalAnaProfiler::new(config);
        Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut profiler)
            .run()
            .unwrap();
        profiler.take_data()
    }

    const RING: &str = r#"
        fn main() {
            for it in 0 .. 10 {
                comp(cycles = 2_300_000); // 1 ms
                sendrecv(dst = (rank + 1) % nprocs,
                         src = (rank + nprocs - 1) % nprocs,
                         sendtag = 0, recvtag = 0, bytes = 4k);
            }
            allreduce(bytes = 8);
        }
    "#;

    #[test]
    fn collects_perf_and_comm() {
        let data = profile(RING, 4, ProfilerConfig::default());
        assert_eq!(data.nprocs, 4);
        assert!(!data.perf.is_empty());
        // Ring: each rank receives from its left neighbour, plus possible
        // collective straggler edges.
        assert!(data.comm_edge_count() >= 4);
        assert!(data.storage_bytes > 0);
        assert_eq!(data.rank_elapsed.len(), 4);
    }

    #[test]
    fn sampling_frequency_drives_sample_count() {
        let lo = profile(
            RING,
            2,
            ProfilerConfig {
                sampling_hz: 100.0,
                ..Default::default()
            },
        );
        let hi = profile(
            RING,
            2,
            ProfilerConfig {
                sampling_hz: 10_000.0,
                ..Default::default()
            },
        );
        assert!(hi.sample_count > lo.sample_count * 10);
    }

    #[test]
    fn compression_bounds_storage_under_iteration_growth() {
        let many_iters = RING.replace("0 .. 10", "0 .. 100");
        let compressed = profile(&many_iters, 4, ProfilerConfig::default());
        let raw = profile(
            &many_iters,
            4,
            ProfilerConfig {
                graph_compression: false,
                ..Default::default()
            },
        );
        // Without compression every matched message is persisted; with
        // compression repeats collapse onto the first record.
        assert!(
            raw.storage_bytes > compressed.storage_bytes * 2,
            "raw {} vs compressed {}",
            raw.storage_bytes,
            compressed.storage_bytes
        );
        // Aggregated dependence info is identical either way.
        assert_eq!(raw.comm_edge_count(), compressed.comm_edge_count());
    }

    #[test]
    fn comm_sampling_rate_drops_edges() {
        let full = profile(RING, 4, ProfilerConfig::default());
        let sampled = profile(
            RING,
            4,
            ProfilerConfig {
                comm_check_probability: 0.1,
                ..Default::default()
            },
        );
        assert!(
            sampled.comm.values().map(|a| a.count).sum::<u64>()
                < full.comm.values().map(|a| a.count).sum::<u64>()
        );
    }

    #[test]
    fn quantized_attribution_loses_short_events() {
        let src = "fn main() { comp(cycles = 23_000); }"; // 10 µs << 5 ms period
        let exact = profile(src, 1, ProfilerConfig::default());
        let quantized = profile(
            src,
            1,
            ProfilerConfig {
                exact_attribution: false,
                ..Default::default()
            },
        );
        let sum_t = |d: &ProfileData| d.perf.values().map(|p| p.time).sum::<f64>();
        assert!(sum_t(&exact) > 0.0);
        assert!(sum_t(&quantized) < sum_t(&exact));
    }

    #[test]
    fn mpi_wait_time_is_attributed() {
        let src = r#"
            fn main() {
                if rank == 0 { comp(cycles = 23_000_000); }
                allreduce(bytes = 8);
            }
        "#;
        let data = profile(src, 4, ProfilerConfig::default());
        let total_wait: f64 = data.perf.values().map(|p| p.wait_time).sum();
        assert!(
            total_wait > 0.02,
            "three ranks wait ~10ms each: {total_wait}"
        );
    }

    #[test]
    fn indirect_calls_recorded_once() {
        let src = r#"
            fn main() {
                let f = &leaf;
                for i in 0 .. 5 { call f(); }
            }
            fn leaf() { comp(cycles = 100); }
        "#;
        let data = profile(src, 2, ProfilerConfig::default());
        assert_eq!(
            data.indirect_calls.len(),
            1,
            "deduplicated across iterations and ranks"
        );
        assert_eq!(data.indirect_calls[0].2, "leaf");
    }
}
