//! Tool overhead and storage measurement (paper Table I, Fig. 10/11/13).
//!
//! Runs the same workload uninstrumented (baseline) and under each tool,
//! on identical configurations (same seeds, so identical workloads), and
//! reports runtime overhead percentages and storage bytes.

use crate::flat::{FlatConfig, FlatProfilerHook};
use crate::scalana::{ProfilerConfig, ScalAnaProfiler};
use crate::tracer::{TracerConfig, TracerHook};
use scalana_graph::Psg;
use scalana_lang::Program;
use scalana_mpisim::{SimConfig, SimError, Simulation};

/// Which tool to attach.
#[derive(Debug, Clone)]
pub enum ToolKind {
    /// ScalAna profiler.
    ScalAna(ProfilerConfig),
    /// Scalasca-like tracer.
    Tracer(TracerConfig),
    /// HPCToolkit-like flat profiler.
    Flat(FlatConfig),
}

impl ToolKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ToolKind::ScalAna(_) => "ScalAna",
            ToolKind::Tracer(_) => "Scalasca-like tracer",
            ToolKind::Flat(_) => "HPCToolkit-like profiler",
        }
    }
}

/// One tool's measured run.
#[derive(Debug, Clone)]
pub struct ToolRun {
    /// Tool name.
    pub name: &'static str,
    /// End-to-end runtime with the tool attached.
    pub elapsed: f64,
    /// Runtime overhead vs baseline, percent.
    pub overhead_pct: f64,
    /// Bytes the tool persists.
    pub storage_bytes: u64,
}

/// Baseline plus per-tool measurements.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Uninstrumented runtime.
    pub baseline: f64,
    /// Per-tool rows.
    pub tools: Vec<ToolRun>,
}

impl OverheadReport {
    /// Row by tool name.
    pub fn tool(&self, name: &str) -> Option<&ToolRun> {
        self.tools.iter().find(|t| t.name == name)
    }
}

/// Measure baseline and tool runs. Deterministic: the same `config`
/// (seeds included) is used for every run.
pub fn measure_overhead(
    program: &Program,
    psg: &Psg,
    config: &SimConfig,
    tools: &[ToolKind],
) -> Result<OverheadReport, SimError> {
    let baseline = Simulation::new(program, psg, config.clone())
        .run()?
        .total_time();
    let mut rows = Vec::with_capacity(tools.len());
    for tool in tools {
        let (elapsed, storage) = match tool {
            ToolKind::ScalAna(cfg) => {
                let mut hook = ScalAnaProfiler::new(cfg.clone());
                let res = Simulation::new(program, psg, config.clone())
                    .with_hook(&mut hook)
                    .run()?;
                let data = hook.take_data();
                (res.total_time(), data.storage_bytes)
            }
            ToolKind::Tracer(cfg) => {
                let mut hook = TracerHook::new(cfg.clone());
                let res = Simulation::new(program, psg, config.clone())
                    .with_hook(&mut hook)
                    .run()?;
                (res.total_time(), hook.storage_bytes())
            }
            ToolKind::Flat(cfg) => {
                let mut hook = FlatProfilerHook::new(cfg.clone());
                let res = Simulation::new(program, psg, config.clone())
                    .with_hook(&mut hook)
                    .run()?;
                (res.total_time(), hook.storage_bytes())
            }
        };
        rows.push(ToolRun {
            name: tool.name(),
            elapsed,
            overhead_pct: if baseline > 0.0 {
                (elapsed - baseline) / baseline * 100.0
            } else {
                0.0
            },
            storage_bytes: storage,
        });
    }
    Ok(OverheadReport {
        baseline,
        tools: rows,
    })
}

/// Human-readable byte size (KB/MB/GB), for harness tables.
pub fn human_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.2} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;

    /// A CG-flavoured kernel: iterative compute + ring exchange +
    /// reduction, enough events for tool costs to differentiate.
    const KERNEL: &str = r#"
        fn main() {
            for it in 0 .. 1000 {
                comp(cycles = 2_300_000); // 1 ms
                sendrecv(dst = (rank + 1) % nprocs,
                         src = (rank + nprocs - 1) % nprocs,
                         sendtag = it, recvtag = it, bytes = 16k);
                allreduce(bytes = 8);
            }
        }
    "#;

    #[test]
    fn tool_overhead_ordering_matches_paper() {
        let program = parse_program("t.mmpi", KERNEL).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let report = measure_overhead(
            &program,
            &psg,
            &SimConfig::with_nprocs(8),
            &[
                ToolKind::ScalAna(ProfilerConfig::default()),
                ToolKind::Tracer(TracerConfig::default()),
                ToolKind::Flat(FlatConfig::default()),
            ],
        )
        .unwrap();
        let scalana = report.tool("ScalAna").unwrap();
        let tracer = report.tool("Scalasca-like tracer").unwrap();
        let flat = report.tool("HPCToolkit-like profiler").unwrap();
        // Paper Table I shape: tracing ≫ profiling ≥ ScalAna (overhead),
        // tracing ≫ profiling ≫ ScalAna (storage).
        assert!(
            tracer.overhead_pct > scalana.overhead_pct,
            "tracer {ativ} vs scalana {b}",
            ativ = tracer.overhead_pct,
            b = scalana.overhead_pct
        );
        assert!(tracer.storage_bytes > flat.storage_bytes);
        assert!(flat.storage_bytes > scalana.storage_bytes);
        assert!(scalana.overhead_pct >= 0.0);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.00 GB");
    }
}
