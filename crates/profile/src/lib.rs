//! # scalana-profile — runtime data collection tools
//!
//! Three performance tools attach to the simulator's PMPI-style hook
//! layer, mirroring the paper's evaluation matrix:
//!
//! - [`ScalAnaProfiler`] — the paper's tool (§III-B): sampling-based
//!   performance profiling at a configurable frequency (200 Hz default,
//!   matching the paper's HPCToolkit-parity setting), graph-guided
//!   communication compression (record a communication's parameters once
//!   per dependence-edge key, skip repeats), random-sampling
//!   instrumentation, and indirect-call collection. Produces
//!   [`ProfileData`] from which the PPG is assembled.
//! - [`TracerHook`] — the Scalasca-like tracing baseline: every event
//!   (computation region, MPI enter/exit, message) is timestamped and
//!   appended to a binary trace. High per-event cost, storage linear in
//!   event count — reproducing the paper's GB-scale traces and ~25–40%
//!   overheads.
//! - [`FlatProfilerHook`] — the HPCToolkit-like profiling baseline:
//!   call-path sampling without program structure or communication
//!   dependence. Cheap, MB-scale storage, but its output contains only
//!   hot spots, not causal chains.
//!
//! All three declare per-event virtual-time costs, so tool overhead is a
//! *measured* quantity inside the simulation ([`overhead`]).

pub mod codec;
pub mod data;
pub mod flat;
pub mod overhead;
pub mod recorder;
pub mod scalana;
pub mod store;
pub mod tracer;

pub use data::ProfileData;
pub use flat::{FlatConfig, FlatProfilerHook};
pub use overhead::{measure_overhead, OverheadReport, ToolRun};
pub use recorder::IndirectRecorder;
pub use scalana::{ProfilerConfig, ScalAnaProfiler};
pub use tracer::{TracerConfig, TracerHook};
