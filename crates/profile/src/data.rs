//! Collected profile data and PPG assembly.

use scalana_graph::{CommDep, CtxId, Ppg, Psg, VertexId, VertexPerf};
use scalana_lang::ast::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything one ScalAna profiling run produces: the per-vertex
/// performance vectors, aggregated communication dependences, and storage
/// accounting. `ScalAna-detect` turns one of these per process count into
/// a PPG.
#[derive(Debug, Clone, Default)]
pub struct ProfileData {
    /// Ranks in the run.
    pub nprocs: usize,
    /// Per-(vertex, rank) performance vectors.
    pub perf: HashMap<(VertexId, usize), VertexPerf>,
    /// Aggregated communication-dependence edges, keyed by
    /// (src_rank, src_vertex, dst_rank, dst_vertex).
    pub comm: HashMap<(usize, VertexId, usize, VertexId), CommAgg>,
    /// Per-rank end-to-end time.
    pub rank_elapsed: Vec<f64>,
    /// Bytes the tool would persist.
    pub storage_bytes: u64,
    /// Timer samples taken.
    pub sample_count: u64,
    /// Indirect calls observed (context, statement, callee).
    pub indirect_calls: Vec<(CtxId, NodeId, String)>,
}

/// Aggregate over one dependence edge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommAgg {
    /// Matched messages.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total receiver wait seconds.
    pub wait_time: f64,
}

impl ProfileData {
    /// New empty container for `nprocs` ranks.
    pub fn new(nprocs: usize) -> ProfileData {
        ProfileData {
            nprocs,
            rank_elapsed: vec![0.0; nprocs],
            ..ProfileData::default()
        }
    }

    /// Merge a perf sample into a vertex's vector.
    pub fn add_perf(&mut self, vertex: VertexId, rank: usize, delta: &VertexPerf) {
        self.perf.entry((vertex, rank)).or_default().merge(delta);
    }

    /// Merge a communication dependence observation.
    pub fn add_comm(
        &mut self,
        src_rank: usize,
        src_vertex: VertexId,
        dst_rank: usize,
        dst_vertex: VertexId,
        bytes: u64,
        wait_time: f64,
    ) {
        let agg = self
            .comm
            .entry((src_rank, src_vertex, dst_rank, dst_vertex))
            .or_default();
        agg.count += 1;
        agg.bytes += bytes;
        agg.wait_time += wait_time;
    }

    /// Assemble the Program Performance Graph for this run.
    pub fn into_ppg(self, psg: Arc<Psg>) -> Ppg {
        let mut ppg = Ppg::new(psg, self.nprocs);
        ppg.rank_elapsed = self.rank_elapsed;
        for ((vertex, rank), perf) in self.perf {
            ppg.sync_with_psg();
            if (vertex as usize) < ppg.psg.vertex_count() {
                ppg.perf_mut(vertex, rank).merge(&perf);
            }
        }
        // Deterministic edge order for downstream analysis.
        let mut edges: Vec<_> = self.comm.into_iter().collect();
        edges.sort_by_key(|((sr, sv, dr, dv), _)| (*dr, *dv, *sr, *sv));
        for ((src_rank, src_vertex, dst_rank, dst_vertex), agg) in edges {
            ppg.add_comm(CommDep {
                src_rank,
                src_vertex,
                dst_rank,
                dst_vertex,
                count: agg.count,
                bytes: agg.bytes,
                wait_time: agg.wait_time,
            });
        }
        ppg
    }

    /// Total aggregated dependence edges.
    pub fn comm_edge_count(&self) -> usize {
        self.comm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;

    fn psg() -> Arc<Psg> {
        let src = "fn main() { comp(cycles = 10); send(dst = (rank + 1) % nprocs, tag = 0, \
                    bytes = 8); recv(src = (rank + nprocs - 1) % nprocs, tag = 0); }";
        let program = parse_program("t.mmpi", src).unwrap();
        Arc::new(build_psg(&program, &PsgOptions::default()))
    }

    #[test]
    fn perf_accumulates() {
        let mut data = ProfileData::new(2);
        let delta = VertexPerf {
            time: 0.5,
            count: 1,
            ..Default::default()
        };
        data.add_perf(1, 0, &delta);
        data.add_perf(1, 0, &delta);
        assert_eq!(data.perf[&(1, 0)].time, 1.0);
        assert_eq!(data.perf[&(1, 0)].count, 2);
    }

    #[test]
    fn comm_aggregates_by_edge() {
        let mut data = ProfileData::new(2);
        data.add_comm(0, 2, 1, 3, 64, 0.1);
        data.add_comm(0, 2, 1, 3, 64, 0.2);
        data.add_comm(1, 2, 0, 3, 64, 0.0);
        assert_eq!(data.comm_edge_count(), 2);
        let agg = data.comm[&(0, 2, 1, 3)];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.bytes, 128);
        assert!((agg.wait_time - 0.3).abs() < 1e-12);
    }

    #[test]
    fn into_ppg_transfers_everything() {
        let psg = psg();
        let mut data = ProfileData::new(2);
        data.rank_elapsed = vec![1.0, 2.0];
        data.add_perf(
            1,
            0,
            &VertexPerf {
                time: 0.5,
                count: 3,
                ..Default::default()
            },
        );
        data.add_comm(0, 1, 1, 2, 64, 0.25);
        let ppg = data.into_ppg(psg);
        assert_eq!(ppg.total_time(), 2.0);
        assert_eq!(ppg.perf(1, 0).count, 3);
        let deps = ppg.deps_into(1, 2);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].src_rank, 0);
        assert!((deps[0].wait_time - 0.25).abs() < 1e-12);
    }
}
