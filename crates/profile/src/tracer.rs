//! The tracing baseline (Scalasca-like).
//!
//! Records a timestamped event for *everything*: computation region
//! enter/exit, every MPI call, every matched message. Storage grows
//! linearly with event count and overhead with per-event cost — the
//! behaviour behind the paper's 6.77 GB / 25.3% Table I row and the
//! 28.26 GB Zeus-MP traces of Fig. 13.

use crate::codec::RecordWriter;
use scalana_mpisim::hook::{CommDepEvent, CompEvent, Hook, MpiEnterEvent, MpiExitEvent};

/// Trace event codes.
const EV_COMP: u8 = 0;
const EV_MPI_ENTER: u8 = 1;
const EV_MPI_EXIT: u8 = 2;
const EV_MESSAGE: u8 = 3;

/// Tracer cost model.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Virtual-time cost of appending one trace record (buffer write +
    /// timestamp + amortized flush).
    pub record_cost: f64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            record_cost: 1.2e-6,
        }
    }
}

/// The tracing hook.
pub struct TracerHook {
    config: TracerConfig,
    writer: RecordWriter,
    nprocs: usize,
    rank_elapsed: Vec<f64>,
}

impl TracerHook {
    /// New tracer.
    pub fn new(config: TracerConfig) -> TracerHook {
        TracerHook {
            config,
            writer: RecordWriter::new(),
            nprocs: 0,
            rank_elapsed: Vec::new(),
        }
    }

    /// Default cost model.
    pub fn with_defaults() -> TracerHook {
        TracerHook::new(TracerConfig::default())
    }

    /// Bytes of trace produced.
    pub fn storage_bytes(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Records written.
    pub fn record_count(&self) -> u64 {
        self.writer.record_count()
    }

    /// Per-rank elapsed times of the traced run.
    pub fn rank_elapsed(&self) -> &[f64] {
        &self.rank_elapsed
    }
}

impl Hook for TracerHook {
    fn on_run_start(&mut self, nprocs: usize) {
        self.nprocs = nprocs;
    }

    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        self.writer
            .trace_event(ev.rank as u32, ev.vertex, EV_COMP, ev.start, ev.duration);
        self.config.record_cost
    }

    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        self.writer.trace_event(
            ev.rank as u32,
            ev.vertex,
            EV_MPI_ENTER,
            ev.time,
            ev.bytes.unwrap_or(0) as f64,
        );
        self.config.record_cost
    }

    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        self.writer
            .trace_event(ev.rank as u32, ev.vertex, EV_MPI_EXIT, ev.time, ev.elapsed);
        self.config.record_cost
    }

    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        self.writer.trace_event(
            ev.dst_rank as u32,
            ev.dst_vertex,
            EV_MESSAGE,
            ev.time,
            ev.bytes as f64,
        );
        self.config.record_cost
    }

    fn on_run_end(&mut self, rank_elapsed: &[f64]) {
        self.rank_elapsed = rank_elapsed.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;
    use scalana_mpisim::{SimConfig, Simulation};

    const RING: &str = r#"
        fn main() {
            for it in 0 .. 20 {
                comp(cycles = 230_000);
                sendrecv(dst = (rank + 1) % nprocs,
                         src = (rank + nprocs - 1) % nprocs,
                         sendtag = 0, recvtag = 0, bytes = 1k);
            }
        }
    "#;

    fn trace(src: &str, nprocs: usize) -> TracerHook {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut tracer = TracerHook::with_defaults();
        Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut tracer)
            .run()
            .unwrap();
        tracer
    }

    #[test]
    fn records_every_event() {
        let tracer = trace(RING, 4);
        // Per rank, per iteration: >= 1 comp + 2 mpi events + 1 message.
        assert!(tracer.record_count() >= 4 * 20 * 3);
        assert!(tracer.storage_bytes() >= tracer.record_count() * 26);
    }

    #[test]
    fn trace_grows_linearly_with_iterations() {
        let short = trace(RING, 2);
        let long = trace(&RING.replace("0 .. 20", "0 .. 200"), 2);
        let ratio = long.storage_bytes() as f64 / short.storage_bytes() as f64;
        assert!(
            (6.0..14.0).contains(&ratio),
            "10x iterations ≈ 10x trace, got {ratio:.1}x"
        );
    }

    #[test]
    fn tracing_slows_the_run() {
        let program = parse_program("t.mmpi", RING).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let base = Simulation::new(&program, &psg, SimConfig::with_nprocs(4))
            .run()
            .unwrap();
        let mut tracer = TracerHook::with_defaults();
        let traced = Simulation::new(&program, &psg, SimConfig::with_nprocs(4))
            .with_hook(&mut tracer)
            .run()
            .unwrap();
        assert!(traced.total_time() > base.total_time());
    }
}
