//! The profiling baseline (HPCToolkit-like).
//!
//! Call-path sampling without program structure: every timer tick
//! unwinds a call stack (expensive per sample) and increments a
//! per-call-path histogram. The output localizes *hot spots* but carries
//! no inter-process dependence and no program structure beyond call
//! paths — reproducing the paper's observation that HPCToolkit finds the
//! symptoms (`MPI_Waitall` is slow, this loop is hot) but needs
//! substantial human effort to connect them into a root cause.

use crate::codec::RecordWriter;
use scalana_graph::VertexId;
use scalana_mpisim::hook::{CompEvent, Hook, MpiExitEvent};
use std::collections::HashMap;

/// Flat-profiler cost model.
#[derive(Debug, Clone)]
pub struct FlatConfig {
    /// Timer frequency (default 200 Hz, the paper's setting).
    pub sampling_hz: f64,
    /// Cost of one sample: timer interrupt + full call-stack unwind.
    pub sample_cost: f64,
    /// Modeled call-path depth persisted per histogram entry.
    pub path_depth: u32,
    /// Fixed per-rank metadata bytes (binary structure analysis etc.).
    pub per_rank_metadata: u64,
}

impl Default for FlatConfig {
    fn default() -> Self {
        FlatConfig {
            sampling_hz: 200.0,
            sample_cost: 5.0e-6,
            path_depth: 12,
            per_rank_metadata: 48 * 1024,
        }
    }
}

/// One hot-spot entry of the flat profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    /// The vertex (standing in for a call path).
    pub vertex: VertexId,
    /// Total seconds across ranks.
    pub time: f64,
    /// Samples across ranks.
    pub samples: u64,
}

/// The flat-profiling hook.
pub struct FlatProfilerHook {
    config: FlatConfig,
    nprocs: usize,
    phase: Vec<f64>,
    /// (vertex, rank) → (samples, seconds).
    histogram: HashMap<(VertexId, usize), (u64, f64)>,
    rank_elapsed: Vec<f64>,
}

impl FlatProfilerHook {
    /// New flat profiler.
    pub fn new(config: FlatConfig) -> FlatProfilerHook {
        FlatProfilerHook {
            config,
            nprocs: 0,
            phase: Vec::new(),
            histogram: HashMap::new(),
            rank_elapsed: Vec::new(),
        }
    }

    /// Default cost model.
    pub fn with_defaults() -> FlatProfilerHook {
        FlatProfilerHook::new(FlatConfig::default())
    }

    fn take_samples(&mut self, rank: usize, duration: f64) -> u64 {
        let period = 1.0 / self.config.sampling_hz;
        let total = self.phase[rank] + duration;
        let n = (total / period).floor() as u64;
        self.phase[rank] = total - n as f64 * period;
        n
    }

    /// Storage the profile would occupy on disk.
    pub fn storage_bytes(&self) -> u64 {
        let mut writer = RecordWriter::new();
        for ((vertex, rank), (count, time)) in &self.histogram {
            writer.sample_entry(*rank as u32, *vertex, *count, *time, self.config.path_depth);
        }
        writer.bytes_written() + self.nprocs as u64 * self.config.per_rank_metadata
    }

    /// The top-`n` hottest vertices by total time — the symptom list a
    /// user gets, without causal structure.
    pub fn hot_spots(&self, n: usize) -> Vec<HotSpot> {
        let mut agg: HashMap<VertexId, (u64, f64)> = HashMap::new();
        for ((vertex, _), (count, time)) in &self.histogram {
            let e = agg.entry(*vertex).or_default();
            e.0 += count;
            e.1 += time;
        }
        let mut spots: Vec<HotSpot> = agg
            .into_iter()
            .map(|(vertex, (samples, time))| HotSpot {
                vertex,
                time,
                samples,
            })
            .collect();
        spots.sort_by(|a, b| {
            b.time
                .partial_cmp(&a.time)
                .unwrap()
                .then(a.vertex.cmp(&b.vertex))
        });
        spots.truncate(n);
        spots
    }

    /// Per-rank elapsed times of the profiled run.
    pub fn rank_elapsed(&self) -> &[f64] {
        &self.rank_elapsed
    }
}

impl Hook for FlatProfilerHook {
    fn on_run_start(&mut self, nprocs: usize) {
        self.nprocs = nprocs;
        self.phase = vec![0.0; nprocs];
        self.histogram.clear();
    }

    fn on_comp(&mut self, ev: &CompEvent) -> f64 {
        let n = self.take_samples(ev.rank, ev.duration);
        let e = self.histogram.entry((ev.vertex, ev.rank)).or_default();
        e.0 += n;
        e.1 += ev.duration;
        n as f64 * self.config.sample_cost
    }

    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        // Timer keeps firing inside MPI; samples land on the MPI frame.
        // No virtual-time cost: the handler runs while the CPU is
        // idle-waiting on the network, so it does not delay completion
        // (charging it would compound exponentially through pipelined
        // waits — each rank's inflated wait inflating the next).
        let n = self.take_samples(ev.rank, ev.elapsed);
        let e = self.histogram.entry((ev.vertex, ev.rank)).or_default();
        e.0 += n;
        e.1 += ev.elapsed;
        0.0
    }

    fn on_run_end(&mut self, rank_elapsed: &[f64]) {
        self.rank_elapsed = rank_elapsed.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions, VertexKind};
    use scalana_lang::parse_program;
    use scalana_mpisim::{SimConfig, Simulation};

    fn profile(src: &str, nprocs: usize) -> (FlatProfilerHook, scalana_graph::Psg) {
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut flat = FlatProfilerHook::with_defaults();
        Simulation::new(&program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut flat)
            .run()
            .unwrap();
        (flat, psg)
    }

    #[test]
    fn finds_hot_vertex_without_causality() {
        let src = r#"
            fn main() {
                comp(cycles = 230_000_000); // hot: 100 ms
                comp(cycles = 230_000);     // cold
                barrier();
                comp(cycles = 2_300_000);   // warm: 1 ms (separate Comp after MPI)
            }
        "#;
        let (flat, psg) = profile(src, 2);
        let spots = flat.hot_spots(3);
        assert!(!spots.is_empty());
        // The hottest entry is the Comp vertex holding the 100 ms block.
        let hottest = &spots[0];
        assert_eq!(psg.vertex(hottest.vertex).kind, VertexKind::Comp);
        assert!(hottest.time >= 0.2, "2 ranks x 100ms: {}", hottest.time);
    }

    #[test]
    fn storage_includes_metadata_and_entries() {
        let (flat, _) = profile("fn main() { comp(cycles = 23_000_000); barrier(); }", 4);
        let metadata = 4 * FlatConfig::default().per_rank_metadata;
        assert!(flat.storage_bytes() >= metadata);
    }

    #[test]
    fn mpi_wait_shows_up_as_hot_mpi_vertex() {
        let src = r#"
            fn main() {
                if rank == 0 { comp(cycles = 230_000_000); }
                barrier();
            }
        "#;
        let (flat, psg) = profile(src, 4);
        let spots = flat.hot_spots(4);
        // The barrier must appear hot on waiting ranks.
        assert!(
            spots.iter().any(|s| psg.vertex(s.vertex).is_mpi()),
            "waiting time should surface an MPI vertex: {spots:?}"
        );
    }
}
