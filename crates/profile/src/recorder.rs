//! Indirect-call discovery (paper §III-B3).
//!
//! The PSG cannot resolve calls through function pointers statically. A
//! short *discovery run* with this recorder collects the resolved
//! targets; [`IndirectRecorder::apply`] then expands the call sites in
//! the PSG so subsequent profiling runs attribute at full precision.

use scalana_graph::{CtxId, Psg};
use scalana_lang::ast::NodeId;
use scalana_mpisim::hook::{Hook, IndirectCallEvent};
use std::collections::BTreeSet;

/// Collects unique `(context, statement, callee)` triples.
#[derive(Debug, Default)]
pub struct IndirectRecorder {
    seen: BTreeSet<(CtxId, NodeId, String)>,
}

impl IndirectRecorder {
    /// Fresh recorder.
    pub fn new() -> IndirectRecorder {
        IndirectRecorder::default()
    }

    /// Observed resolutions so far.
    pub fn observations(&self) -> impl Iterator<Item = &(CtxId, NodeId, String)> {
        self.seen.iter()
    }

    /// Number of distinct resolutions.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Fill the observed targets into the PSG (refinement). Returns how
    /// many call sites were newly expanded.
    ///
    /// Resolution can cascade: expanding a callee may reveal nested
    /// indirect calls whose contexts only now exist, so the caller should
    /// re-run discovery until this returns 0 (one round suffices for
    /// non-nested pointers).
    pub fn apply(&self, psg: &mut Psg) -> usize {
        let mut expanded = 0;
        for (ctx, stmt, callee) in &self.seen {
            if psg.enter_indirect(*ctx, *stmt, callee).is_none()
                && psg.resolve_indirect(*ctx, *stmt, callee).is_some()
            {
                expanded += 1;
            }
        }
        expanded
    }
}

impl Hook for IndirectRecorder {
    fn on_indirect_call(&mut self, ev: &IndirectCallEvent) -> f64 {
        self.seen.insert((ev.ctx, ev.stmt, ev.callee.clone()));
        0.0
    }
}

/// One recorded discovery round: the sorted `(context, statement,
/// callee)` triples the simulation observed before they were applied.
pub type DiscoveryRound = Vec<(CtxId, NodeId, String)>;

/// Run discovery to a fixed point: simulate at a small scale with the
/// recorder attached, apply resolutions, repeat until no new call sites
/// appear. Returns the number of rounds executed.
pub fn discover_indirect_calls(
    program: &scalana_lang::Program,
    psg: &mut Psg,
    nprocs: usize,
) -> Result<usize, scalana_mpisim::SimError> {
    discover_indirect_calls_traced(program, psg, nprocs).map(|(rounds, _)| rounds)
}

/// [`discover_indirect_calls`], additionally returning each round's
/// observations in the order they were applied. Replaying the rounds
/// with [`replay_indirect_calls`] against a freshly built PSG of the
/// same program reproduces the refined PSG exactly — context ids are
/// allocation-ordered and the recorder's `BTreeSet` fixes the
/// application order — with zero simulation. This is what the service's
/// durable store persists for warm restarts.
pub fn discover_indirect_calls_traced(
    program: &scalana_lang::Program,
    psg: &mut Psg,
    nprocs: usize,
) -> Result<(usize, Vec<DiscoveryRound>), scalana_mpisim::SimError> {
    let mut trace = Vec::new();
    loop {
        let mut recorder = IndirectRecorder::new();
        let config = scalana_mpisim::SimConfig::with_nprocs(nprocs);
        scalana_mpisim::Simulation::new(program, psg, config)
            .with_hook(&mut recorder)
            .run()?;
        let observed: DiscoveryRound = recorder.observations().cloned().collect();
        let expanded = recorder.apply(psg);
        trace.push(observed);
        if expanded == 0 || trace.len() > 8 {
            let rounds = trace.len();
            return Ok((rounds, trace));
        }
    }
}

/// Re-apply recorded discovery rounds to a freshly built (unrefined)
/// PSG of the same program. Returns the number of call sites expanded;
/// never simulates. Unknown or already-resolved triples are skipped, so
/// replaying a stale trace degrades to a partial refinement rather than
/// an error — callers that need exactness compare scale images, not
/// replay counts.
pub fn replay_indirect_calls(psg: &mut Psg, trace: &[DiscoveryRound]) -> usize {
    let mut expanded = 0;
    for round in trace {
        for (ctx, stmt, callee) in round {
            if psg.enter_indirect(*ctx, *stmt, callee).is_none()
                && psg.resolve_indirect(*ctx, *stmt, callee).is_some()
            {
                expanded += 1;
            }
        }
    }
    expanded
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions, VertexKind};
    use scalana_lang::parse_program;

    #[test]
    fn discovery_expands_callsites() {
        let src = r#"
            fn main() {
                let f = &work;
                for i in 0 .. 3 { call f(i); }
            }
            fn work(n) { comp(cycles = n * 100); barrier(); }
        "#;
        let program = parse_program("t.mmpi", src).unwrap();
        let mut psg = build_psg(&program, &PsgOptions::default());
        let before = psg.vertex_count();
        assert!(psg.vertices.iter().any(|v| v.kind == VertexKind::CallSite));
        let rounds = discover_indirect_calls(&program, &mut psg, 2).unwrap();
        assert!(
            rounds >= 2,
            "one discovery round plus one fixed-point check"
        );
        assert!(psg.vertex_count() > before, "callee expanded into the PSG");
    }

    #[test]
    fn nested_indirection_reaches_fixed_point() {
        let src = r#"
            fn main() {
                let f = &outer;
                call f();
            }
            fn outer() {
                let g = &inner;
                call g();
            }
            fn inner() { barrier(); }
        "#;
        let program = parse_program("t.mmpi", src).unwrap();
        let mut psg = build_psg(&program, &PsgOptions::default());
        discover_indirect_calls(&program, &mut psg, 2).unwrap();
        // Both levels resolved: inner's barrier vertex exists under a
        // context chain main -> outer -> inner.
        let barriers = psg
            .vertices
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::Mpi(scalana_graph::MpiKind::Barrier)))
            .count();
        assert_eq!(barriers, 1);
    }

    #[test]
    fn recorder_dedups() {
        let mut rec = IndirectRecorder::new();
        for _ in 0..5 {
            rec.on_indirect_call(&IndirectCallEvent {
                rank: 0,
                ctx: 0,
                stmt: 3,
                callee: "f".into(),
            });
        }
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }
}
