//! Persistence of profile data (paper §V workflow).
//!
//! `ScalAna-prof` runs write one profile file per job scale;
//! `ScalAna-detect` loads them post-mortem. This module serializes
//! [`ProfileData`] to a self-contained binary image and back, so the two
//! stages can run in separate processes — as the real tool's do.

use crate::data::{CommAgg, ProfileData};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use scalana_graph::VertexPerf;

const MAGIC: u32 = 0x5ca1_a701;
const VERSION: u16 = 1;

/// Serialize a profile to bytes.
pub fn save(data: &ProfileData) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(data.nprocs as u64);
    buf.put_u64_le(data.storage_bytes);
    buf.put_u64_le(data.sample_count);

    buf.put_u64_le(data.rank_elapsed.len() as u64);
    for t in &data.rank_elapsed {
        buf.put_f64_le(*t);
    }

    // Perf entries in deterministic order.
    let mut perf: Vec<_> = data.perf.iter().collect();
    perf.sort_by_key(|((v, r), _)| (*v, *r));
    buf.put_u64_le(perf.len() as u64);
    for ((vertex, rank), p) in perf {
        buf.put_u32_le(*vertex);
        buf.put_u64_le(*rank as u64);
        buf.put_f64_le(p.time);
        buf.put_u64_le(p.count);
        buf.put_f64_le(p.tot_ins);
        buf.put_f64_le(p.tot_cyc);
        buf.put_f64_le(p.lst_ins);
        buf.put_f64_le(p.l2_miss);
        buf.put_f64_le(p.br_miss);
        buf.put_f64_le(p.wait_time);
        buf.put_f64_le(p.bytes);
    }

    let mut comm: Vec<_> = data.comm.iter().collect();
    comm.sort_by_key(|((sr, sv, dr, dv), _)| (*dr, *dv, *sr, *sv));
    buf.put_u64_le(comm.len() as u64);
    for ((src_rank, src_vertex, dst_rank, dst_vertex), agg) in comm {
        buf.put_u64_le(*src_rank as u64);
        buf.put_u32_le(*src_vertex);
        buf.put_u64_le(*dst_rank as u64);
        buf.put_u32_le(*dst_vertex);
        buf.put_u64_le(agg.count);
        buf.put_u64_le(agg.bytes);
        buf.put_f64_le(agg.wait_time);
    }

    buf.put_u64_le(data.indirect_calls.len() as u64);
    for (ctx, stmt, callee) in &data.indirect_calls {
        buf.put_u32_le(*ctx);
        buf.put_u32_le(*stmt);
        buf.put_u16_le(callee.len() as u16);
        buf.put_slice(callee.as_bytes());
    }
    buf.freeze()
}

/// Deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Not a profile image.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Truncated or corrupt payload.
    Truncated,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a ScalAna profile image"),
            LoadError::BadVersion(v) => write!(f, "unsupported profile version {v}"),
            LoadError::Truncated => write!(f, "truncated profile image"),
        }
    }
}

impl std::error::Error for LoadError {}

fn need(buf: &Bytes, n: usize) -> Result<(), LoadError> {
    if buf.remaining() < n {
        Err(LoadError::Truncated)
    } else {
        Ok(())
    }
}

/// Bounds-check a length-prefixed section: `count` elements of at least
/// `elem_size` bytes each must fit in the remaining buffer. Uses checked
/// arithmetic so a hostile 2⁶⁴-ish count cannot overflow the product
/// (which would otherwise panic in debug builds or pass the check and
/// panic inside the vendored `Bytes` accessors in release builds).
fn need_counted(buf: &Bytes, count: usize, elem_size: usize) -> Result<(), LoadError> {
    match count.checked_mul(elem_size) {
        Some(total) if buf.remaining() >= total => Ok(()),
        _ => Err(LoadError::Truncated),
    }
}

/// Exact byte size of one serialized perf entry:
/// vertex u32 + rank u64 + 9 × 8-byte metric fields.
const PERF_ENTRY_BYTES: usize = 4 + 8 + 9 * 8;
/// Exact byte size of one serialized comm edge.
const COMM_ENTRY_BYTES: usize = 8 + 4 + 8 + 4 + 8 + 8 + 8;
/// Minimum byte size of one indirect-call record (empty callee name).
const INDIRECT_MIN_BYTES: usize = 4 + 4 + 2;

/// Deserialize a profile image.
pub fn load(mut buf: Bytes) -> Result<ProfileData, LoadError> {
    need(&buf, 4 + 2)?;
    if buf.get_u32_le() != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(LoadError::BadVersion(version));
    }
    need(&buf, 8 * 3)?;
    let nprocs = buf.get_u64_le() as usize;
    let mut data = ProfileData::new(nprocs);
    data.storage_bytes = buf.get_u64_le();
    data.sample_count = buf.get_u64_le();

    need(&buf, 8)?;
    let n_elapsed = buf.get_u64_le() as usize;
    need_counted(&buf, n_elapsed, 8)?;
    data.rank_elapsed = (0..n_elapsed).map(|_| buf.get_f64_le()).collect();

    need(&buf, 8)?;
    let n_perf = buf.get_u64_le() as usize;
    need_counted(&buf, n_perf, PERF_ENTRY_BYTES)?;
    for _ in 0..n_perf {
        let vertex = buf.get_u32_le();
        let rank = buf.get_u64_le() as usize;
        let perf = VertexPerf {
            time: buf.get_f64_le(),
            count: buf.get_u64_le(),
            tot_ins: buf.get_f64_le(),
            tot_cyc: buf.get_f64_le(),
            lst_ins: buf.get_f64_le(),
            l2_miss: buf.get_f64_le(),
            br_miss: buf.get_f64_le(),
            wait_time: buf.get_f64_le(),
            bytes: buf.get_f64_le(),
        };
        data.perf.insert((vertex, rank), perf);
    }

    need(&buf, 8)?;
    let n_comm = buf.get_u64_le() as usize;
    need_counted(&buf, n_comm, COMM_ENTRY_BYTES)?;
    for _ in 0..n_comm {
        let src_rank = buf.get_u64_le() as usize;
        let src_vertex = buf.get_u32_le();
        let dst_rank = buf.get_u64_le() as usize;
        let dst_vertex = buf.get_u32_le();
        let agg = CommAgg {
            count: buf.get_u64_le(),
            bytes: buf.get_u64_le(),
            wait_time: buf.get_f64_le(),
        };
        data.comm
            .insert((src_rank, src_vertex, dst_rank, dst_vertex), agg);
    }

    need(&buf, 8)?;
    let n_indirect = buf.get_u64_le() as usize;
    // Names are variable-length: the upfront check bounds the count by
    // the minimum record size, the per-record checks do the rest.
    need_counted(&buf, n_indirect, INDIRECT_MIN_BYTES)?;
    for _ in 0..n_indirect {
        need(&buf, INDIRECT_MIN_BYTES)?;
        let ctx = buf.get_u32_le();
        let stmt = buf.get_u32_le();
        let len = buf.get_u16_le() as usize;
        need(&buf, len)?;
        let name = buf.copy_to_bytes(len);
        data.indirect_calls
            .push((ctx, stmt, String::from_utf8_lossy(&name).into_owned()));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScalAnaProfiler;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;
    use scalana_mpisim::{SimConfig, Simulation};

    fn collected_profile() -> ProfileData {
        let src = r#"
            fn main() {
                let f = &work;
                for it in 0 .. 6 {
                    comp(cycles = 100_000);
                    call f(it);
                    sendrecv(dst = (rank + 1) % nprocs, src = (rank + nprocs - 1) % nprocs,
                             sendtag = it, recvtag = it, bytes = 2k);
                }
                allreduce(bytes = 8);
            }
            fn work(n) { comp(cycles = n * 1000); }
        "#;
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = build_psg(&program, &PsgOptions::default());
        let mut profiler = ScalAnaProfiler::with_defaults();
        Simulation::new(&program, &psg, SimConfig::with_nprocs(6))
            .with_hook(&mut profiler)
            .run()
            .unwrap();
        profiler.take_data()
    }

    #[test]
    fn save_load_round_trip_is_lossless() {
        let original = collected_profile();
        let image = save(&original);
        let loaded = load(image).unwrap();
        assert_eq!(loaded.nprocs, original.nprocs);
        assert_eq!(loaded.rank_elapsed, original.rank_elapsed);
        assert_eq!(loaded.perf, original.perf);
        assert_eq!(loaded.comm, original.comm);
        assert_eq!(loaded.sample_count, original.sample_count);
        assert_eq!(loaded.storage_bytes, original.storage_bytes);
        assert_eq!(loaded.indirect_calls, original.indirect_calls);
    }

    #[test]
    fn image_size_matches_storage_accounting_order() {
        let data = collected_profile();
        let image = save(&data);
        // The image is the real serialized size; the in-run accounting
        // (compressed comm + final dump) should be the same order.
        assert!(image.len() as u64 >= data.storage_bytes / 4);
        assert!((image.len() as u64) <= data.storage_bytes * 8);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            load(Bytes::from_static(b"nope")),
            Err(LoadError::Truncated)
        ));
        assert!(matches!(
            load(Bytes::from_static(&[0u8; 16])),
            Err(LoadError::BadMagic)
        ));
        let data = collected_profile();
        let image = save(&data);
        let truncated = image.slice(0..image.len() / 2);
        assert!(matches!(load(truncated), Err(LoadError::Truncated)));
    }

    #[test]
    fn rejects_hostile_element_counts_without_panicking() {
        // A valid header followed by a u64::MAX element count: the
        // count × size product must not overflow into a passing check.
        let mut image = BytesMut::new();
        image.put_u32_le(MAGIC);
        image.put_u16_le(VERSION);
        image.put_u64_le(4); // nprocs
        image.put_u64_le(0); // storage_bytes
        image.put_u64_le(0); // sample_count
        image.put_u64_le(u64::MAX); // hostile rank_elapsed count
        assert!(matches!(load(image.freeze()), Err(LoadError::Truncated)));
    }

    #[test]
    fn rejects_truncation_inside_the_last_perf_field() {
        // Regression: the perf-entry bounds check used to be 8 bytes
        // short, so a buffer cut inside an entry's final field panicked
        // in the byte accessors instead of returning `Truncated`.
        let data = collected_profile();
        assert!(!data.perf.is_empty());
        let image = save(&data);
        let elapsed_end = 4 + 2 + 3 * 8 + 8 + data.rank_elapsed.len() * 8;
        let first_perf_end = elapsed_end + 8 + PERF_ENTRY_BYTES;
        let truncated = image.slice(0..first_perf_end - 4);
        assert!(matches!(load(truncated), Err(LoadError::Truncated)));
    }

    #[test]
    fn rejects_future_versions() {
        let data = collected_profile();
        let mut image = BytesMut::from(&save(&data)[..]);
        image[4] = 99; // bump version field
        assert!(matches!(
            load(image.freeze()),
            Err(LoadError::BadVersion(99))
        ));
    }

    #[test]
    fn loaded_profile_builds_equivalent_ppg() {
        let src = "fn main() { comp(cycles = 50_000); allreduce(bytes = 8); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = std::sync::Arc::new(build_psg(&program, &PsgOptions::default()));
        let mut profiler = ScalAnaProfiler::with_defaults();
        Simulation::new(&program, &psg, SimConfig::with_nprocs(4))
            .with_hook(&mut profiler)
            .run()
            .unwrap();
        let data = profiler.take_data();
        let reloaded = load(save(&data)).unwrap();
        let a = data.into_ppg(std::sync::Arc::clone(&psg));
        let b = reloaded.into_ppg(psg);
        assert_eq!(a.total_time(), b.total_time());
        for v in 0..a.psg.vertex_count() as u32 {
            assert_eq!(a.times_across_ranks(v), b.times_across_ranks(v));
        }
        assert_eq!(a.comm, b.comm);
    }
}
