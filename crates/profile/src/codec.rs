//! Binary record encoding with byte accounting.
//!
//! The paper compares tools by the bytes they persist (Table I, Fig. 11,
//! Fig. 13). [`RecordWriter`] is a small length-accurate binary encoder:
//! tools append records through it and the writer's length is the tool's
//! storage cost. Records can be decoded back ([`RecordReader`]) so tests
//! can verify round trips.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Record types in tool output files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordTag {
    /// Per-(vertex, rank) performance vector.
    VertexPerf = 1,
    /// Communication-dependence record.
    CommDep = 2,
    /// Timestamped trace event.
    TraceEvent = 3,
    /// Call-path sample histogram entry.
    SampleEntry = 4,
    /// Resolved indirect call.
    IndirectCall = 5,
}

impl RecordTag {
    fn from_u8(v: u8) -> Option<RecordTag> {
        Some(match v {
            1 => RecordTag::VertexPerf,
            2 => RecordTag::CommDep,
            3 => RecordTag::TraceEvent,
            4 => RecordTag::SampleEntry,
            5 => RecordTag::IndirectCall,
            _ => return None,
        })
    }
}

/// Append-only binary record writer.
#[derive(Debug, Default)]
pub struct RecordWriter {
    buf: BytesMut,
    records: u64,
}

impl RecordWriter {
    /// Fresh writer.
    pub fn new() -> RecordWriter {
        RecordWriter::default()
    }

    /// Bytes written so far — the storage cost.
    pub fn bytes_written(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Number of records written.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Freeze into an immutable buffer (for decoding/tests).
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }

    fn header(&mut self, tag: RecordTag) {
        self.buf.put_u8(tag as u8);
        self.records += 1;
    }

    /// Per-(vertex, rank) performance vector: 1 + 4 + 4 + 8*3 = 33 bytes.
    pub fn vertex_perf(&mut self, vertex: u32, rank: u32, time: f64, tot_ins: f64, wait: f64) {
        self.header(RecordTag::VertexPerf);
        self.buf.put_u32_le(vertex);
        self.buf.put_u32_le(rank);
        self.buf.put_f64_le(time);
        self.buf.put_f64_le(tot_ins);
        self.buf.put_f64_le(wait);
    }

    /// Communication-dependence record: 1 + 4*4 + 8 + 8 = 33 bytes.
    pub fn comm_dep(
        &mut self,
        src_rank: u32,
        src_vertex: u32,
        dst_vertex: u32,
        tag: i32,
        bytes: u64,
    ) {
        self.header(RecordTag::CommDep);
        self.buf.put_u32_le(src_rank);
        self.buf.put_u32_le(src_vertex);
        self.buf.put_u32_le(dst_vertex);
        self.buf.put_i32_le(tag);
        self.buf.put_u64_le(bytes);
    }

    /// Timestamped trace event: 1 + 4 + 4 + 1 + 8 + 8 = 26 bytes.
    pub fn trace_event(&mut self, rank: u32, vertex: u32, kind: u8, time: f64, payload: f64) {
        self.header(RecordTag::TraceEvent);
        self.buf.put_u32_le(rank);
        self.buf.put_u32_le(vertex);
        self.buf.put_u8(kind);
        self.buf.put_f64_le(time);
        self.buf.put_f64_le(payload);
    }

    /// Call-path sample histogram entry: 1 + 4 + 4 + 8 + 8 + 4 = 29
    /// bytes, plus the modeled unwound-call-path cost (`path_len` frames
    /// × 8). The frame count is part of the record so a reader can
    /// decode past it — the format is self-describing end to end.
    pub fn sample_entry(&mut self, rank: u32, vertex: u32, count: u64, time: f64, path_len: u32) {
        self.header(RecordTag::SampleEntry);
        self.buf.put_u32_le(rank);
        self.buf.put_u32_le(vertex);
        self.buf.put_u64_le(count);
        self.buf.put_f64_le(time);
        self.buf.put_u32_le(path_len);
        // Call-path frames (modeled as 8 bytes each).
        for i in 0..path_len {
            self.buf.put_u64_le(u64::from(i));
        }
    }

    /// Resolved indirect call: 1 + 4 + 4 + 2 + name bytes.
    pub fn indirect_call(&mut self, ctx: u32, stmt: u32, callee: &str) {
        self.header(RecordTag::IndirectCall);
        self.buf.put_u32_le(ctx);
        self.buf.put_u32_le(stmt);
        self.buf.put_u16_le(callee.len() as u16);
        self.buf.put_slice(callee.as_bytes());
    }
}

/// Decoded record (used by round-trip tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Performance vector entry.
    VertexPerf {
        /// Vertex id.
        vertex: u32,
        /// Rank id.
        rank: u32,
        /// Attributed seconds.
        time: f64,
        /// Instructions.
        tot_ins: f64,
        /// Waiting seconds.
        wait: f64,
    },
    /// Communication dependence.
    CommDep {
        /// Sender rank.
        src_rank: u32,
        /// Sender vertex.
        src_vertex: u32,
        /// Receiver vertex.
        dst_vertex: u32,
        /// Tag.
        tag: i32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Trace event.
    TraceEvent {
        /// Rank.
        rank: u32,
        /// Vertex.
        vertex: u32,
        /// Event code.
        kind: u8,
        /// Timestamp.
        time: f64,
        /// Payload (duration / bytes).
        payload: f64,
    },
    /// Sample histogram entry.
    SampleEntry {
        /// Rank.
        rank: u32,
        /// Vertex.
        vertex: u32,
        /// Samples.
        count: u64,
        /// Seconds.
        time: f64,
        /// Call-path frames.
        path: Vec<u64>,
    },
    /// Indirect call record.
    IndirectCall {
        /// Calling context.
        ctx: u32,
        /// Call statement.
        stmt: u32,
        /// Target function.
        callee: String,
    },
}

/// Streaming decoder over a frozen buffer.
pub struct RecordReader {
    buf: Bytes,
}

impl RecordReader {
    /// Wrap an encoded buffer.
    pub fn new(buf: Bytes) -> RecordReader {
        RecordReader { buf }
    }

    /// Bytes left to decode.
    fn check(&self, n: usize) -> Option<()> {
        if self.buf.remaining() >= n {
            Some(())
        } else {
            None
        }
    }

    /// Decode the next record; `None` at end of buffer or on corruption
    /// (unknown tag, or a record truncated mid-field — the reader never
    /// panics on short input).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Record> {
        if !self.buf.has_remaining() {
            return None;
        }
        let tag = RecordTag::from_u8(self.buf.get_u8())?;
        match tag {
            RecordTag::VertexPerf => {
                self.check(4 + 4 + 3 * 8)?;
                Some(Record::VertexPerf {
                    vertex: self.buf.get_u32_le(),
                    rank: self.buf.get_u32_le(),
                    time: self.buf.get_f64_le(),
                    tot_ins: self.buf.get_f64_le(),
                    wait: self.buf.get_f64_le(),
                })
            }
            RecordTag::CommDep => {
                self.check(4 * 4 + 8)?;
                Some(Record::CommDep {
                    src_rank: self.buf.get_u32_le(),
                    src_vertex: self.buf.get_u32_le(),
                    dst_vertex: self.buf.get_u32_le(),
                    tag: self.buf.get_i32_le(),
                    bytes: self.buf.get_u64_le(),
                })
            }
            RecordTag::TraceEvent => {
                self.check(4 + 4 + 1 + 8 + 8)?;
                Some(Record::TraceEvent {
                    rank: self.buf.get_u32_le(),
                    vertex: self.buf.get_u32_le(),
                    kind: self.buf.get_u8(),
                    time: self.buf.get_f64_le(),
                    payload: self.buf.get_f64_le(),
                })
            }
            RecordTag::SampleEntry => {
                self.check(4 + 4 + 8 + 8 + 4)?;
                let rank = self.buf.get_u32_le();
                let vertex = self.buf.get_u32_le();
                let count = self.buf.get_u64_le();
                let time = self.buf.get_f64_le();
                let path_len = self.buf.get_u32_le() as usize;
                self.check(path_len.checked_mul(8)?)?;
                let path = (0..path_len).map(|_| self.buf.get_u64_le()).collect();
                Some(Record::SampleEntry {
                    rank,
                    vertex,
                    count,
                    time,
                    path,
                })
            }
            RecordTag::IndirectCall => {
                self.check(4 + 4 + 2)?;
                let ctx = self.buf.get_u32_le();
                let stmt = self.buf.get_u32_le();
                let len = self.buf.get_u16_le() as usize;
                self.check(len)?;
                let name = self.buf.copy_to_bytes(len);
                Some(Record::IndirectCall {
                    ctx,
                    stmt,
                    callee: String::from_utf8_lossy(&name).into_owned(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_perf_round_trip() {
        let mut w = RecordWriter::new();
        w.vertex_perf(7, 3, 1.5, 1000.0, 0.25);
        assert_eq!(w.bytes_written(), 33);
        assert_eq!(w.record_count(), 1);
        let mut r = RecordReader::new(w.freeze());
        assert_eq!(
            r.next(),
            Some(Record::VertexPerf {
                vertex: 7,
                rank: 3,
                time: 1.5,
                tot_ins: 1000.0,
                wait: 0.25
            })
        );
        assert_eq!(r.next(), None);
    }

    #[test]
    fn comm_dep_round_trip() {
        let mut w = RecordWriter::new();
        w.comm_dep(1, 2, 3, -1, 4096);
        let mut r = RecordReader::new(w.freeze());
        assert_eq!(
            r.next(),
            Some(Record::CommDep {
                src_rank: 1,
                src_vertex: 2,
                dst_vertex: 3,
                tag: -1,
                bytes: 4096
            })
        );
    }

    #[test]
    fn trace_event_size_is_fixed() {
        let mut w = RecordWriter::new();
        w.trace_event(0, 1, 2, 0.001, 64.0);
        w.trace_event(0, 1, 3, 0.002, 0.0);
        assert_eq!(w.bytes_written(), 52);
        assert_eq!(w.record_count(), 2);
    }

    #[test]
    fn indirect_call_round_trip() {
        let mut w = RecordWriter::new();
        w.indirect_call(4, 17, "handle_event");
        let mut r = RecordReader::new(w.freeze());
        assert_eq!(
            r.next(),
            Some(Record::IndirectCall {
                ctx: 4,
                stmt: 17,
                callee: "handle_event".into()
            })
        );
    }

    #[test]
    fn sample_entry_grows_with_path_len() {
        let mut w1 = RecordWriter::new();
        w1.sample_entry(0, 1, 10, 0.5, 0);
        assert_eq!(w1.bytes_written(), 29);
        let mut w2 = RecordWriter::new();
        w2.sample_entry(0, 1, 10, 0.5, 8);
        assert_eq!(w2.bytes_written() - w1.bytes_written(), 64);
    }

    #[test]
    fn sample_entry_round_trips_with_path() {
        let mut w = RecordWriter::new();
        w.sample_entry(3, 9, 17, 0.25, 4);
        w.comm_dep(0, 1, 2, 5, 64);
        let mut r = RecordReader::new(w.freeze());
        assert_eq!(
            r.next(),
            Some(Record::SampleEntry {
                rank: 3,
                vertex: 9,
                count: 17,
                time: 0.25,
                path: vec![0, 1, 2, 3],
            })
        );
        // The reader resynchronizes exactly on the next record.
        assert!(matches!(r.next(), Some(Record::CommDep { bytes: 64, .. })));
        assert_eq!(r.next(), None);
    }

    #[test]
    fn truncated_buffers_yield_none_not_panic() {
        let mut w = RecordWriter::new();
        w.vertex_perf(7, 3, 1.5, 1000.0, 0.25);
        w.indirect_call(4, 17, "handle_event");
        w.sample_entry(0, 1, 10, 0.5, 8);
        let full = w.freeze();
        for cut in 0..full.len() {
            let mut r = RecordReader::new(full.slice(0..cut));
            // Drain: complete prefix records decode, the torn one stops
            // the stream. No cut position may panic.
            while r.next().is_some() {}
        }
    }

    #[test]
    fn empty_reader_yields_none() {
        let mut r = RecordReader::new(RecordWriter::new().freeze());
        assert_eq!(r.next(), None);
    }
}
