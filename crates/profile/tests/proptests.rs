//! Property-based tests for the profile persistence layer: the record
//! codec (`RecordWriter`/`RecordReader`) and the profile store
//! (`store::save`/`store::load`).
//!
//! Two properties per format:
//! - **round trip** — whatever is written decodes back losslessly;
//! - **truncation fuzz** — any prefix of a valid image is rejected
//!   (store) or cleanly ends the stream (codec); no cut point panics.

use bytes::Bytes;
use proptest::prelude::*;
use scalana_graph::VertexPerf;
use scalana_profile::codec::{Record, RecordReader, RecordWriter};
use scalana_profile::{store, ProfileData};

/// A writer call we can replay and compare against the decoded stream.
#[derive(Debug, Clone)]
enum Op {
    VertexPerf(u32, u32, f64, f64, f64),
    CommDep(u32, u32, u32, i32, u64),
    TraceEvent(u32, u32, u8, f64, f64),
    SampleEntry(u32, u32, u64, f64, u32),
    IndirectCall(u32, u32, String),
}

impl Op {
    fn write(&self, w: &mut RecordWriter) {
        match self.clone() {
            Op::VertexPerf(v, r, t, i, wt) => w.vertex_perf(v, r, t, i, wt),
            Op::CommDep(sr, sv, dv, tag, b) => w.comm_dep(sr, sv, dv, tag, b),
            Op::TraceEvent(r, v, k, t, p) => w.trace_event(r, v, k, t, p),
            Op::SampleEntry(r, v, c, t, len) => w.sample_entry(r, v, c, t, len),
            Op::IndirectCall(ctx, stmt, name) => w.indirect_call(ctx, stmt, &name),
        }
    }

    fn matches(&self, record: &Record) -> bool {
        match (self, record) {
            (
                Op::VertexPerf(v, r, t, i, wt),
                Record::VertexPerf {
                    vertex,
                    rank,
                    time,
                    tot_ins,
                    wait,
                },
            ) => v == vertex && r == rank && t == time && i == tot_ins && wt == wait,
            (
                Op::CommDep(sr, sv, dv, tg, b),
                Record::CommDep {
                    src_rank,
                    src_vertex,
                    dst_vertex,
                    tag,
                    bytes,
                },
            ) => sr == src_rank && sv == src_vertex && dv == dst_vertex && tg == tag && b == bytes,
            (
                Op::TraceEvent(r, v, k, t, p),
                Record::TraceEvent {
                    rank,
                    vertex,
                    kind,
                    time,
                    payload,
                },
            ) => r == rank && v == vertex && k == kind && t == time && p == payload,
            (
                Op::SampleEntry(r, v, c, t, len),
                Record::SampleEntry {
                    rank,
                    vertex,
                    count,
                    time,
                    path,
                },
            ) => r == rank && v == vertex && c == count && t == time && path.len() == *len as usize,
            (Op::IndirectCall(c, s, n), Record::IndirectCall { ctx, stmt, callee }) => {
                c == ctx && s == stmt && n == callee
            }
            _ => false,
        }
    }
}

fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        (0u32..64, 0u32..16, 0.0f64..10.0, 0.0f64..1e9, 0.0f64..1.0)
            .prop_map(|(v, r, t, i, w)| Op::VertexPerf(v, r, t, i, w)),
        (0u32..16, 0u32..64, 0u32..64, -1i32..1000, 0u64..1_000_000)
            .prop_map(|(sr, sv, dv, tag, b)| Op::CommDep(sr, sv, dv, tag, b)),
        (0u32..16, 0u32..64, 0u8..8, 0.0f64..10.0, 0.0f64..1e6)
            .prop_map(|(r, v, k, t, p)| Op::TraceEvent(r, v, k, t, p)),
        (0u32..16, 0u32..64, 0u64..10_000, 0.0f64..10.0, 0u32..12)
            .prop_map(|(r, v, c, t, len)| Op::SampleEntry(r, v, c, t, len)),
        (0u32..256, 0u32..256, "[a-z_]{0,24}")
            .prop_map(|(ctx, stmt, name)| Op::IndirectCall(ctx, stmt, name)),
    ]
    .boxed()
}

/// A synthetic (but structurally valid) profile: every table populated
/// with arbitrary values, including non-ASCII callee names.
fn arb_profile() -> BoxedStrategy<ProfileData> {
    (
        1usize..8,
        proptest::collection::vec(0.0f64..100.0, 1..8),
        proptest::collection::vec(
            (0u32..64, 0usize..8, 0.0f64..5.0, 0u64..1000, 0.0f64..1e9),
            0..24,
        ),
        proptest::collection::vec(
            (
                (0usize..8, 0u32..64, 0usize..8, 0u32..64),
                (0u64..100, 0u64..65536, 0.0f64..2.0),
            ),
            0..24,
        ),
        proptest::collection::vec((0u32..64, 0u32..64, "[a-zA-Z0-9_]{0,12}"), 0..8),
    )
        .prop_map(|(nprocs, elapsed, perf, comm, indirect)| {
            let mut data = ProfileData::new(nprocs);
            data.rank_elapsed = elapsed;
            data.storage_bytes = 12_345;
            data.sample_count = 678;
            for (vertex, rank, time, count, ins) in perf {
                data.perf.insert(
                    (vertex, rank),
                    VertexPerf {
                        time,
                        count,
                        tot_ins: ins,
                        tot_cyc: ins * 1.25,
                        lst_ins: ins / 4.0,
                        l2_miss: ins / 400.0,
                        br_miss: ins / 1000.0,
                        wait_time: time / 2.0,
                        bytes: 64.0,
                    },
                );
            }
            for ((sr, sv, dr, dv), (count, bytes, wait)) in comm {
                let agg = data.comm.entry((sr, sv, dr, dv)).or_default();
                agg.count += count;
                agg.bytes += bytes;
                agg.wait_time += wait;
            }
            for (ctx, stmt, name) in indirect {
                data.indirect_calls.push((ctx, stmt, name));
            }
            data
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every record sequence decodes back to exactly what was written.
    #[test]
    fn codec_round_trip_is_lossless(ops in proptest::collection::vec(arb_op(), 0..32)) {
        let mut writer = RecordWriter::new();
        for op in &ops {
            op.write(&mut writer);
        }
        prop_assert_eq!(writer.record_count(), ops.len() as u64);
        let mut reader = RecordReader::new(writer.freeze());
        for (i, op) in ops.iter().enumerate() {
            let record = reader.next();
            prop_assert!(
                record.as_ref().is_some_and(|r| op.matches(r)),
                "record {} mismatch: wrote {:?}, read {:?}", i, op, record
            );
        }
        prop_assert_eq!(reader.next(), None);
    }

    /// Any truncation point decodes a prefix of the written records and
    /// then cleanly ends the stream — never panics, never invents data.
    #[test]
    fn codec_truncation_yields_clean_prefix(
        ops in proptest::collection::vec(arb_op(), 1..16),
        cut_seed in 0usize..10_000,
    ) {
        let mut writer = RecordWriter::new();
        for op in &ops {
            op.write(&mut writer);
        }
        let full = writer.freeze();
        let cut = cut_seed % full.len();
        let mut reader = RecordReader::new(full.slice(0..cut));
        let mut decoded = 0usize;
        while let Some(record) = reader.next() {
            prop_assert!(decoded < ops.len());
            prop_assert!(
                ops[decoded].matches(&record),
                "prefix record {} diverged at cut {}", decoded, cut
            );
            decoded += 1;
        }
        prop_assert!(decoded <= ops.len());
    }

    /// `store::save` → `store::load` is lossless for arbitrary profiles.
    #[test]
    fn store_round_trip_is_lossless(data in arb_profile()) {
        let image = store::save(&data);
        let loaded = store::load(image).unwrap();
        prop_assert_eq!(loaded.nprocs, data.nprocs);
        prop_assert_eq!(loaded.rank_elapsed, data.rank_elapsed);
        prop_assert_eq!(loaded.perf, data.perf);
        prop_assert_eq!(loaded.comm, data.comm);
        prop_assert_eq!(loaded.indirect_calls, data.indirect_calls);
        prop_assert_eq!(loaded.storage_bytes, data.storage_bytes);
        prop_assert_eq!(loaded.sample_count, data.sample_count);
    }

    /// Every strict prefix of a valid image is rejected with a typed
    /// error — never a panic, never a silently partial profile.
    #[test]
    fn store_truncation_always_errors(
        data in arb_profile(),
        cut_seed in 0usize..10_000,
    ) {
        let image = store::save(&data);
        let cut = cut_seed % image.len(); // strict prefix
        let result = store::load(image.slice(0..cut));
        prop_assert!(result.is_err(), "cut at {} of {} parsed", cut, image.len());
    }

    /// Flipping the first byte of the magic or planting a wrong version
    /// yields the matching typed error.
    #[test]
    fn store_rejects_corrupt_headers(data in arb_profile(), version in 2u16..100) {
        let image = store::save(&data);
        let mut bad_magic = image.as_ref().to_vec();
        bad_magic[0] ^= 0xff;
        prop_assert!(matches!(
            store::load(Bytes::from(bad_magic)),
            Err(store::LoadError::BadMagic)
        ));
        let mut bad_version = image.as_ref().to_vec();
        bad_version[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            store::load(Bytes::from(bad_version)),
            Err(store::LoadError::BadVersion(v)) if v == version
        ));
    }
}
