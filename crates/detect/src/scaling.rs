//! Whole-program scaling metrics derived from multi-scale runs.
//!
//! The paper frames scaling loss through speedup curves ("the speedup is
//! only 55.53× on 128 processes"). This module computes the summary
//! numbers a report leads with: speedups, parallel efficiencies, and an
//! Amdahl/USL-style decomposition of the measured curve into serial and
//! scaling components — context for the per-vertex detection results.

use crate::fit::loglog_fit;
use serde::{Deserialize, Serialize};

/// One point of a scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Process count.
    pub nprocs: usize,
    /// End-to-end runtime at that scale.
    pub time: f64,
    /// Speedup vs the smallest scale (scaled by the rank ratio, so an
    /// ideal program doubles speedup when ranks double).
    pub speedup: f64,
    /// Parallel efficiency vs the smallest scale (1.0 = ideal).
    pub efficiency: f64,
}

/// Summary of a speedup curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingSummary {
    /// The per-scale points (ascending process counts).
    pub points: Vec<ScalePoint>,
    /// Fitted log-log slope of runtime vs ranks (−1 = ideal strong
    /// scaling, 0 = no scaling).
    pub time_slope: f64,
    /// Estimated serial fraction per Amdahl's law (least-squares over
    /// all scale pairs); `None` when the curve is super-linear or too
    /// short to fit.
    pub serial_fraction: Option<f64>,
    /// The scale with the best efficiency-per-rank trade-off (knee of
    /// the curve): the largest scale whose efficiency is still ≥ 50 %.
    pub efficient_scale: Option<usize>,
}

/// Compute scaling metrics from `(nprocs, time)` measurements (ascending
/// process counts, at least one point).
pub fn summarize(measurements: &[(usize, f64)]) -> ScalingSummary {
    assert!(!measurements.is_empty(), "need at least one measurement");
    let (p0, t0) = measurements[0];
    let points: Vec<ScalePoint> = measurements
        .iter()
        .map(|&(p, t)| {
            let speedup = if t > 0.0 { t0 / t } else { 0.0 };
            let rank_ratio = p as f64 / p0 as f64;
            ScalePoint {
                nprocs: p,
                time: t,
                speedup,
                efficiency: if rank_ratio > 0.0 {
                    speedup / rank_ratio
                } else {
                    0.0
                },
            }
        })
        .collect();

    let xs: Vec<f64> = measurements.iter().map(|(p, _)| *p as f64).collect();
    let ys: Vec<f64> = measurements.iter().map(|(_, t)| *t).collect();
    let time_slope = loglog_fit(&xs, &ys).map(|f| f.slope).unwrap_or(0.0);

    let serial_fraction = estimate_serial_fraction(&points);
    let efficient_scale = points
        .iter()
        .filter(|pt| pt.efficiency >= 0.5)
        .map(|pt| pt.nprocs)
        .max();

    ScalingSummary {
        points,
        time_slope,
        serial_fraction,
        efficient_scale,
    }
}

/// Amdahl: `S(n) = 1 / (f + (1-f)/n)` with `n` the rank ratio. Solve `f`
/// per point and average, clamped to [0, 1]; `None` when every point is
/// at the baseline or super-linear.
fn estimate_serial_fraction(points: &[ScalePoint]) -> Option<f64> {
    let base = points.first()?.nprocs as f64;
    let mut estimates = Vec::new();
    for pt in points.iter().skip(1) {
        let n = pt.nprocs as f64 / base;
        let s = pt.speedup;
        if s <= 0.0 || n <= 1.0 {
            continue;
        }
        // f = (n/s - 1) / (n - 1)
        let f = (n / s - 1.0) / (n - 1.0);
        if f.is_finite() {
            estimates.push(f.clamp(0.0, 1.0));
        }
    }
    if estimates.is_empty() {
        None
    } else {
        Some(estimates.iter().sum::<f64>() / estimates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scaling_has_unit_efficiency_and_zero_serial() {
        let m: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| (p, 16.0 / p as f64))
            .collect();
        let s = summarize(&m);
        assert!((s.time_slope + 1.0).abs() < 1e-9);
        for pt in &s.points {
            assert!((pt.efficiency - 1.0).abs() < 1e-9);
        }
        assert!(s.serial_fraction.unwrap() < 1e-9);
        assert_eq!(s.efficient_scale, Some(16));
    }

    #[test]
    fn pure_serial_program_never_speeds_up() {
        let m: Vec<(usize, f64)> = [1usize, 2, 4, 8].iter().map(|&p| (p, 10.0)).collect();
        let s = summarize(&m);
        assert!(s.time_slope.abs() < 1e-9);
        assert!((s.serial_fraction.unwrap() - 1.0).abs() < 1e-9);
        // Efficiency halves each doubling; 2 ranks sits exactly at 50%.
        assert_eq!(s.efficient_scale, Some(2));
    }

    #[test]
    fn amdahl_curve_recovers_planted_fraction() {
        let f = 0.1;
        let m: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| (p, f + (1.0 - f) / p as f64))
            .collect();
        let s = summarize(&m);
        let est = s.serial_fraction.unwrap();
        assert!((est - f).abs() < 1e-6, "estimated {est}, planted {f}");
        // Efficiency degrades but the early points are fine.
        assert!(s.points[1].efficiency > 0.9);
        assert!(s.points[5].efficiency < 0.3);
    }

    #[test]
    fn superlinear_curve_yields_no_serial_fraction_above_zero() {
        let m = vec![(1usize, 10.0), (2, 4.0), (4, 1.8)];
        let s = summarize(&m);
        // Clamped at zero: no serial component explains super-linear.
        assert_eq!(s.serial_fraction, Some(0.0));
    }

    #[test]
    fn baselines_other_than_one_rank_work() {
        // The paper baselines Nekbone at 64 ranks.
        let m: Vec<(usize, f64)> = [64usize, 128, 256]
            .iter()
            .map(|&p| (p, 64.0 * 4.0 / p as f64))
            .collect();
        let s = summarize(&m);
        assert!((s.points[1].speedup - 2.0).abs() < 1e-9);
        assert!((s.points[1].efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_summary_is_degenerate_but_valid() {
        let s = summarize(&[(8, 1.0)]);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].speedup, 1.0);
        assert_eq!(s.serial_fraction, None);
    }
}
