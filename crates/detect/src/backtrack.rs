//! Backtracking root-cause detection (paper §IV-B, Algorithm 1).
//!
//! All PPG edges are traversed in reverse as dependence edges. From each
//! problematic vertex the walk proceeds backwards:
//!
//! - at an **MPI vertex**, follow the inter-process communication
//!   dependence edge with the largest wait time (edges without waiting
//!   are pruned — they carry no delay and following them only inflates
//!   the search space and false positives);
//! - at an **unscanned `Loop`/`Branch` vertex**, follow the control
//!   dependence edge into the structure (continue from the end vertex of
//!   the loop body / the hotter arm), not the data dependence edge;
//! - otherwise follow the **data dependence** edge: the previous vertex
//!   in execution order, or the enclosing structure when at a block
//!   head;
//!
//! until a root vertex or a collective vertex is reached. (The starting
//! vertex itself may be a collective — that is where scaling loss
//! usually *manifests* — and a collective entered through a straggler
//! edge is also traversed, because the delay propagated through it.)
//!
//! The deepest computation vertex (`Comp`/`Loop`) of each path is the
//! reported root cause; paths sharing one are merged and ranked.

use crate::problematic::{AbnormalVertex, NonScalableVertex};
use crate::DetectConfig;
use scalana_graph::{Ppg, VertexId, VertexKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One step of a root-cause path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Rank the step executes on.
    pub rank: usize,
    /// The vertex.
    pub vertex: VertexId,
    /// Vertex kind label (`MPI_Waitall`, `Loop`, ...).
    pub kind: String,
    /// `file:line`.
    pub location: String,
    /// Vertex time on this rank.
    pub time: f64,
    /// Vertex wait time on this rank.
    pub wait_time: f64,
    /// Whether this step was reached through an inter-process edge.
    pub via_comm: bool,
}

/// A backward causal path from a problematic vertex to its root cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootCausePath {
    /// Steps, starting at the problematic vertex.
    pub steps: Vec<PathStep>,
    /// Index into `steps` of the identified root cause.
    pub root_cause_idx: usize,
    /// Whether the path found genuinely imbalanced computation (a step
    /// whose time exceeds its vertex's cross-rank median). Unconfident
    /// paths fall back to their deepest structure and are down-weighted
    /// when ranking root causes.
    pub confident: bool,
}

impl RootCausePath {
    /// The root-cause step.
    pub fn root_cause(&self) -> &PathStep {
        &self.steps[self.root_cause_idx]
    }
}

/// A deduplicated, ranked root cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootCause {
    /// The vertex.
    pub vertex: VertexId,
    /// Vertex kind label.
    pub kind: String,
    /// `file:line` in the source.
    pub location: String,
    /// Function the vertex lives in.
    pub func: String,
    /// Number of causal paths terminating here.
    pub path_count: usize,
    /// Ranking score (impact × imbalance).
    pub score: f64,
    /// Cross-rank mean time of the vertex.
    pub mean_time: f64,
    /// Cross-rank max/mean time imbalance.
    pub time_imbalance: f64,
    /// Cross-rank max/mean `TOT_INS` imbalance (the PMU signal used in
    /// the paper's SST and Nekbone case studies).
    pub ins_imbalance: f64,
}

/// Run backtracking from every problematic vertex (Algorithm 1's two
/// loops: first non-scalable seeds, then not-yet-scanned abnormal
/// seeds). Returns the raw paths and the merged, ranked root causes.
pub fn backtrack_all(
    ppg: &Ppg,
    non_scalable: &[NonScalableVertex],
    abnormal: &[AbnormalVertex],
    config: &DetectConfig,
) -> (Vec<RootCausePath>, Vec<RootCause>) {
    let mut scanned: HashSet<(usize, VertexId)> = HashSet::new();
    let mut paths = Vec::new();

    // Non-scalable seeds: start on the rank where the delay manifests —
    // the one waiting longest, falling back to the slowest.
    for n in non_scalable {
        let waits: Vec<f64> = (0..ppg.nprocs)
            .map(|r| ppg.perf(n.vertex, r).wait_time)
            .collect();
        let rank = if waits.iter().any(|w| *w > 0.0) {
            argmax(&waits)
        } else {
            argmax(&ppg.times_across_ranks(n.vertex))
        };
        if let Some(path) = backtrack_one(ppg, rank, n.vertex, config, &mut scanned) {
            paths.push(path);
        }
    }
    // Abnormal seeds not already covered.
    for a in abnormal {
        for &rank in &a.ranks {
            if scanned.contains(&(rank, a.vertex)) {
                continue;
            }
            if let Some(path) = backtrack_one(ppg, rank, a.vertex, config, &mut scanned) {
                paths.push(path);
            }
        }
    }

    let causes = merge_root_causes(ppg, &paths);
    (paths, causes)
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Backtrack from one `(rank, vertex)` seed.
fn backtrack_one(
    ppg: &Ppg,
    start_rank: usize,
    start_vertex: VertexId,
    config: &DetectConfig,
    scanned: &mut HashSet<(usize, VertexId)>,
) -> Option<RootCausePath> {
    let psg = &ppg.psg;
    let mut steps: Vec<PathStep> = Vec::new();
    let mut in_path: HashSet<(usize, VertexId)> = HashSet::new();
    let mut rank = start_rank;
    let mut vertex = start_vertex;
    let mut via_comm = true; // the seed behaves like a fresh entry point

    while steps.len() < config.max_path_len {
        if !in_path.insert((rank, vertex)) {
            break; // cycle guard
        }
        scanned.insert((rank, vertex));
        let v = psg.vertex(vertex);
        let perf = ppg.perf(vertex, rank);
        steps.push(PathStep {
            rank,
            vertex,
            kind: v.kind.label(),
            location: v.location(),
            time: perf.time,
            wait_time: perf.wait_time,
            via_comm,
        });

        if v.kind == VertexKind::Root {
            break;
        }

        // MPI vertex: prefer the inter-process dependence with real wait.
        if v.is_mpi() {
            // A collective reached intra-process is a full synchronization
            // point: causality does not extend further back (Algorithm 1's
            // stop condition). The seed and straggler-entered collectives
            // continue — the delay flowed through them.
            if v.is_collective() && !via_comm && steps.len() > 1 {
                break;
            }
            let best = ppg
                .deps_into(rank, vertex)
                .into_iter()
                .filter(|d| d.wait_time >= config.wait_prune)
                .max_by(|a, b| a.wait_time.partial_cmp(&b.wait_time).unwrap());
            if let Some(dep) = best {
                if !in_path.contains(&(dep.src_rank, dep.src_vertex)) {
                    rank = dep.src_rank;
                    vertex = dep.src_vertex;
                    via_comm = true;
                    continue;
                }
            }
        }

        // Unscanned Loop/Branch: control dependence into the structure.
        via_comm = false;
        let next = match v.kind {
            VertexKind::Loop if first_visit_structure(scanned, rank, vertex, psg) => {
                psg.loop_end(vertex)
            }
            VertexKind::Branch if first_visit_structure(scanned, rank, vertex, psg) => {
                // Continue from the hotter arm's end on this rank.
                psg.branch_arm_ends(vertex).into_iter().max_by(|a, b| {
                    ppg.perf(*a, rank)
                        .time
                        .partial_cmp(&ppg.perf(*b, rank).time)
                        .unwrap()
                })
            }
            _ => None,
        };
        // Data dependence: previous statement in execution order. At a
        // loop-body head the previous *execution* is the end of the
        // previous iteration, so prefer wrapping to the loop end before
        // climbing to the header — this follows delay chains that cross
        // iteration boundaries (an isend delayed by last iteration's
        // waitall).
        let next = next.or_else(|| psg.seq_pred(vertex)).or_else(|| {
            let parent = psg.parent(vertex)?;
            if psg.vertex(parent).kind == VertexKind::Loop {
                match psg.loop_end(parent) {
                    Some(end) if end != vertex && !in_path.contains(&(rank, end)) => Some(end),
                    _ => Some(parent),
                }
            } else {
                Some(parent)
            }
        });
        // Already-visited vertices are "scanned": pass through them by
        // following their data dependence (e.g. leaving a loop body we
        // descended into continues at the loop header's predecessor).
        let mut cand = next;
        let mut skips = 0;
        let resolved = loop {
            match cand {
                None => break None,
                Some(n) if !in_path.contains(&(rank, n)) => break Some(n),
                Some(n) => {
                    skips += 1;
                    if skips > config.max_path_len {
                        break None;
                    }
                    cand = psg.seq_pred(n).or_else(|| psg.parent(n));
                }
            }
        };
        match resolved {
            Some(n) => vertex = n,
            None => break,
        }
    }

    if steps.is_empty() {
        return None;
    }
    let (root_cause_idx, confident) = pick_root_cause(&steps, ppg);
    Some(RootCausePath {
        steps,
        root_cause_idx,
        confident,
    })
}

/// A structure counts as unscanned until its body has been entered —
/// approximated by whether any of its children are scanned on this rank.
fn first_visit_structure(
    scanned: &HashSet<(usize, VertexId)>,
    rank: usize,
    vertex: VertexId,
    psg: &scalana_graph::Psg,
) -> bool {
    !psg.vertex(vertex)
        .children
        .all()
        .iter()
        .any(|c| scanned.contains(&(rank, *c)))
}

/// Choose the path's root cause: the *computation* step (`Comp`/`Loop`)
/// where the delay originates — the one whose time on the path's rank
/// most exceeds the vertex's cross-rank median. The delayed rank's
/// extra work, a boundary loop only some ranks execute, or a slow-core
/// dgemm all maximize this excess; uniformly-executed structure scores
/// zero. With no imbalanced computation on the path, fall back to the
/// deepest computation step, then to the last step. When the winner is
/// a loop body the walk descended into, the enclosing Loop is reported
/// (the paper reports "the LOOP at bval3d.F:155").
fn pick_root_cause(steps: &[PathStep], ppg: &Ppg) -> (usize, bool) {
    let psg = &ppg.psg;
    let comp_steps: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(
                psg.vertex(s.vertex).kind,
                VertexKind::Comp | VertexKind::Loop
            )
        })
        .map(|(i, _)| i)
        .collect();
    let excess = |i: usize| {
        let s = &steps[i];
        let med = crate::fit::median(&ppg.times_across_ranks(s.vertex));
        s.time - med
    };
    let mut confident = false;
    let mut idx = match comp_steps.last() {
        Some(&last) => {
            let best = comp_steps
                .iter()
                .copied()
                .max_by(|&a, &b| excess(a).partial_cmp(&excess(b)).unwrap())
                .unwrap_or(last);
            if excess(best) > 0.0 {
                confident = true;
                best
            } else {
                last
            }
        }
        None => steps.len() - 1,
    };
    // Prefer the enclosing Loop the walk just descended through.
    if idx > 0
        && matches!(psg.vertex(steps[idx].vertex).kind, VertexKind::Comp)
        && matches!(psg.vertex(steps[idx - 1].vertex).kind, VertexKind::Loop)
        && psg.parent(steps[idx].vertex) == Some(steps[idx - 1].vertex)
    {
        idx -= 1;
    }
    (idx, confident)
}

/// Merge paths by root-cause vertex and rank by *explained symptom
/// time*: the waiting (or, failing that, execution) time of the
/// problematic vertices whose causal paths terminate at this cause.
fn merge_root_causes(ppg: &Ppg, paths: &[RootCausePath]) -> Vec<RootCause> {
    let mut groups: HashMap<VertexId, (usize, f64)> = HashMap::new();
    // Paths that located imbalanced computation take precedence; paths
    // that merely walked to their deepest structure only rank when no
    // confident evidence exists.
    let any_confident = paths.iter().any(|p| p.confident);
    for path in paths {
        if any_confident && !path.confident {
            continue;
        }
        let seed = &path.steps[0];
        let explained = if seed.wait_time > 0.0 {
            seed.wait_time
        } else {
            seed.time
        };
        let entry = groups.entry(path.root_cause().vertex).or_default();
        entry.0 += 1;
        entry.1 += explained;
    }
    let mut causes: Vec<RootCause> = groups
        .into_iter()
        .map(|(vertex, (path_count, explained))| {
            let v = ppg.psg.vertex(vertex);
            let times = ppg.times_across_ranks(vertex);
            let mean_time = times.iter().sum::<f64>() / times.len().max(1) as f64;
            let max_time = times.iter().copied().fold(0.0, f64::max);
            let time_imbalance = if mean_time > 0.0 {
                max_time / mean_time
            } else {
                1.0
            };
            let ins: Vec<f64> = (0..ppg.nprocs)
                .map(|r| ppg.perf(vertex, r).tot_ins)
                .collect();
            let mean_ins = ins.iter().sum::<f64>() / ins.len().max(1) as f64;
            let max_ins = ins.iter().copied().fold(0.0, f64::max);
            let ins_imbalance = if mean_ins > 0.0 {
                max_ins / mean_ins
            } else {
                1.0
            };
            RootCause {
                vertex,
                kind: v.kind.label(),
                location: v.location(),
                func: v.func.clone(),
                path_count,
                score: explained,
                mean_time,
                time_imbalance,
                ins_imbalance,
            }
        })
        .collect();
    // Ties broken by vertex id: `groups` is a HashMap, whose iteration
    // order differs between processes, and downstream consumers (the
    // service's content-addressed result cache) rely on identical inputs
    // producing byte-identical reports.
    causes.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.vertex.cmp(&b.vertex))
    });
    causes
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, CommDep, MpiKind, PsgOptions};
    use scalana_lang::parse_program;
    use std::sync::Arc;

    /// A Zeus-MP-shaped program: an imbalanced boundary loop feeds a
    /// non-blocking exchange whose waits drain into an allreduce.
    ///
    /// Structure per rank:
    ///   Branch { Loop(busy ranks only) } ; Isend ; Irecv ; Waitall ; Allreduce
    fn zeus_shape() -> (Arc<scalana_graph::Psg>, Ppg) {
        let src = r#"
            fn main() {
                if rank % 2 == 0 {
                    for j in 0 .. 8 {
                        comp(cycles = 1000);
                    }
                }
                let s = isend(dst = (rank + 1) % nprocs, tag = 0, bytes = 1k);
                let q = irecv(src = (rank + nprocs - 1) % nprocs, tag = 0);
                waitall();
                allreduce(bytes = 8);
            }
        "#;
        let program = parse_program("nudt.F", src).unwrap();
        let psg = Arc::new(build_psg(&program, &PsgOptions::default()));
        let nprocs = 4;
        let mut ppg = Ppg::new(Arc::clone(&psg), nprocs);

        let find = |kind: VertexKind| {
            psg.vertices
                .iter()
                .find(|v| v.kind == kind)
                .map(|v| v.id)
                .unwrap()
        };
        let loop_v = find(VertexKind::Loop);
        let isend = find(VertexKind::Mpi(MpiKind::Isend));
        let waitall = find(VertexKind::Mpi(MpiKind::Waitall));
        let allreduce = find(VertexKind::Mpi(MpiKind::Allreduce));

        for r in 0..nprocs {
            let busy = r % 2 == 0;
            if busy {
                ppg.perf_mut(loop_v, r).time = 0.1;
                ppg.perf_mut(loop_v, r).tot_ins = 1e6;
            }
            ppg.perf_mut(isend, r).time = 1e-6;
            // Odd (idle) ranks wait for their even neighbour's late isend.
            ppg.perf_mut(waitall, r).time = if busy { 1e-6 } else { 0.1 };
            ppg.perf_mut(waitall, r).wait_time = if busy { 0.0 } else { 0.1 };
            ppg.perf_mut(allreduce, r).time = 0.02;
            ppg.perf_mut(allreduce, r).wait_time = if busy { 0.0 } else { 0.01 };
            ppg.rank_elapsed[r] = 0.15;
        }
        // Waitall on odd rank r depends on isend from even rank r-1.
        for r in [1usize, 3] {
            ppg.add_comm(CommDep {
                src_rank: r - 1,
                src_vertex: isend,
                dst_rank: r,
                dst_vertex: waitall,
                count: 1,
                bytes: 1024,
                wait_time: 0.1,
            });
        }
        (psg, ppg)
    }

    #[test]
    fn zeus_chain_backtracks_to_boundary_loop() {
        let (psg, ppg) = zeus_shape();
        let allreduce = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Allreduce))
            .unwrap()
            .id;
        let seed = NonScalableVertex {
            vertex: allreduce,
            fit: crate::fit::Fit {
                slope: 0.3,
                intercept: 0.0,
                r2: 0.9,
            },
            times: vec![0.01, 0.02],
            time_fraction: 0.2,
            location: psg.vertex(allreduce).location(),
        };
        let (paths, causes) = backtrack_all(&ppg, &[seed], &[], &DetectConfig::default());
        assert!(!paths.is_empty());
        // The top root cause is the boundary loop.
        let top = &causes[0];
        assert_eq!(
            top.kind, "Loop",
            "root cause should be the loop: {causes:?}"
        );
        // The winning path crossed ranks through the waitall dependence.
        let loop_path = paths
            .iter()
            .find(|p| p.root_cause().kind == "Loop")
            .expect("a path reaches the loop");
        assert!(
            loop_path
                .steps
                .iter()
                .any(|s| s.via_comm && s.kind.contains("Isend")),
            "path crosses ranks at the isend: {:?}",
            loop_path.steps
        );
        assert!(
            loop_path.steps.iter().any(|s| s.kind.contains("Waitall")),
            "path passes the waitall"
        );
    }

    #[test]
    fn collective_reached_intraprocess_stops_the_walk() {
        // Program: allreduce ; comp ; barrier — backtracking from the
        // barrier must stop at the allreduce, not walk past it.
        let src = "fn main() { allreduce(bytes = 8); comp(cycles = 10); barrier(); }";
        let program = parse_program("t.mmpi", src).unwrap();
        let psg = Arc::new(build_psg(&program, &PsgOptions::default()));
        let mut ppg = Ppg::new(Arc::clone(&psg), 2);
        for v in 0..psg.vertex_count() as VertexId {
            for r in 0..2 {
                ppg.perf_mut(v, r).time = 0.01;
            }
        }
        ppg.rank_elapsed = vec![0.04, 0.04];
        let barrier = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Barrier))
            .unwrap()
            .id;
        let allreduce = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Allreduce))
            .unwrap()
            .id;
        let seed = AbnormalVertex {
            vertex: barrier,
            ranks: vec![1],
            ratio: 2.0,
            median_time: 0.01,
            location: String::new(),
        };
        let (paths, _) = backtrack_all(&ppg, &[], &[seed], &DetectConfig::default());
        let path = &paths[0];
        assert_eq!(
            path.steps.last().unwrap().vertex,
            allreduce,
            "stops at collective"
        );
    }

    #[test]
    fn wait_prune_filters_no_wait_edges(// Algorithm 1 prunes dependence edges without waiting events.
    ) {
        let (psg, mut ppg) = zeus_shape();
        // Zero out all wait on the recorded edges.
        for dep in &mut ppg.comm {
            dep.wait_time = 0.0;
        }
        let waitall = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Waitall))
            .unwrap()
            .id;
        let seed = AbnormalVertex {
            vertex: waitall,
            ranks: vec![1],
            ratio: 2.0,
            median_time: 0.01,
            location: String::new(),
        };
        let (paths, _) = backtrack_all(&ppg, &[], &[seed], &DetectConfig::default());
        // Without waits, the walk must not cross ranks.
        assert!(paths[0]
            .steps
            .iter()
            .all(|s| s.rank == 1 || !s.via_comm || s.vertex == waitall));
        assert!(paths[0].steps.iter().skip(1).all(|s| !s.via_comm));
    }

    #[test]
    fn abnormal_seeds_skip_already_scanned() {
        let (psg, ppg) = zeus_shape();
        let waitall = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Waitall))
            .unwrap()
            .id;
        let seed = AbnormalVertex {
            vertex: waitall,
            ranks: vec![1, 3],
            ratio: 2.0,
            median_time: 0.01,
            location: String::new(),
        };
        // Same seed twice: second pass adds nothing new.
        let (paths_once, _) = backtrack_all(
            &ppg,
            &[],
            std::slice::from_ref(&seed),
            &DetectConfig::default(),
        );
        let (paths_twice, _) =
            backtrack_all(&ppg, &[], &[seed.clone(), seed], &DetectConfig::default());
        assert_eq!(paths_once.len(), paths_twice.len());
    }

    #[test]
    fn path_length_is_capped() {
        let (psg, ppg) = zeus_shape();
        let allreduce = psg
            .vertices
            .iter()
            .find(|v| v.kind == VertexKind::Mpi(MpiKind::Allreduce))
            .unwrap()
            .id;
        let seed = AbnormalVertex {
            vertex: allreduce,
            ranks: vec![0],
            ratio: 2.0,
            median_time: 0.01,
            location: String::new(),
        };
        let config = DetectConfig {
            max_path_len: 2,
            ..Default::default()
        };
        let (paths, _) = backtrack_all(&ppg, &[], &[seed], &config);
        assert!(paths[0].steps.len() <= 2);
    }
}
