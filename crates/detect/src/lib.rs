//! # scalana-detect — scaling loss detection (paper §IV)
//!
//! The offline analysis module of ScalAna. Given Program Performance
//! Graphs collected at several process counts, it:
//!
//! 1. detects **non-scalable vertices** — vertices whose aggregated
//!    metric follows an unusual slope as the process count grows, found
//!    by fitting a log-log model per vertex ([`fit`]) under a choice of
//!    cross-rank aggregation strategies ([`fit::Aggregation`], §IV-A);
//! 2. detects **abnormal vertices** — vertices whose execution time
//!    differs across ranks beyond `AbnormThd` at one scale (§IV-A);
//! 3. runs **backtracking root-cause detection** (Algorithm 1,
//!    [`backtrack`]): from each problematic vertex, walk backwards over
//!    intra-process data/control dependence and inter-process
//!    communication dependence (pruned to edges with real wait time)
//!    until a root or collective vertex, yielding causal paths whose
//!    deepest computation vertex is the root cause;
//! 4. renders a ScalAna-viewer-style text report ([`report`]).

pub mod backtrack;
pub mod fit;
pub mod problematic;
pub mod report;
pub mod scaling;

pub use backtrack::{PathStep, RootCause, RootCausePath};
pub use fit::{loglog_fit, Aggregation, Fit};
pub use problematic::{AbnormalVertex, NonScalableVertex};
pub use report::DetectionReport;
pub use scaling::{summarize, ScalePoint, ScalingSummary};

use scalana_graph::Ppg;

/// Detection knobs (paper §V user parameters).
#[derive(Debug, Clone)]
pub struct DetectConfig {
    /// The paper's `AbnormThd`: a rank is abnormal at a vertex when its
    /// time exceeds this multiple of the cross-rank median. Paper
    /// default: 1.3.
    pub abnorm_thd: f64,
    /// Cross-rank aggregation for non-scalable detection.
    pub aggregation: Aggregation,
    /// Keep at most this many non-scalable vertices.
    pub top_k: usize,
    /// Ignore vertices below this fraction of aggregate run time.
    pub min_time_fraction: f64,
    /// Flag vertices whose fitted log-log slope is at least this.
    /// Strong-scaling compute trends to -1, so anything clearly above
    /// ideal (default -0.85) is a candidate; the paper ranks by slope
    /// and keeps the top `top_k`, which this floor merely pre-filters.
    pub slope_threshold: f64,
    /// Keep a communication-dependence edge during backtracking only if
    /// its total wait time reaches this many seconds (Algorithm 1's
    /// pruning of non-waiting edges).
    pub wait_prune: f64,
    /// Safety cap on backtracking path length.
    pub max_path_len: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            abnorm_thd: 1.3,
            aggregation: Aggregation::Mean,
            top_k: 5,
            min_time_fraction: 0.01,
            slope_threshold: -0.85,
            wait_prune: 1e-7,
            max_path_len: 4096,
        }
    }
}

/// Run the full detection pipeline over PPGs collected at ascending
/// process counts. The last (largest) run hosts abnormal detection and
/// backtracking.
pub fn detect(runs: &[&Ppg], config: &DetectConfig) -> DetectionReport {
    assert!(!runs.is_empty(), "detection needs at least one run");
    let largest = runs[runs.len() - 1];
    let non_scalable = problematic::find_non_scalable(runs, config);
    let abnormal = problematic::find_abnormal(largest, config);
    let (paths, root_causes) = backtrack::backtrack_all(largest, &non_scalable, &abnormal, config);
    DetectionReport {
        non_scalable,
        abnormal,
        paths,
        root_causes,
    }
}
