//! Location-aware problematic vertex detection (paper §IV-A).
//!
//! The per-process PSG is invariant across job scales, so the same
//! vertex can be compared (a) across scales — *non-scalable vertex
//! detection* — and (b) across ranks at one scale — *abnormal vertex
//! detection*.

use crate::fit::{loglog_fit, median, Fit};
use crate::DetectConfig;
use scalana_graph::{Ppg, VertexId, VertexKind};
use serde::{Deserialize, Serialize};

/// A vertex whose metric scales badly with the process count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonScalableVertex {
    /// The vertex.
    pub vertex: VertexId,
    /// Fitted log-log model over process counts.
    pub fit: Fit,
    /// Aggregated metric per run (ascending process counts).
    pub times: Vec<f64>,
    /// Fraction of aggregate time at the largest scale.
    pub time_fraction: f64,
    /// `file:line` of the vertex.
    pub location: String,
}

/// A vertex whose time is imbalanced across ranks at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbnormalVertex {
    /// The vertex.
    pub vertex: VertexId,
    /// Ranks exceeding `AbnormThd` × median.
    pub ranks: Vec<usize>,
    /// Max-over-median severity ratio.
    pub ratio: f64,
    /// Cross-rank median time.
    pub median_time: f64,
    /// `file:line` of the vertex.
    pub location: String,
}

/// Non-scalable vertex detection: fit each vertex's aggregated metric
/// over process counts, rank by slope, keep impactful top-`k`.
pub fn find_non_scalable(runs: &[&Ppg], config: &DetectConfig) -> Vec<NonScalableVertex> {
    if runs.len() < 2 {
        return Vec::new();
    }
    let largest = runs[runs.len() - 1];
    let scales: Vec<f64> = runs.iter().map(|r| r.nprocs as f64).collect();
    let vertex_count = runs.iter().map(|r| r.psg.vertex_count()).min().unwrap_or(0);

    let mut found = Vec::new();
    for v in 0..vertex_count as VertexId {
        if matches!(largest.psg.vertex(v).kind, VertexKind::Root) {
            continue;
        }
        let times: Vec<f64> = runs
            .iter()
            .map(|r| config.aggregation.aggregate(&r.times_across_ranks(v)))
            .collect();
        let Some(fit) = loglog_fit(&scales, &times) else {
            continue;
        };
        let time_fraction = largest.time_fraction(v);
        if time_fraction < config.min_time_fraction {
            continue;
        }
        if fit.slope < config.slope_threshold {
            continue;
        }
        found.push(NonScalableVertex {
            vertex: v,
            fit,
            times,
            time_fraction,
            location: largest.psg.vertex(v).location(),
        });
    }
    // Worst scaling first; ties by impact.
    found.sort_by(|a, b| {
        b.fit
            .slope
            .partial_cmp(&a.fit.slope)
            .unwrap()
            .then(b.time_fraction.partial_cmp(&a.time_fraction).unwrap())
    });
    found.truncate(config.top_k);
    found
}

/// Abnormal vertex detection at one scale: ranks whose time exceeds
/// `AbnormThd` × cross-rank median.
pub fn find_abnormal(ppg: &Ppg, config: &DetectConfig) -> Vec<AbnormalVertex> {
    let mut found = Vec::new();
    for v in 0..ppg.psg.vertex_count() as VertexId {
        if matches!(ppg.psg.vertex(v).kind, VertexKind::Root) {
            continue;
        }
        let times = ppg.times_across_ranks(v);
        // Compare only ranks that actually executed the vertex: a
        // rank-dependent branch arm runs on a subset of ranks, and
        // imbalance is meaningful among the executing ones.
        let active: Vec<f64> = times.iter().copied().filter(|t| *t > 0.0).collect();
        if active.is_empty() {
            continue;
        }
        let med = median(&active);
        let max = active.iter().copied().fold(f64::MIN, f64::max);
        if active.len() >= 2 && max > config.abnorm_thd * med && significant(ppg, max) {
            let ranks = collect_ranks(&times, config.abnorm_thd * med);
            found.push(AbnormalVertex {
                vertex: v,
                ranks,
                ratio: max / med,
                median_time: med,
                location: ppg.psg.vertex(v).location(),
            });
        } else if active.len() * 4 <= ppg.nprocs && max_is_substantial(ppg, max) {
            // SPMD asymmetry: substantial work executed by a small
            // subset of ranks (e.g. an injected straggler, a serial
            // section). Equal *within* the subset, so the ratio rule
            // misses it; the concentration itself is the anomaly.
            let ranks = collect_ranks(&times, 0.0);
            let mean_over_all = times.iter().sum::<f64>() / ppg.nprocs as f64;
            found.push(AbnormalVertex {
                vertex: v,
                ranks,
                ratio: if mean_over_all > 0.0 {
                    max / mean_over_all
                } else {
                    1.0
                },
                median_time: med,
                location: ppg.psg.vertex(v).location(),
            });
        }
    }
    found.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).unwrap());
    found
}

/// Ignore imbalance on vertices too small to matter (< 0.1% of the
/// average rank's runtime).
fn significant(ppg: &Ppg, time: f64) -> bool {
    let avg_elapsed = ppg.rank_elapsed.iter().sum::<f64>() / ppg.rank_elapsed.len().max(1) as f64;
    time > avg_elapsed * 1e-3
}

/// Concentration anomalies need a higher bar: at least 2% of a rank's
/// runtime (root-only bookkeeping stays under it).
fn max_is_substantial(ppg: &Ppg, time: f64) -> bool {
    let avg_elapsed = ppg.rank_elapsed.iter().sum::<f64>() / ppg.rank_elapsed.len().max(1) as f64;
    time > avg_elapsed * 0.02
}

fn collect_ranks(times: &[f64], threshold: f64) -> Vec<usize> {
    times
        .iter()
        .enumerate()
        .filter(|(_, t)| **t > threshold)
        .map(|(r, _)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_lang::parse_program;
    use std::sync::Arc;

    /// Build a tiny PSG with known vertices: Comp(0..), Sendrecv, Allreduce.
    fn test_psg() -> Arc<scalana_graph::Psg> {
        let src = "fn main() { comp(cycles = 1); sendrecv(dst = (rank + 1) % nprocs, \
                    src = (rank + nprocs - 1) % nprocs, sendtag = 0, recvtag = 0, bytes = 8); \
                    allreduce(bytes = 8); }";
        let program = parse_program("app.mmpi", src).unwrap();
        Arc::new(build_psg(&program, &PsgOptions::default()))
    }

    fn comp_vertex(psg: &scalana_graph::Psg) -> VertexId {
        psg.vertices
            .iter()
            .find(|v| v.kind == VertexKind::Comp)
            .unwrap()
            .id
    }

    fn allreduce_vertex(psg: &scalana_graph::Psg) -> VertexId {
        psg.vertices
            .iter()
            .find(|v| matches!(v.kind, VertexKind::Mpi(scalana_graph::MpiKind::Allreduce)))
            .unwrap()
            .id
    }

    /// Synthesize a PPG where `comp` scales as work/p and `allreduce`
    /// grows as log2(p).
    fn make_run(psg: &Arc<scalana_graph::Psg>, p: usize, comp_scales: bool) -> Ppg {
        let mut ppg = Ppg::new(Arc::clone(psg), p);
        let comp = comp_vertex(psg);
        let coll = allreduce_vertex(psg);
        let comp_time = if comp_scales { 64.0 / p as f64 } else { 8.0 };
        let coll_time = 0.05 * (p as f64).log2();
        for r in 0..p {
            ppg.perf_mut(comp, r).time = comp_time;
            ppg.perf_mut(comp, r).count = 1;
            ppg.perf_mut(coll, r).time = coll_time;
            ppg.perf_mut(coll, r).wait_time = coll_time * 0.8;
            ppg.rank_elapsed[r] = comp_time + coll_time;
        }
        ppg
    }

    #[test]
    fn scaling_compute_is_not_flagged_but_growing_collective_is() {
        let psg = test_psg();
        let runs: Vec<Ppg> = [4, 8, 16, 32, 64]
            .iter()
            .map(|&p| make_run(&psg, p, true))
            .collect();
        let refs: Vec<&Ppg> = runs.iter().collect();
        let config = DetectConfig::default();
        let found = find_non_scalable(&refs, &config);
        let coll = allreduce_vertex(&psg);
        let comp = comp_vertex(&psg);
        assert!(
            found.iter().any(|n| n.vertex == coll),
            "allreduce flagged: {found:?}"
        );
        assert!(
            found.iter().all(|n| n.vertex != comp),
            "scaling comp not flagged"
        );
        let flagged = found.iter().find(|n| n.vertex == coll).unwrap();
        assert!(flagged.fit.slope > 0.0);
    }

    #[test]
    fn stagnating_compute_is_flagged() {
        let psg = test_psg();
        let runs: Vec<Ppg> = [4, 8, 16, 32]
            .iter()
            .map(|&p| make_run(&psg, p, false))
            .collect();
        let refs: Vec<&Ppg> = runs.iter().collect();
        let found = find_non_scalable(&refs, &DetectConfig::default());
        let comp = comp_vertex(&psg);
        let flagged = found
            .iter()
            .find(|n| n.vertex == comp)
            .expect("comp flagged");
        assert!(
            flagged.fit.slope.abs() < 0.1,
            "flat trend: {}",
            flagged.fit.slope
        );
        assert!(flagged.time_fraction > 0.5);
    }

    #[test]
    fn single_run_yields_no_non_scalable() {
        let psg = test_psg();
        let run = make_run(&psg, 8, true);
        assert!(find_non_scalable(&[&run], &DetectConfig::default()).is_empty());
    }

    #[test]
    fn abnormal_detection_flags_straggler_rank() {
        let psg = test_psg();
        let mut ppg = make_run(&psg, 8, true);
        let comp = comp_vertex(&psg);
        // Rank 4 takes 3x the median (paper Fig. 7b shape).
        ppg.perf_mut(comp, 4).time *= 3.0;
        let found = find_abnormal(&ppg, &DetectConfig::default());
        let ab = found
            .iter()
            .find(|a| a.vertex == comp)
            .expect("comp abnormal");
        assert_eq!(ab.ranks, vec![4]);
        assert!(ab.ratio > 2.9 && ab.ratio < 3.1);
    }

    #[test]
    fn abnormal_threshold_is_respected() {
        let psg = test_psg();
        let mut ppg = make_run(&psg, 8, true);
        let comp = comp_vertex(&psg);
        // 1.2x the median stays under AbnormThd = 1.3.
        ppg.perf_mut(comp, 2).time *= 1.2;
        let found = find_abnormal(&ppg, &DetectConfig::default());
        assert!(found.iter().all(|a| a.vertex != comp));
        // But a lower threshold catches it.
        let strict = DetectConfig {
            abnorm_thd: 1.1,
            ..Default::default()
        };
        let found = find_abnormal(&ppg, &strict);
        assert!(found.iter().any(|a| a.vertex == comp));
    }

    #[test]
    fn partially_executed_vertices_use_active_median() {
        let psg = test_psg();
        let mut ppg = make_run(&psg, 8, true);
        let comp = comp_vertex(&psg);
        // Only ranks 0..3 execute; rank 3 is 4x slower than peers.
        for r in 0..8 {
            ppg.perf_mut(comp, r).time = 0.0;
        }
        for r in 0..3 {
            ppg.perf_mut(comp, r).time = 1.0;
        }
        ppg.perf_mut(comp, 3).time = 4.0;
        let found = find_abnormal(&ppg, &DetectConfig::default());
        let ab = found.iter().find(|a| a.vertex == comp).expect("flagged");
        assert_eq!(ab.ranks, vec![3]);
    }

    #[test]
    fn insignificant_vertices_ignored() {
        let psg = test_psg();
        let mut ppg = make_run(&psg, 8, true);
        let comp = comp_vertex(&psg);
        // Huge relative imbalance on a vanishing absolute time.
        for r in 0..8 {
            ppg.perf_mut(comp, r).time = 1e-9;
        }
        ppg.perf_mut(comp, 0).time = 1e-8;
        let found = find_abnormal(&ppg, &DetectConfig::default());
        assert!(found.iter().all(|a| a.vertex != comp));
    }
}
