//! Log-log model fitting and cross-rank aggregation (paper §IV-A).
//!
//! Non-scalable vertex detection fits `log T = a + b · log p` per vertex
//! over the process counts of the collected runs (the paper cites the
//! regression-based scalability-prediction model of Barnes et al.). The
//! slope `b` is the vertex's "changing rate": ideally-scaling compute
//! has `b ≈ -1` under strong scaling, stagnating vertices sit near 0,
//! and growing communication has `b > 0`.

use serde::{Deserialize, Serialize};

/// Result of a least-squares fit in log-log space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// Slope `b` of `log T = a + b log p`.
    pub slope: f64,
    /// Intercept `a`.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl Fit {
    /// Predicted metric at scale `p`.
    pub fn predict(&self, p: f64) -> f64 {
        (self.intercept + self.slope * p.ln()).exp()
    }
}

/// Fit `log y = a + b log x`. Pairs with non-positive values are
/// skipped; returns `None` with fewer than two usable pairs or when all
/// `x` coincide.
pub fn loglog_fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    let points: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r2 = if ss_tot <= 1e-18 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Fit {
        slope,
        intercept,
        r2,
    })
}

/// How to reduce a vertex's per-rank metric to one number per run
/// (paper §IV-A discusses and the authors "test all strategies").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Use one particular rank.
    SingleRank(usize),
    /// Arithmetic mean over ranks.
    Mean,
    /// Median over ranks.
    Median,
    /// Maximum over ranks (most pessimistic).
    Max,
    /// 1-D k-means into `k` clusters, then the mean of cluster means —
    /// robust when ranks form behaviour groups.
    Clustered {
        /// Cluster count.
        k: usize,
    },
}

impl Aggregation {
    /// Reduce per-rank values.
    pub fn aggregate(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        match self {
            Aggregation::SingleRank(r) => values.get(*r).copied().unwrap_or(0.0),
            Aggregation::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregation::Median => median(values),
            Aggregation::Max => values.iter().copied().fold(f64::MIN, f64::max),
            Aggregation::Clustered { k } => clustered_mean(values, (*k).max(1)),
        }
    }
}

/// Median of a slice (not in-place).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Deterministic 1-D k-means (quantile initialization, 32 iterations),
/// returning the unweighted mean of cluster centroids.
fn clustered_mean(values: &[f64], k: usize) -> f64 {
    let k = k.min(values.len());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Spread initial centroids across the value range (quantiles from
    // min to max), so distinct groups get distinct seeds.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| sorted[(i * (sorted.len() - 1)) / (k - 1).max(1)])
        .collect();
    let mut assignment = vec![0usize; values.len()];
    for _ in 0..32 {
        let mut changed = false;
        for (i, v) in values.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| (v - a.1).abs().partial_cmp(&(v - b.1).abs()).unwrap())
                .map(|(j, _)| j)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (i, v) in values.iter().enumerate() {
            sums[assignment[i]] += v;
            counts[assignment[i]] += 1;
        }
        for j in 0..k {
            if counts[j] > 0 {
                centroids[j] = sums[j] / counts[j] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    let live: Vec<f64> = centroids
        .iter()
        .enumerate()
        .filter(|(j, _)| assignment.iter().any(|a| a == j))
        .map(|(_, c)| *c)
        .collect();
    if live.is_empty() {
        0.0
    } else {
        live.iter().sum::<f64>() / live.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_power_law() {
        // T = 8 / p  =>  slope -1, intercept ln 8.
        let ps = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ts: Vec<f64> = ps.iter().map(|p| 8.0 / p).collect();
        let fit = loglog_fit(&ps, &ts).unwrap();
        assert!((fit.slope + 1.0).abs() < 1e-9);
        assert!((fit.intercept - 8.0f64.ln()).abs() < 1e-9);
        assert!(fit.r2 > 0.999);
        assert!((fit.predict(64.0) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn recovers_growing_trend() {
        // T = 0.1 * p^0.5
        let ps = [4.0, 16.0, 64.0, 256.0];
        let ts: Vec<f64> = ps.iter().map(|p: &f64| 0.1 * p.sqrt()).collect();
        let fit = loglog_fit(&ps, &ts).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-9);
    }

    #[test]
    fn insufficient_points_is_none() {
        assert!(loglog_fit(&[2.0], &[1.0]).is_none());
        assert!(loglog_fit(&[2.0, 4.0], &[0.0, 0.0]).is_none());
        assert!(loglog_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let ps = [2.0, 4.0, 8.0, 16.0];
        let clean: Vec<f64> = ps.iter().map(|p| 1.0 / p).collect();
        let noisy = [0.7, 0.2, 0.21, 0.04];
        let f_clean = loglog_fit(&ps, &clean).unwrap();
        let f_noisy = loglog_fit(&ps, &noisy).unwrap();
        assert!(f_clean.r2 > f_noisy.r2);
    }

    #[test]
    fn aggregation_strategies() {
        let values = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(Aggregation::Mean.aggregate(&values), 4.0);
        assert_eq!(Aggregation::Median.aggregate(&values), 2.5);
        assert_eq!(Aggregation::Max.aggregate(&values), 10.0);
        assert_eq!(Aggregation::SingleRank(2).aggregate(&values), 3.0);
        assert_eq!(Aggregation::SingleRank(99).aggregate(&values), 0.0);
        assert_eq!(Aggregation::Mean.aggregate(&[]), 0.0);
    }

    #[test]
    fn clustered_mean_separates_groups() {
        // Two clear groups: {1.0-ish} x 6 and {10.0-ish} x 2. The plain
        // mean (3.25) over-weights the big group; the clustered mean
        // ((1 + 10) / 2 = 5.5) treats groups symmetrically.
        let values = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 10.0];
        let c = Aggregation::Clustered { k: 2 }.aggregate(&values);
        assert!((c - 5.5).abs() < 0.5, "clustered mean {c}");
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
