//! Text rendering of detection results — the `ScalAna-viewer` stand-in.
//!
//! The paper's GUI lists root-cause vertices with their calling paths in
//! an upper pane and the corresponding code snippets below. This module
//! renders the same content as text: ranked root causes with locations,
//! the causal paths that reached them, and the problematic-vertex lists.

use crate::backtrack::{RootCause, RootCausePath};
use crate::problematic::{AbnormalVertex, NonScalableVertex};
use std::fmt;
use std::fmt::Write as _;

/// Full output of one detection run.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// Non-scalable vertices (paper Fig. 7a).
    pub non_scalable: Vec<NonScalableVertex>,
    /// Abnormal vertices at the largest scale (paper Fig. 7b).
    pub abnormal: Vec<AbnormalVertex>,
    /// Backtracking paths (paper Fig. 8/12).
    pub paths: Vec<RootCausePath>,
    /// Deduplicated root causes, ranked by impact.
    pub root_causes: Vec<RootCause>,
}

impl DetectionReport {
    /// The top root cause, if any.
    pub fn top_root_cause(&self) -> Option<&RootCause> {
        self.root_causes.first()
    }

    /// True when a root cause at `file:line` was identified.
    pub fn found_at(&self, location: &str) -> bool {
        self.root_causes.iter().any(|c| c.location == location)
    }

    /// Render the viewer-style text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== ScalAna detection report ===");
        let _ = writeln!(
            out,
            "\n-- Non-scalable vertices ({}) --",
            self.non_scalable.len()
        );
        for n in &self.non_scalable {
            let _ = writeln!(
                out,
                "  {:<22} slope {:+.2} (R2 {:.2})  {:>5.1}% of time  [{}]",
                n.location,
                n.fit.slope,
                n.fit.r2,
                n.time_fraction * 100.0,
                series(&n.times),
            );
        }
        let _ = writeln!(out, "\n-- Abnormal vertices ({}) --", self.abnormal.len());
        for a in self.abnormal.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<22} {:.2}x median on ranks {:?}",
                a.location, a.ratio, a.ranks
            );
        }
        let _ = writeln!(out, "\n-- Root causes ({}) --", self.root_causes.len());
        for (i, c) in self.root_causes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} {:<8} {:<22} in {:<14} score {:.3e}  paths {}  \
                 time imb {:.2}x  TOT_INS imb {:.2}x",
                i + 1,
                c.kind,
                c.location,
                c.func,
                c.score,
                c.path_count,
                c.time_imbalance,
                c.ins_imbalance,
            );
        }
        let _ = writeln!(out, "\n-- Causal paths ({}) --", self.paths.len());
        for (i, p) in self.paths.iter().enumerate().take(8) {
            let _ = writeln!(out, "  path {}:", i + 1);
            for (j, s) in p.steps.iter().enumerate() {
                let marker = if j == p.root_cause_idx {
                    " <== root cause"
                } else {
                    ""
                };
                let hop = if s.via_comm { "~>" } else { "->" };
                let _ = writeln!(
                    out,
                    "    {} rank {:<4} {:<14} {:<22} time {:.3e} wait {:.3e}{}",
                    hop, s.rank, s.kind, s.location, s.time, s.wait_time, marker
                );
            }
        }
        out
    }
}

fn series(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.2e}"))
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::PathStep;
    use crate::fit::Fit;

    fn sample_report() -> DetectionReport {
        DetectionReport {
            non_scalable: vec![NonScalableVertex {
                vertex: 5,
                fit: Fit {
                    slope: 0.4,
                    intercept: -2.0,
                    r2: 0.97,
                },
                times: vec![0.01, 0.02, 0.04],
                time_fraction: 0.31,
                location: "nudt.F:361".into(),
            }],
            abnormal: vec![AbnormalVertex {
                vertex: 2,
                ranks: vec![4, 6],
                ratio: 2.4,
                median_time: 0.05,
                location: "bval3d.F:155".into(),
            }],
            paths: vec![RootCausePath {
                steps: vec![
                    PathStep {
                        rank: 1,
                        vertex: 5,
                        kind: "MPI_Allreduce".into(),
                        location: "nudt.F:361".into(),
                        time: 0.04,
                        wait_time: 0.03,
                        via_comm: false,
                    },
                    PathStep {
                        rank: 0,
                        vertex: 2,
                        kind: "Loop".into(),
                        location: "bval3d.F:155".into(),
                        time: 0.12,
                        wait_time: 0.0,
                        via_comm: true,
                    },
                ],
                root_cause_idx: 1,
                confident: true,
            }],
            root_causes: vec![RootCause {
                vertex: 2,
                kind: "Loop".into(),
                location: "bval3d.F:155".into(),
                func: "bval3d".into(),
                path_count: 3,
                score: 0.36,
                mean_time: 0.06,
                time_imbalance: 2.0,
                ins_imbalance: 2.1,
            }],
        }
    }

    #[test]
    fn render_contains_key_facts() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("nudt.F:361"));
        assert!(text.contains("bval3d.F:155"));
        assert!(text.contains("root cause"));
        assert!(text.contains("Loop"));
        assert!(text.contains("ranks [4, 6]"));
    }

    #[test]
    fn found_at_and_top() {
        let report = sample_report();
        assert!(report.found_at("bval3d.F:155"));
        assert!(!report.found_at("elsewhere.c:1"));
        assert_eq!(report.top_root_cause().unwrap().location, "bval3d.F:155");
    }

    #[test]
    fn display_matches_render() {
        let report = sample_report();
        assert_eq!(report.to_string(), report.render());
    }
}
