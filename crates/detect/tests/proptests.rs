//! Property-based tests for the detection math.

use proptest::prelude::*;
use scalana_detect::{loglog_fit, Aggregation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Planted power laws are recovered to high precision.
    #[test]
    fn fit_recovers_planted_slope(
        slope in -2.0f64..2.0,
        coeff in 0.001f64..1000.0,
        npoints in 3usize..10,
    ) {
        let xs: Vec<f64> = (0..npoints).map(|i| 2f64.powi(i as i32 + 1)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| coeff * x.powf(slope)).collect();
        let fit = loglog_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!(fit.r2 > 0.999999);
        // Prediction interpolates exactly on a clean power law.
        let mid = (xs[0] * xs[1]).sqrt();
        prop_assert!((fit.predict(mid) - coeff * mid.powf(slope)).abs()
            / (coeff * mid.powf(slope)) < 1e-6);
    }

    /// Bounded multiplicative noise keeps the slope within the noise
    /// band (robustness property used by non-scalable detection).
    #[test]
    fn fit_is_robust_to_bounded_noise(
        slope in -1.5f64..1.5,
        seed in 0u64..1000,
    ) {
        let xs: Vec<f64> = (1..8).map(|i| 2f64.powi(i)).collect();
        // Deterministic pseudo-noise in [0.95, 1.05].
        let noise = |i: usize| {
            let h = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64 * 0x517c_c1b7);
            0.95 + (h % 1000) as f64 / 10_000.0
        };
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x.powf(slope) * noise(i))
            .collect();
        let fit = loglog_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 0.1, "slope {} vs {}", fit.slope, slope);
    }

    /// Aggregations are bounded by the data range and exact on constant
    /// vectors.
    #[test]
    fn aggregations_are_sane(values in proptest::collection::vec(0.0f64..1e6, 1..64)) {
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        for agg in [
            Aggregation::Mean,
            Aggregation::Median,
            Aggregation::Max,
            Aggregation::Clustered { k: 2 },
            Aggregation::Clustered { k: 4 },
        ] {
            let v = agg.aggregate(&values);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "{agg:?} gave {v} outside [{min},{max}]");
        }
    }

    #[test]
    fn aggregations_exact_on_constant(c in 0.0f64..1e6, n in 1usize..32) {
        let values = vec![c; n];
        for agg in [
            Aggregation::Mean,
            Aggregation::Median,
            Aggregation::Max,
            Aggregation::SingleRank(0),
            Aggregation::Clustered { k: 3 },
        ] {
            prop_assert!((agg.aggregate(&values) - c).abs() < 1e-9);
        }
    }

    /// Max dominates mean dominates nothing-below-median ordering.
    #[test]
    fn aggregation_ordering(values in proptest::collection::vec(0.0f64..1e6, 2..64)) {
        let mean = Aggregation::Mean.aggregate(&values);
        let max = Aggregation::Max.aggregate(&values);
        prop_assert!(max >= mean - 1e-9);
    }
}
