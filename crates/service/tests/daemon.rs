//! End-to-end daemon test over a real TCP socket.
//!
//! Boots `Server` on an ephemeral port, drives it purely through the
//! HTTP client, and checks the acceptance contract:
//!
//! - N concurrent submissions all complete, and each served report is
//!   **byte-identical** to a direct `scalana_core::pipeline` run of the
//!   same spec;
//! - re-submitting an identical job is answered from the
//!   content-addressed cache — visible in `/stats` as a `cache_hits`
//!   increment with `executed` unchanged (the simulator did not re-run);
//! - persisted profile images are served per scale and reload through
//!   `scalana_profile::store`.

use scalana_core::{pipeline, ScalAnaConfig};
use scalana_lang::parse_program;
use scalana_service::json::Json;
use scalana_service::jsonify::report_to_json;
use scalana_service::{client, Server, ServiceConfig};
use std::time::Duration;

/// A family of small programs, parameterized so each worker submits a
/// distinct job. `WORK` shifts the computation size; rank 0 carries a
/// serial section so detection has something to find.
fn program_text(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 4 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{\n\
                     for s in 0 .. 2 {{ comp(cycles = WORK / 8, ins = WORK / 8); }}\n\
                 }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
}

const SCALES: [usize; 2] = [2, 4];

/// The report JSON a direct (in-process) pipeline run produces.
fn direct_report(name: &str, text: &str) -> String {
    let program = parse_program(name, text).unwrap();
    let config = ScalAnaConfig::default();
    let analysis = pipeline::analyze(&program, &SCALES, &config).unwrap();
    report_to_json(&analysis.report).render()
}

fn submit_body(name: &str, text: &str) -> String {
    Json::obj(vec![
        ("source", text.into()),
        ("name", name.into()),
        ("scales", SCALES.to_vec().into()),
    ])
    .render()
}

fn stat(addr: &str, key: &str) -> i64 {
    let stats = client::request_json(addr, "GET", "/stats", "").unwrap();
    stats.get(key).and_then(Json::as_i64).unwrap()
}

#[test]
fn concurrent_submissions_cache_hits_and_byte_identical_reports() {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_capacity: 32,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let specs: Vec<(String, String)> = (0..3)
        .map(|i| (format!("job{i}.mmpi"), program_text(400_000 + 100_000 * i)))
        .collect();

    // Two concurrent submissions per spec: 6 clients race, 3 unique jobs.
    let keys: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..specs.len() * 2)
            .map(|i| {
                let (name, text) = &specs[i % specs.len()];
                let addr = addr.clone();
                scope.spawn(move || {
                    let response =
                        client::request_json(&addr, "POST", "/jobs", &submit_body(name, text))
                            .unwrap();
                    response.get("job").unwrap().as_str().unwrap().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Identical specs resolve to identical content addresses.
    for i in 0..specs.len() {
        assert_eq!(keys[i], keys[i + specs.len()], "same spec, same key");
    }

    // All jobs complete, and every served report matches a direct
    // pipeline run byte for byte.
    for (i, (name, text)) in specs.iter().enumerate() {
        let status = client::wait_for_job(&addr, &keys[i], Duration::from_secs(120)).unwrap();
        assert_eq!(
            status.get("status").and_then(Json::as_str),
            Some("done"),
            "job {i}: {status}"
        );
        let result =
            client::request_json(&addr, "GET", &format!("/jobs/{}/result", keys[i]), "").unwrap();
        let served = result.get("report").unwrap().render();
        assert_eq!(
            served,
            direct_report(name, text),
            "served report for {name} diverges from the direct pipeline run"
        );
        assert_eq!(
            result.get("runs").unwrap().as_array().unwrap().len(),
            SCALES.len()
        );
    }

    // The duplicate submissions coalesced: exactly 3 pipeline executions.
    assert_eq!(stat(&addr, "executed"), 3);
    assert_eq!(stat(&addr, "completed"), 3);
    assert_eq!(stat(&addr, "cache_hits"), 3);
    assert_eq!(stat(&addr, "cache_misses"), 3);

    // Re-submitting an identical, already-completed job is served from
    // the cache: hit counter moves, executed does not.
    let (name, text) = &specs[0];
    let response = client::request_json(&addr, "POST", "/jobs", &submit_body(name, text)).unwrap();
    assert_eq!(response.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(stat(&addr, "cache_hits"), 4);
    assert_eq!(stat(&addr, "executed"), 3, "cache hit must not re-simulate");

    // Persisted profile images come back through the store intact.
    for &nprocs in &SCALES {
        let (code, image) = client::request_raw(
            &addr,
            "GET",
            &format!("/jobs/{}/profile/{nprocs}", keys[0]),
            "",
        )
        .unwrap();
        assert_eq!(code, 200);
        let profile = scalana_profile::store::load(bytes::Bytes::from(image)).unwrap();
        assert_eq!(profile.nprocs, nprocs);
    }
    let (code, _) =
        client::request_raw(&addr, "GET", &format!("/jobs/{}/profile/999", keys[0]), "").unwrap();
    assert_eq!(code, 404);

    client::request_json(&addr, "POST", "/shutdown", "").unwrap();
    server_thread.join().unwrap().unwrap();
}

#[test]
fn error_paths_over_the_wire() {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Liveness.
    let health = client::request_json(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));

    // Bad submissions are 400s with a message.
    let (code, body) = client::request(&addr, "POST", "/jobs", "{}").unwrap();
    assert_eq!(code, 400);
    assert!(body.contains("error"), "{body}");

    // Unknown endpoints and jobs.
    let (code, _) = client::request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::request(&addr, "GET", "/jobs/doesnotexist", "").unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::request(&addr, "DELETE", "/jobs/x", "").unwrap();
    assert_eq!(code, 405);

    // A job that fails to parse surfaces its error through status and
    // result, and does not poison the daemon.
    let bad = Json::obj(vec![
        ("source", "fn main( {".into()),
        ("name", "bad.mmpi".into()),
        ("scales", vec![2usize].into()),
    ])
    .render();
    let response = client::request_json(&addr, "POST", "/jobs", &bad).unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let status = client::wait_for_job(&addr, &key, Duration::from_secs(60)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("failed"));
    assert!(status.get("error").is_some());
    let (code, _) = client::request(&addr, "GET", &format!("/jobs/{key}/result"), "").unwrap();
    assert_eq!(code, 500);

    // Result of a queued-but-never-run job (workers busy is hard to
    // stage reliably; a fresh pending submission right before asking is
    // enough to hit the 409 path on a slow machine — accept both).
    let pending = Json::obj(vec![
        (
            "source",
            "fn main() { comp(cycles = 200_000); barrier(); }".into(),
        ),
        ("name", "pending.mmpi".into()),
        ("scales", vec![2usize, 4].into()),
    ])
    .render();
    let response = client::request_json(&addr, "POST", "/jobs", &pending).unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let (code, _) = client::request(&addr, "GET", &format!("/jobs/{key}/result"), "").unwrap();
    assert!(code == 409 || code == 200, "got {code}");

    client::request_json(&addr, "POST", "/shutdown", "").unwrap();
    server_thread.join().unwrap().unwrap();
}
