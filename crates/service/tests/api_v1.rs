//! The `/v1` protocol over real TCP sockets: versioned routing, legacy
//! alias shims, the job listing, server-side long-poll, and the diff
//! endpoint.
//!
//! Complements `daemon.rs` (which pins the pre-versioning behavior —
//! those paths must keep working unchanged as aliases).

use scalana_api::{paths, ApiError, ErrorCode, JobPage, JobState, SubmitAck};
use scalana_service::client::{self, Conn};
use scalana_service::http::MessageReader;
use scalana_service::json::Json;
use scalana_service::{Server, ServiceConfig};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(workers: usize) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 32,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Unique programs per test so cache interactions are test-local.
fn program_text(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 3 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 6, ins = WORK / 6); }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
}

fn submit_body(text: &str, scales: &[usize]) -> String {
    Json::obj(vec![
        ("source", text.into()),
        ("name", "v1.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ])
    .render()
}

fn stat(conn: &mut Conn, key: &str) -> i64 {
    let stats = conn.request_json("GET", paths::STATS, "").unwrap();
    stats.get(key).and_then(Json::as_i64).unwrap()
}

#[test]
fn v1_submit_wait_result_and_legacy_aliases_serve_identical_bytes() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let text = program_text(501_000);

    // Submit under /v1; the ack decodes as the typed DTO.
    let response = conn
        .request_json("POST", paths::JOBS, &submit_body(&text, &[2, 4]))
        .unwrap();
    let ack = SubmitAck::from_json(&response).expect("typed ack");
    assert!(!ack.cached());
    let key = ack.job().to_string();

    // Long-poll until done — a single request parks server-side.
    let status = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));

    // The same resources under /v1 and the legacy alias: byte-identical.
    let (code_v1, result_v1) = conn.request("GET", &paths::job_result(&key), "").unwrap();
    let (code_legacy, result_legacy) = conn
        .request("GET", &format!("/jobs/{key}/result"), "")
        .unwrap();
    assert_eq!((code_v1, code_legacy), (200, 200));
    assert_eq!(result_v1, result_legacy, "alias must serve identical bytes");

    // `uptime_ms` is a clock read, so the two sequential requests can
    // legitimately differ by a millisecond; everything before it (it is
    // the final field) must be byte-identical.
    let (_, stats_v1) = conn.request("GET", paths::STATS, "").unwrap();
    let (_, stats_legacy) = conn.request("GET", "/stats", "").unwrap();
    let before_uptime = |body: &str| {
        let cut = body.find(",\"uptime_ms\":").expect("stats carry uptime_ms");
        body[..cut].to_string()
    };
    assert_eq!(before_uptime(&stats_v1), before_uptime(&stats_legacy));

    // Profile images too.
    let (code, image_v1) = conn
        .request_raw("GET", &paths::job_profile(&key, 2), "")
        .unwrap();
    assert_eq!(code, 200);
    let (_, image_legacy) = conn
        .request_raw("GET", &format!("/jobs/{key}/profile/2"), "")
        .unwrap();
    assert_eq!(image_v1, image_legacy);

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn legacy_paths_carry_deprecation_headers_and_v1_does_not() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();

    // Pre-versioning endpoints: served, but marked deprecated.
    let legacy = conn.request_full("GET", "/stats", "").unwrap();
    assert_eq!(legacy.code, 200);
    assert_eq!(legacy.header("Deprecation"), Some("true"));
    assert_eq!(
        legacy.header("Link"),
        Some("</v1/stats>; rel=\"successor-version\"")
    );

    let versioned = conn.request_full("GET", paths::STATS, "").unwrap();
    assert_eq!(versioned.code, 200);
    assert!(versioned.header("Deprecation").is_none());

    // Endpoints born under /v1 redirect their unversioned spelling.
    for (method, target, location) in [
        ("GET", "/jobs?state=done", "/v1/jobs?state=done"),
        (
            "GET",
            "/jobs/abc/wait?timeout_ms=5",
            "/v1/jobs/abc/wait?timeout_ms=5",
        ),
        ("POST", "/diff", "/v1/diff"),
    ] {
        let response = conn.request_full(method, target, "{}").unwrap();
        assert_eq!(response.code, 308, "{method} {target}");
        assert_eq!(response.header("Location"), Some(location));
    }

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn wrong_methods_get_405_with_allow_header() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();
    for (method, target, allow) in [
        ("DELETE", "/v1/jobs/abc", "GET"),
        ("POST", "/v1/healthz", "GET"),
        ("GET", "/v1/shutdown", "POST"),
        ("PUT", "/v1/jobs", "GET, POST"),
        ("GET", "/v1/diff", "POST"),
        ("DELETE", "/jobs/abc", "GET"), // legacy paths get the same contract
    ] {
        let response = conn.request_full(method, target, "").unwrap();
        assert_eq!(response.code, 405, "{method} {target}");
        assert_eq!(response.header("Allow"), Some(allow), "{method} {target}");
        let error = ApiError::from_body(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(error.code, ErrorCode::MethodNotAllowed);
        assert!(!error.retryable);
    }
    // Unknown paths stay 404 regardless of method.
    let response = conn.request_full("DELETE", "/v1/nope", "").unwrap();
    assert_eq!(response.code, 404);

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn job_listing_paginates_and_filters_by_state() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();

    // Three completing jobs plus one that fails to parse.
    let mut keys: Vec<String> = Vec::new();
    for i in 0..3u64 {
        let response = conn
            .request_json(
                "POST",
                paths::JOBS,
                &submit_body(&program_text(601_000 + i), &[2]),
            )
            .unwrap();
        keys.push(response.get("job").unwrap().as_str().unwrap().to_string());
    }
    let bad = Json::obj(vec![
        ("source", "fn main( {".into()),
        ("name", "bad.mmpi".into()),
        ("scales", vec![2usize].into()),
    ])
    .render();
    let response = conn.request_json("POST", paths::JOBS, &bad).unwrap();
    let bad_key = response.get("job").unwrap().as_str().unwrap().to_string();
    for key in keys.iter().chain([&bad_key]) {
        let _ = conn.wait_for_job(key, Duration::from_secs(120)).unwrap();
    }

    // Full listing decodes as the typed page and contains all four.
    let doc = conn.request_json("GET", paths::JOBS, "").unwrap();
    let page = JobPage::from_json(&doc).expect("typed page");
    assert_eq!(page.jobs.len(), 4);
    assert!(page.next_after.is_none());
    let mut listed: Vec<&str> = page.jobs.iter().map(|j| j.job.as_str()).collect();
    assert!(listed.windows(2).all(|w| w[0] < w[1]), "ascending by key");
    listed.sort();

    // State filter.
    let doc = conn
        .request_json("GET", &paths::jobs_list(Some("failed"), None, None), "")
        .unwrap();
    let failed = JobPage::from_json(&doc).unwrap();
    assert_eq!(failed.jobs.len(), 1);
    assert_eq!(failed.jobs[0].job, bad_key);
    assert_eq!(failed.jobs[0].status, JobState::Failed);
    assert!(failed.jobs[0].error.is_some());

    // Cursor walk with limit 3: two pages, no overlap, full coverage.
    let doc = conn
        .request_json("GET", &paths::jobs_list(None, Some(3), None), "")
        .unwrap();
    let first = JobPage::from_json(&doc).unwrap();
    assert_eq!(first.jobs.len(), 3);
    let cursor = first.next_after.expect("more pages");
    let doc = conn
        .request_json("GET", &paths::jobs_list(None, Some(3), Some(&cursor)), "")
        .unwrap();
    let second = JobPage::from_json(&doc).unwrap();
    assert_eq!(second.jobs.len(), 1);
    assert!(second.next_after.is_none());
    let mut walked: Vec<String> = first
        .jobs
        .iter()
        .chain(&second.jobs)
        .map(|j| j.job.clone())
        .collect();
    walked.sort();
    assert_eq!(
        walked,
        listed.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    );

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn longpoll_wait_parks_until_completion() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();

    // Unknown job: structured 404.
    let (code, body) = conn
        .request("GET", &paths::job_wait("doesnotexist", 50), "")
        .unwrap();
    assert_eq!(code, 404);
    assert_eq!(
        ApiError::from_body(&body).unwrap().code,
        ErrorCode::UnknownJob
    );

    // A job with enough simulated ranks to still be running when the
    // wait starts (wall-clock scales with ranks × statements).
    let response = conn
        .request_json(
            "POST",
            paths::JOBS,
            &submit_body(&program_text(9_701_000), &[2, 4, 48]),
        )
        .unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();

    // A tiny budget elapses first: 200 with a non-terminal status.
    let doc = conn
        .request_json("GET", &paths::job_wait(&key, 1), "")
        .unwrap();
    let early = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // A generous budget parks until the worker completes the job —
    // observed as a single round trip whose answer is terminal.
    let started = Instant::now();
    let doc = conn
        .request_json("GET", &paths::job_wait(&key, 20_000), "")
        .unwrap();
    let waited = started.elapsed();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert!(
        waited < Duration::from_secs(20),
        "woke at completion, not at the budget ({waited:?}, first poll saw `{early}`)"
    );

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn diff_reuses_cached_profiles_and_is_deterministic() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let text = program_text(701_000);

    // Prime scales [2, 4] with a plain submission.
    let response = conn
        .request_json("POST", paths::JOBS, &submit_body(&text, &[2, 4]))
        .unwrap();
    let primed_key = response.get("job").unwrap().as_str().unwrap().to_string();
    conn.wait_for_job(&primed_key, Duration::from_secs(120))
        .unwrap();
    let (hits_before, misses_before) = (
        stat(&mut conn, "scale_hits"),
        stat(&mut conn, "scale_misses"),
    );
    assert_eq!(hits_before, 0);
    assert_eq!(misses_before, 2);

    // Diff the primed scale set against a superset: side `a` is a
    // whole-job cache hit (per-scale cache untouched), side `b`
    // overlaps on 2 and 4 (hits) and simulates only scale 6 (miss).
    let diff_body = Json::obj(vec![
        (
            "a",
            Json::obj(vec![
                ("source", text.as_str().into()),
                ("name", "v1.mmpi".into()),
                ("scales", vec![2usize, 4].into()),
            ]),
        ),
        (
            "b",
            Json::obj(vec![
                ("source", text.as_str().into()),
                ("name", "v1.mmpi".into()),
                ("scales", vec![2usize, 4, 6].into()),
            ]),
        ),
    ])
    .render();
    let (code, first) = conn.request("POST", paths::DIFF, &diff_body).unwrap();
    assert_eq!(code, 200, "{first}");
    assert_eq!(
        stat(&mut conn, "scale_hits") - hits_before,
        2,
        "overlap reused"
    );
    assert_eq!(
        stat(&mut conn, "scale_misses") - misses_before,
        1,
        "only scale 6 simulated"
    );

    let doc = scalana_service::json::parse(&first).unwrap();
    assert_eq!(
        doc.get("a").unwrap().get("job").unwrap().as_str(),
        Some(primed_key.as_str()),
        "side `a` coalesced onto the primed job"
    );
    let runs = doc.get("runs").unwrap().as_array().unwrap();
    assert_eq!(runs.len(), 3, "union of scales {{2,4,6}}");
    assert_eq!(runs[2].get("nprocs").unwrap().as_i64(), Some(6));
    assert_eq!(
        runs[2].get("total_time_a"),
        Some(&Json::Null),
        "a did not run scale 6"
    );
    assert!(runs[0].get("ratio").unwrap().as_f64().is_some());
    // Identical program on both sides: every root cause matches up.
    for cause in doc.get("root_causes").unwrap().as_array().unwrap() {
        assert_eq!(cause.get("status").unwrap().as_str(), Some("both"));
    }
    assert!(doc.get("summary").unwrap().get("faster").is_some());

    // Determinism: the identical diff again — now fully cached — is
    // byte-identical and touches no per-scale entries.
    let (_, second) = conn.request("POST", paths::DIFF, &diff_body).unwrap();
    assert_eq!(first, second, "diff output must be deterministic");
    assert_eq!(stat(&mut conn, "scale_hits") - hits_before, 2);
    assert_eq!(stat(&mut conn, "scale_misses") - misses_before, 1);

    // A failing side surfaces as a structured job_failed error naming it.
    let bad_diff = Json::obj(vec![
        (
            "a",
            Json::obj(vec![
                ("source", text.as_str().into()),
                ("scales", vec![2usize, 4].into()),
            ]),
        ),
        (
            "b",
            Json::obj(vec![
                ("source", "fn main( {".into()),
                ("scales", vec![2usize].into()),
            ]),
        ),
    ])
    .render();
    let (code, body) = conn.request("POST", paths::DIFF, &bad_diff).unwrap();
    assert_eq!(code, 500);
    let error = ApiError::from_body(&body).unwrap();
    assert_eq!(error.code, ErrorCode::JobFailed);
    assert!(
        error.message.contains("`b`"),
        "names the failing side: {error}"
    );

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

/// Request counters of the [`legacy_stub`] server.
#[derive(Default)]
struct StubCounters {
    wait_requests: AtomicU64,
    polls: AtomicU64,
}

/// A minimal pre-`/v1` daemon: 404s the wait endpoint with the legacy
/// error body (no `code` member) and serves plain status polls —
/// exactly what PR 4's server did. The modern client must fall back to
/// polling against it.
fn legacy_stub() -> (String, Arc<StubCounters>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let counters = Arc::new(StubCounters::default());
    let shared = Arc::clone(&counters);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let counters = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut reader = MessageReader::new(stream.try_clone().unwrap());
                while let Ok(Some(request)) = reader.next_request() {
                    let (code, body): (u16, String) = if request.path.contains("/wait") {
                        counters.wait_requests.fetch_add(1, Ordering::SeqCst);
                        (404, r#"{"error":"no such endpoint"}"#.to_string())
                    } else if request.path.starts_with("/jobs/") {
                        // Two pending polls, then done.
                        let polls = counters.polls.fetch_add(1, Ordering::SeqCst);
                        let status = if polls < 2 { "running" } else { "done" };
                        (
                            200,
                            format!(
                                r#"{{"job":"stub","program":"stub.mmpi","scales":[2],"status":"{status}"}}"#
                            ),
                        )
                    } else {
                        (404, r#"{"error":"no such endpoint"}"#.to_string())
                    };
                    let _ = scalana_service::http::write_response_conn(
                        &stream,
                        code,
                        "application/json",
                        body.as_bytes(),
                        request.keep_alive,
                    );
                    if !request.keep_alive {
                        break;
                    }
                }
            });
        }
    });
    (addr, counters)
}

#[test]
fn wait_falls_back_to_polling_against_pre_v1_servers() {
    // Forward-compat: a server answering 404 (legacy body, no error
    // code) on the wait path gets the plain polling loop instead.
    let (addr, counters) = legacy_stub();
    let mut conn = Conn::connect(&addr).unwrap();
    let doc = conn.wait_for_job("stub", Duration::from_secs(10)).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        counters.wait_requests.load(Ordering::SeqCst),
        1,
        "exactly one probe of the wait endpoint"
    );
    assert!(
        counters.polls.load(Ordering::SeqCst) >= 3,
        "fell back to status polling"
    );
}

#[test]
fn unsupported_versions_are_rejected_up_front() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();
    for target in ["/v2/jobs", "/v0/stats", "/v99/healthz"] {
        let (code, body) = conn.request("GET", target, "").unwrap();
        assert_eq!(code, 400, "{target}");
        let error = ApiError::from_body(&body).unwrap();
        assert_eq!(error.code, ErrorCode::UnsupportedVersion, "{target}");
        assert!(error.message.contains("v1"), "points at the served version");
    }
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

/// Raw socket helper for requests the client cannot express (oversized
/// declared bodies).
#[test]
fn over_budget_bodies_answer_a_structured_error() {
    let addr = boot(1);
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = "POST /v1/jobs HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n";
    (&stream).write_all(head.as_bytes()).unwrap();
    let mut reader = MessageReader::new(stream.try_clone().unwrap());
    let (code, body, keep) = reader.next_response().unwrap();
    assert_eq!(code, 400);
    assert!(!keep, "framing errors close the connection");
    let error = ApiError::from_body(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(error.code, ErrorCode::BodyTooLarge);

    // An oversized *head* is malformed_request, not body_too_large — a
    // client must not be told to shrink a body that was never at fault.
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let huge = format!(
        "GET /v1/healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(20 << 10)
    );
    (&stream).write_all(huge.as_bytes()).unwrap();
    let mut reader = MessageReader::new(stream.try_clone().unwrap());
    let (code, body, _) = reader.next_response().unwrap();
    assert_eq!(code, 400);
    let error = ApiError::from_body(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(error.code, ErrorCode::MalformedRequest);

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}
