//! Golden-output test for `scalana analyze` on the quickstart demo.
//!
//! The quickstart program (examples/quickstart.rs and README) plants an
//! Amdahl bug: a serial loop on rank 0 that does not shrink with the
//! process count. This test pins the report surface the viewer promises —
//! if a refactor drops a section, renames a heading, or stops finding the
//! planted root cause, it fails here rather than in a user's terminal.

use std::io::Write;
use std::process::Command;
use std::sync::OnceLock;

/// The same source examples/quickstart.rs embeds, as a standalone `.mmpi`
/// file. The serial loop sits on line 9 of this file.
const QUICKSTART: &str = "\
// A deliberately non-scalable program.
param WORK = 6_000_000;

fn main() {
    for it in 0 .. 10 {
        comp(cycles = WORK / nprocs, ins = WORK / nprocs,
             lst = WORK / (nprocs * 4), miss = WORK / (nprocs * 400));
        if rank == 0 {
            for s in 0 .. 4 {
                comp(cycles = WORK / 8, ins = WORK / 8, lst = WORK / 32);
            }
        }
        barrier();
    }
    allreduce(bytes = 8);
}
";

/// One shared `scalana analyze` run: the three tests below inspect the
/// same report, and a per-test temp file would race (tests run on
/// parallel threads; one thread's `File::create` truncates the source
/// while another's subprocess reads it).
fn run_analyze() -> &'static str {
    static REPORT: OnceLock<String> = OnceLock::new();
    REPORT.get_or_init(|| {
        let path = std::env::temp_dir().join("golden_quickstart.mmpi");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(QUICKSTART.as_bytes()).unwrap();
        drop(f);
        let out = Command::new(env!("CARGO_BIN_EXE_scalana"))
            .args([
                "analyze",
                path.to_str().unwrap(),
                "--scales",
                "4,8,16,32",
                "--top",
                "3",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "analyze failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("report is UTF-8")
    })
}

#[test]
fn report_contains_every_promised_section() {
    let stdout = run_analyze();
    // One run line per requested scale, plus the static stats up front.
    assert!(stdout.contains("PSG: #VBC="), "{stdout}");
    for scale in [
        "@    4 ranks",
        "@    8 ranks",
        "@   16 ranks",
        "@   32 ranks",
    ] {
        assert!(
            stdout.contains(scale),
            "missing run line for {scale}:\n{stdout}"
        );
    }
    // Viewer sections, in report order.
    let sections = [
        "-- Speedup (baseline 4 ranks) --",
        "-- Non-scalable vertices (",
        "-- Abnormal vertices (",
        "-- Root causes (",
        "-- Causal paths (",
        "-- Code snippets --",
    ];
    let mut last = 0;
    for section in sections {
        let at = stdout[last..]
            .find(section)
            .unwrap_or_else(|| panic!("section `{section}` missing or out of order:\n{stdout}"));
        last += at;
    }
}

#[test]
fn report_backtracks_to_the_planted_serial_loop() {
    let stdout = run_analyze();
    // The non-scalable symptom is the barrier (line 13), attributed 90%+.
    assert!(
        stdout.contains("golden_quickstart.mmpi:13 slope"),
        "barrier not flagged non-scalable:\n{stdout}"
    );
    // Backtracking lands on the serial loop on line 9, tagged as the root
    // cause with its rank-0 imbalance.
    assert!(
        stdout.contains("Loop     ") && stdout.contains("golden_quickstart.mmpi:9 in main"),
        "serial loop not reported as root cause:\n{stdout}"
    );
    assert!(stdout.contains("<== root cause"), "{stdout}");
    assert!(stdout.contains("time imb 32.00x"), "{stdout}");
}

#[test]
fn speedup_table_shows_the_amdahl_ceiling() {
    let stdout = run_analyze();
    // Baseline row is exactly x1.00 at 100% efficiency.
    assert!(
        stdout.contains("4 ranks  x1.00") && stdout.contains("efficiency 100.0%"),
        "{stdout}"
    );
    // The serial section caps the curve: by 32 ranks the measured speedup
    // must fall far short of the ideal x8 over the 4-rank baseline.
    let row = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("32 ranks"))
        .unwrap_or_else(|| panic!("no 32-rank speedup row:\n{stdout}"));
    let speedup: f64 = row
        .split('x')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable speedup row `{row}`"));
    assert!(
        speedup < 4.0,
        "Amdahl bug should cap speedup well below ideal x8, got x{speedup}: {row}"
    );
}
