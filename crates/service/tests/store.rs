//! Durability integration tests: warm restarts over HTTP, boot-time
//! quarantine of damaged store files, the `/v1/store` endpoints, the
//! degradation ladder under injected IO faults, and the atomic-write
//! protocol property (a store directory only ever contains fully-valid
//! or quarantinable files — never a half-written entry a reader trusts).

use proptest::prelude::*;
use scalana_api::{paths, ApiError, ErrorCode};
use scalana_service::client::Conn;
use scalana_service::json::Json;
use scalana_service::store::{self, EntryKind, FaultIo, FaultPlan, RealIo};
use scalana_service::{DiskStore, Server, ServiceConfig, StoreIo};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scalana-store-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boot a daemon; returns the address and a channel that fires when
/// `Server::run` has fully returned (writes flushed).
fn boot(config: ServiceConfig) -> (String, mpsc::Receiver<()>) {
    let server = Server::bind(&config).unwrap();
    let addr = server.local_addr().to_string();
    let (exited_tx, exited) = mpsc::channel();
    std::thread::spawn(move || {
        let served = server.run();
        let _ = exited_tx.send(());
        served
    });
    (addr, exited)
}

fn store_config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServiceConfig::default()
    }
}

/// Submit + wait to `done`; returns the job key.
fn run_job(conn: &mut Conn, body: &str) -> String {
    let ack = conn.request_json("POST", paths::JOBS, body).unwrap();
    let key = ack.get("job").and_then(Json::as_str).unwrap().to_string();
    let last = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(last.get("status").and_then(Json::as_str), Some("done"));
    key
}

fn stat(conn: &mut Conn, key: &str) -> i64 {
    let doc = conn.request_json("GET", paths::STATS, "").unwrap();
    doc.get(key).and_then(Json::as_i64).unwrap()
}

fn shutdown_and_join(conn: &mut Conn, exited: &mpsc::Receiver<()>) {
    let (code, _) = conn.request("POST", paths::SHUTDOWN, "").unwrap();
    assert_eq!(code, 200);
    exited
        .recv_timeout(Duration::from_secs(30))
        .expect("daemon exits after shutdown");
}

/// The tentpole end-to-end: a restarted daemon answers every
/// previously-profiled scale from disk — zero re-simulation, responses
/// byte-identical to the pre-restart ones.
#[test]
fn warm_restart_serves_previous_scales_byte_identically() {
    let dir = temp_dir("warm");
    let body = r#"{"app":"CG","scales":[2,4]}"#;

    // Cold daemon: run the job, capture report + per-scale image bytes.
    // The deterministic slice of a result document: everything but the
    // wall-clock `detect_seconds` measurement.
    let canonical = |raw: Vec<u8>| -> (String, String) {
        let doc = scalana_service::json::parse(&String::from_utf8(raw).unwrap()).unwrap();
        (
            doc.get("report").unwrap().render(),
            doc.get("runs").unwrap().render(),
        )
    };

    let (addr, exited) = boot(store_config(&dir));
    let mut conn = Conn::connect(&addr).unwrap();
    let key = run_job(&mut conn, body);
    let cold_result = canonical(
        conn.request_raw("GET", &paths::job_result(&key), "")
            .unwrap()
            .1,
    );
    let cold_images: Vec<Vec<u8>> = [2usize, 4]
        .iter()
        .map(|&n| {
            conn.request_raw("GET", &paths::job_profile(&key, n), "")
                .unwrap()
                .1
        })
        .collect();
    shutdown_and_join(&mut conn, &exited);

    // Warm daemon on the same directory: the per-scale cache is primed
    // before the listener answers, so the same submission simulates
    // nothing at all.
    let (addr, exited) = boot(store_config(&dir));
    let mut conn = Conn::connect(&addr).unwrap();
    assert_eq!(stat(&mut conn, "profiles_cached"), 2, "warm scan primes");
    assert!(stat(&mut conn, "store_loaded") >= 3, "2 profiles + 1 trace");
    let key2 = run_job(&mut conn, body);
    assert_eq!(key2, key, "content-addressed key is restart-stable");
    assert_eq!(stat(&mut conn, "scale_misses"), 0, "zero re-simulation");
    assert_eq!(stat(&mut conn, "scale_hits"), 2);
    let metrics = conn.request("GET", paths::METRICS, "").unwrap().1;
    assert!(
        metrics.contains("scalana_sim_runs_total 0"),
        "the simulator never ran on the warm daemon"
    );

    let warm_result = canonical(
        conn.request_raw("GET", &paths::job_result(&key2), "")
            .unwrap()
            .1,
    );
    assert_eq!(warm_result, cold_result, "report bytes survive restart");
    for (i, &n) in [2usize, 4].iter().enumerate() {
        let warm = conn
            .request_raw("GET", &paths::job_profile(&key2, n), "")
            .unwrap()
            .1;
        assert_eq!(warm, cold_images[i], "profile image @ {n} ranks");
    }
    shutdown_and_join(&mut conn, &exited);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Boot-time corruption matrix over HTTP: valid entries load, everything
/// damaged or alien is quarantined (counted, never panicked on), and the
/// daemon serves normally afterwards.
#[test]
fn damaged_store_files_are_quarantined_at_boot() {
    let dir = temp_dir("quarantine");
    std::fs::create_dir_all(&dir).unwrap();

    // One valid entry, written with the real frame codec.
    let frame = store::encode_frame(EntryKind::Profile, "aaaaaaaaaaaaaaaa", b"payload bytes");
    std::fs::write(
        dir.join(store::entry_file_name(
            EntryKind::Profile,
            "aaaaaaaaaaaaaaaa",
        )),
        &frame[..],
    )
    .unwrap();
    // Truncated (torn tail), flipped byte (bad checksum), alien file,
    // and an orphaned temp file from a simulated crash mid-write.
    std::fs::write(
        dir.join(store::entry_file_name(
            EntryKind::Profile,
            "bbbbbbbbbbbbbbbb",
        )),
        &frame[..frame.len() - 7],
    )
    .unwrap();
    let mut flipped = frame[..].to_vec();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(
        dir.join(store::entry_file_name(
            EntryKind::Profile,
            "cccccccccccccccc",
        )),
        &flipped,
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), b"not a store file").unwrap();
    std::fs::write(dir.join("profile-dddddddddddddddd.img.tmp"), b"torn").unwrap();

    let (addr, exited) = boot(store_config(&dir));
    let mut conn = Conn::connect(&addr).unwrap();
    assert_eq!(stat(&mut conn, "store_quarantined"), 4);
    assert_eq!(stat(&mut conn, "store_entries"), 1, "the valid one");
    assert_eq!(stat(&mut conn, "store_loaded"), 1);
    let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
    assert_eq!(quarantined, 4, "damaged files moved, not deleted");

    // The daemon is healthy: it runs jobs and reports via /v1/store.
    run_job(&mut conn, r#"{"app":"CG","scales":[2]}"#);
    let view = conn.request_json("GET", paths::STORE, "").unwrap();
    assert_eq!(view.get("degraded"), Some(&Json::Bool(false)));
    shutdown_and_join(&mut conn, &exited);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /v1/store` and `POST /v1/store/gc` round-trip against a healthy
/// store; both answer 404 `not_found` on a memory-only daemon (pinned in
/// the errors matrix too).
#[test]
fn store_endpoints_report_directory_state() {
    let dir = temp_dir("endpoints");
    let (addr, exited) = boot(store_config(&dir));
    let mut conn = Conn::connect(&addr).unwrap();
    run_job(&mut conn, r#"{"app":"CG","scales":[2,4]}"#);

    // Writes are behind a queue; poll until all three entries land.
    let deadline = Instant::now() + Duration::from_secs(30);
    while stat(&mut conn, "store_entries") < 3 {
        assert!(Instant::now() < deadline, "store writes never flushed");
        std::thread::sleep(Duration::from_millis(20));
    }

    let view = conn.request_json("GET", paths::STORE, "").unwrap();
    assert_eq!(view.get("entries").and_then(Json::as_i64), Some(3));
    assert_eq!(view.get("quota").and_then(Json::as_i64), Some(0));
    assert_eq!(view.get("degraded"), Some(&Json::Bool(false)));
    let files = view.get("files").and_then(Json::as_array).unwrap();
    assert_eq!(files.len(), 3);
    let names: Vec<&str> = files
        .iter()
        .filter_map(|f| f.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(
        names.iter().filter(|n| n.starts_with("profile-")).count(),
        2
    );
    assert_eq!(names.iter().filter(|n| n.starts_with("psg-")).count(), 1);
    let total_bytes = view.get("bytes").and_then(Json::as_i64).unwrap();
    assert!(total_bytes > 0);

    // Quota 0 = unbounded: a manual sweep has nothing to evict.
    let swept = conn.request_json("POST", paths::STORE_GC, "").unwrap();
    assert_eq!(swept.get("evicted").and_then(Json::as_i64), Some(0));
    assert_eq!(swept.get("entries").and_then(Json::as_i64), Some(3));
    shutdown_and_join(&mut conn, &exited);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degradation ladder: persistent injected write failures trip the
/// breaker into memory-only mode — the daemon stays fully available,
/// reports `store_degraded`, and `/v1/store/gc` sheds with a retryable
/// 503.
#[test]
fn persistent_write_faults_degrade_to_memory_only_without_losing_service() {
    let dir = temp_dir("degraded");
    // Every mutating IO op faults: nothing can ever be persisted.
    let fault_io: Arc<dyn StoreIo> = Arc::new(FaultIo::new(FaultPlan::seeded(9, 1000)));
    let config = ServiceConfig {
        store_io: Some(fault_io),
        ..store_config(&dir)
    };
    let (addr, exited) = boot(config);
    let mut conn = Conn::connect(&addr).unwrap();

    // Jobs still complete: the caches absorb what the disk rejects.
    run_job(&mut conn, r#"{"app":"CG","scales":[2,4]}"#);
    let deadline = Instant::now() + Duration::from_secs(30);
    while stat(&mut conn, "store_degraded") != 1 {
        assert!(Instant::now() < deadline, "breaker never tripped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stat(&mut conn, "store_write_errors") >= 3, "trip threshold");
    assert_eq!(stat(&mut conn, "store_entries"), 0, "nothing persisted");

    // Degraded-mode daemon keeps answering new work from memory.
    run_job(&mut conn, r#"{"app":"CG","scales":[2,4,8]}"#);

    let response = conn.request_full("POST", paths::STORE_GC, "").unwrap();
    assert_eq!(response.code, 503);
    assert!(
        response.header("Retry-After").is_some(),
        "degraded shed carries backoff advice"
    );
    let error = ApiError::from_body(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(error.code, ErrorCode::StoreDegraded);
    assert!(error.retryable);

    let metrics = conn.request("GET", paths::METRICS, "").unwrap().1;
    assert!(metrics.contains("scalana_store_degraded 1"));
    shutdown_and_join(&mut conn, &exited);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every surviving store file decodes as a complete valid frame with
/// the right key, or is quarantinable at reopen — across seeded fault
/// schedules covering fail-before-rename, fsync failure, and torn cuts.
fn check_valid_or_quarantinable(seed: u64, rate: u32, entries: usize) -> Result<(), TestCaseError> {
    let dir = std::env::temp_dir().join(format!(
        "scalana-store-prop-{seed}-{rate}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let io: Arc<dyn StoreIo> = Arc::new(FaultIo::new(FaultPlan::seeded(seed, rate)));
    let (store, warm) = DiskStore::open(io, &dir, 0);
    prop_assert!(warm.is_empty());
    let payloads: Vec<(String, Vec<u8>)> = (0..entries)
        .map(|i| {
            let key = format!("{:016x}", 0xabcd_0000 + i as u64);
            let payload = vec![i as u8 ^ 0x5a; 64 + i * 17];
            (key, payload)
        })
        .collect();
    for (key, payload) in &payloads {
        // No writer thread running: save persists synchronously, with
        // whatever faults the plan schedules at each IO op.
        store.save(EntryKind::Profile, key, payload.clone().into());
    }
    drop(store);

    // Invariant 1: every data file in the directory (quarantine and
    // temp files aside) is a complete valid frame for its own name.
    if let Ok(dir_entries) = std::fs::read_dir(&dir) {
        for entry in dir_entries.flatten() {
            if !entry.file_type().is_ok_and(|t| t.is_file()) {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                continue; // orphan from a faulted write: quarantinable
            }
            let raw = std::fs::read(entry.path()).unwrap();
            let (kind, key, payload) = store::decode_frame(&raw)
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
            prop_assert_eq!(kind, EntryKind::Profile);
            prop_assert_eq!(store::entry_file_name(kind, &key), name);
            let expected = &payloads.iter().find(|(k, _)| *k == key).unwrap().1;
            prop_assert_eq!(&payload[..], &expected[..]);
        }
    }

    // Invariant 2: a clean reopen accepts every survivor and returns
    // its exact payload; anything else was quarantined, not trusted.
    let (reopened, warm) = DiskStore::open(Arc::new(RealIo), &dir, 0);
    for (key, image) in &warm {
        let expected = &payloads.iter().find(|(k, _)| k == key).unwrap().1;
        prop_assert_eq!(&image[..], &expected[..]);
        prop_assert_eq!(&reopened.read_profile(key).unwrap()[..], &expected[..]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_directory_only_ever_contains_valid_or_quarantinable_files(
        seed in 0u64..10_000,
        rate in 50u32..1000,
        entries in 1usize..6,
    ) {
        check_valid_or_quarantinable(seed, rate, entries)?;
    }
}
