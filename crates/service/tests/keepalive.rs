//! Keep-alive behavior of the daemon over real TCP sockets.
//!
//! - one client socket carries a whole submit → poll → result
//!   interaction (no reconnect per request);
//! - pipelined requests are answered in order, each with a renewed
//!   head/body byte budget;
//! - `Connection: close` and protocol garbage actually close the socket.

use scalana_service::client::{self, Conn};
use scalana_service::http::MessageReader;
use scalana_service::json::Json;
use scalana_service::{Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn boot() -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

const PROGRAM: &str = "fn main() { for i in 0 .. 3 { comp(cycles = 80_000 / nprocs); barrier(); } \
     allreduce(bytes = 8); }";

fn submit_body() -> String {
    Json::obj(vec![
        ("source", PROGRAM.into()),
        ("name", "ka.mmpi".into()),
        ("scales", vec![2usize, 4].into()),
    ])
    .render()
}

#[test]
fn one_connection_carries_submit_poll_and_result() {
    let addr = boot();
    let mut conn = Conn::connect(&addr).unwrap();

    // submit → status polls → result → stats, all on one socket.
    let response = conn.request_json("POST", "/jobs", &submit_body()).unwrap();
    let key = response.get("job").unwrap().as_str().unwrap().to_string();
    let status = conn.wait_for_job(&key, Duration::from_secs(60)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
    let result = conn
        .request_json("GET", &format!("/jobs/{key}/result"), "")
        .unwrap();
    assert!(result.get("report").is_some());
    let stats = conn.request_json("GET", "/stats", "").unwrap();
    assert_eq!(stats.get("executed").and_then(Json::as_i64), Some(1));
    assert!(
        conn.is_alive(),
        "server must keep the connection open throughout"
    );

    let _ = client::request(&addr, "POST", "/shutdown", "");
}

#[test]
fn pipelined_requests_answer_in_order() {
    let addr = boot();
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Three requests on the wire before reading a single response.
    let mut wire = Vec::new();
    scalana_service::http::write_request_conn(&mut wire, "GET", "/healthz", b"", true).unwrap();
    scalana_service::http::write_request_conn(&mut wire, "POST", "/jobs", b"not json", true)
        .unwrap();
    scalana_service::http::write_request_conn(&mut wire, "GET", "/stats", b"", true).unwrap();
    (&stream).write_all(&wire).unwrap();

    let mut reader = MessageReader::new(stream.try_clone().unwrap());
    let (code, body, keep) = reader.next_response().unwrap();
    assert_eq!(code, 200);
    assert!(String::from_utf8(body).unwrap().contains("\"ok\""));
    assert!(keep);
    // The bad submission gets its 400 *in order* and the connection
    // survives it — a malformed body is not a framing error.
    let (code, _, keep) = reader.next_response().unwrap();
    assert_eq!(code, 400);
    assert!(keep);
    let (code, body, _) = reader.next_response().unwrap();
    assert_eq!(code, 200);
    assert!(String::from_utf8(body).unwrap().contains("queue_depth"));

    let _ = client::request(&addr, "POST", "/shutdown", "");
}

#[test]
fn per_request_budgets_renew_but_still_bound_each_request() {
    let addr = boot();
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = MessageReader::new(stream.try_clone().unwrap());

    // Two requests whose heads approach the 16 KiB budget: a
    // per-connection budget would starve the second one.
    let pad = "a".repeat(12 << 10);
    for _ in 0..2 {
        let head =
            format!("GET /healthz HTTP/1.1\r\nX-Pad: {pad}\r\nConnection: keep-alive\r\n\r\n");
        (&stream).write_all(head.as_bytes()).unwrap();
        let (code, _, keep) = reader.next_response().unwrap();
        assert_eq!(code, 200, "near-limit head must be admitted");
        assert!(keep);
    }

    // A request declaring a body over the 1 MiB budget is rejected from
    // its headers alone (the body is never sent, so nothing is left
    // unread) and the connection closes — the stream would be
    // desynchronized past this point.
    let oversized = "POST /jobs HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n";
    (&stream).write_all(oversized.as_bytes()).unwrap();
    let (code, _, keep) = reader.next_response().unwrap();
    assert_eq!(code, 400);
    assert!(!keep, "server must announce the close");
    // The socket really is closed: the next read sees EOF.
    let mut rest = Vec::new();
    let mut raw = stream.try_clone().unwrap();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no further responses after the close");

    let _ = client::request(&addr, "POST", "/shutdown", "");
}

#[test]
fn connection_close_is_honored() {
    let addr = boot();
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    scalana_service::http::write_request(&stream, "GET", "/healthz", b"").unwrap();
    let mut reader = MessageReader::new(stream.try_clone().unwrap());
    let (code, _, keep) = reader.next_response().unwrap();
    assert_eq!(code, 200);
    assert!(!keep, "server echoes Connection: close");
    let mut rest = Vec::new();
    let mut raw = stream.try_clone().unwrap();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "socket closed after the one exchange");

    let _ = client::request(&addr, "POST", "/shutdown", "");
}
