//! End-to-end federation: several in-process daemons on one rendezvous
//! ring, exercised over real sockets. These pin the fleet-level
//! contracts the unit tests cannot see — gossip convergence, remote
//! read-through with exact hit/miss accounting, write-through to the
//! owner, and the dead-peer degradation ladder.

use scalana_api::paths;
use scalana_service::client::Conn;
use scalana_service::json::Json;
use scalana_service::{client, Server, ServiceConfig};
use std::time::{Duration, Instant};

/// Boot one daemon with `peers` as federation seeds; returns its bound
/// address (also its advertised ring identity).
fn boot(peers: Vec<String>) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        peers,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Poll `GET /v1/peer/ring` on every daemon until they all agree on a
/// `members`-member ring (announce gossip is asynchronous).
fn await_convergence(addrs: &[&str], members: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    'outer: loop {
        for addr in addrs {
            let (code, body) = client::request(addr, "GET", paths::PEER_RING, "").unwrap();
            assert_eq!(code, 200, "ring endpoint on {addr}: {body}");
            let doc = scalana_service::json::parse(&body).unwrap();
            let seen = doc
                .get("members")
                .and_then(Json::as_array)
                .map_or(0, |m| m.len());
            if seen != members {
                assert!(
                    Instant::now() < deadline,
                    "{addr} still sees {seen}/{members} members"
                );
                std::thread::sleep(Duration::from_millis(20));
                continue 'outer;
            }
        }
        return;
    }
}

/// Poll a daemon's `/v1/stats` until its peer write-behind backlog is
/// fully settled, so cross-daemon assertions are deterministic.
fn await_backlog_drained(conn: &mut Conn) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while stat(conn, "peer_backlog") != 0 {
        assert!(Instant::now() < deadline, "peer backlog never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stat(conn: &mut Conn, key: &str) -> u64 {
    conn.request_json("GET", paths::STATS, "")
        .unwrap()
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or(0) as u64
}

/// One counter sample from `/v1/metrics` (`name` includes the trailing
/// space so prefixes cannot alias).
fn metric(conn: &mut Conn, name: &str) -> u64 {
    let (code, text) = conn.request("GET", paths::METRICS, "").unwrap();
    assert_eq!(code, 200);
    text.lines()
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing"))
}

/// Submit `source` over `scales` and wait it out; returns the job key.
fn submit(conn: &mut Conn, source: &str, scales: &[usize]) -> String {
    let body = Json::obj(vec![
        ("source", source.into()),
        ("name", "federation.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ])
    .render();
    let ack = conn.request_json("POST", paths::JOBS, &body).unwrap();
    let key = ack.get("job").unwrap().as_str().unwrap().to_string();
    let done = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("done"),
        "job must complete: {}",
        done.render()
    );
    key
}

/// The analysis payload of `GET /v1/jobs/<key>/result` — the `report`
/// and `runs` fragments, excluding measurement metadata
/// (`detect_seconds` is wall-clock and legitimately varies).
fn analysis(conn: &mut Conn, key: &str) -> (String, String) {
    let doc = conn
        .request_json("GET", &format!("{}/{key}/result", paths::JOBS), "")
        .unwrap();
    (
        doc.get("report").unwrap().render(),
        doc.get("runs").unwrap().render(),
    )
}

const PROGRAM: &str = "fn main() {\n\
                       \x20   for it in 0 .. 20 {\n\
                       \x20       comp(cycles = 4000 / nprocs, ins = 4000 / nprocs);\n\
                       \x20       if rank == 0 { comp(cycles = 500, ins = 500); }\n\
                       \x20       barrier();\n\
                       \x20       allreduce(bytes = 8);\n\
                       \x20   }\n\
                       }";

/// The tentpole contract end to end: three daemons converge on one
/// ring via announce gossip; a program analysed on daemon A is then
/// served by daemon B with *zero* per-scale misses and *zero* simulator
/// runs — every scale answered locally (write-through landed B's owned
/// keys) or by the key's owner — and the analysis is byte-identical.
#[test]
fn fleet_serves_cross_daemon_resubmission_without_simulating() {
    let a = boot(Vec::new());
    let b = boot(vec![a.clone()]);
    let c = boot(vec![a.clone(), b.clone()]);
    await_convergence(&[&a, &b, &c], 3);

    let mut conn_a = Conn::connect(&a).unwrap();
    let mut conn_b = Conn::connect(&b).unwrap();

    // Cold analysis on A; its write-behind must fully settle so every
    // owner holds its shard before B is asked.
    let key_a = submit(&mut conn_a, PROGRAM, &[2, 4]);
    await_backlog_drained(&mut conn_a);

    let misses_before = stat(&mut conn_b, "scale_misses");
    let sims_before = metric(&mut conn_b, "scalana_sim_runs_total ");
    let key_b = submit(&mut conn_b, PROGRAM, &[2, 4]);
    assert_eq!(key_a, key_b, "content-addressed job keys must agree");

    assert_eq!(
        stat(&mut conn_b, "scale_misses") - misses_before,
        0,
        "every scale must be answered from the fleet, not simulated"
    );
    assert_eq!(
        metric(&mut conn_b, "scalana_sim_runs_total ") - sims_before,
        0,
        "B must not touch the simulator"
    );
    assert_eq!(
        analysis(&mut conn_a, &key_a),
        analysis(&mut conn_b, &key_b),
        "cross-daemon analysis must be byte-identical"
    );

    for addr in [&a, &b, &c] {
        let _ = client::request(addr, "POST", paths::SHUTDOWN, "");
    }
}

/// Degradation, not denial: with the only peer dead, every probe fails
/// (then the breaker opens) and the daemon falls back to local
/// simulation — requests keep succeeding.
#[test]
fn dead_peer_degrades_to_local_simulation() {
    let a = boot(Vec::new());
    let b = boot(vec![a.clone()]);
    await_convergence(&[&a, &b], 2);

    // Kill A; B still believes in the two-member ring.
    let (code, _) = client::request(&a, "POST", paths::SHUTDOWN, "").unwrap();
    assert_eq!(code, 200);

    let mut conn_b = Conn::connect(&b).unwrap();
    // Several distinct programs: enough owner probes to trip A's
    // breaker, and every one of them must still complete.
    for i in 0..4 {
        let source = format!("param SALT = {i};\n{PROGRAM}");
        submit(&mut conn_b, &source, &[2, 4]);
    }
    let _ = client::request(&b, "POST", paths::SHUTDOWN, "");
}
