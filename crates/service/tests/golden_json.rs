//! Golden test for `scalana analyze --json` — the machine-readable twin
//! of `golden_analyze.rs`.
//!
//! Pins two things: the document *shape* (every promised section with
//! its fields) and the *bytes* of the deterministic parts — the `report`
//! and `runs` sub-documents must equal a direct in-process pipeline run
//! serialized through the same code path. A CLI/service divergence or a
//! canonicalization change fails here rather than in a downstream
//! consumer's diff.

use scalana_core::{pipeline, ScalAnaConfig};
use scalana_lang::parse_program;
use scalana_service::json::{parse, Json};
use scalana_service::jsonify::{report_to_json, run_summary_to_json};
use std::io::Write;
use std::process::Command;
use std::sync::OnceLock;

/// The quickstart program with its planted Amdahl bug (serial loop on
/// line 9).
const QUICKSTART: &str = "\
// A deliberately non-scalable program.
param WORK = 6_000_000;

fn main() {
    for it in 0 .. 10 {
        comp(cycles = WORK / nprocs, ins = WORK / nprocs,
             lst = WORK / (nprocs * 4), miss = WORK / (nprocs * 400));
        if rank == 0 {
            for s in 0 .. 4 {
                comp(cycles = WORK / 8, ins = WORK / 8, lst = WORK / 32);
            }
        }
        barrier();
    }
    allreduce(bytes = 8);
}
";

const SCALES: [usize; 4] = [4, 8, 16, 32];

fn tmp_path() -> std::path::PathBuf {
    std::env::temp_dir().join("golden_json_quickstart.mmpi")
}

/// One shared CLI run (see golden_analyze.rs for why per-test temp
/// files would race).
fn run_analyze_json() -> &'static str {
    static OUTPUT: OnceLock<String> = OnceLock::new();
    OUTPUT.get_or_init(|| {
        let path = tmp_path();
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(QUICKSTART.as_bytes()).unwrap();
        drop(f);
        let out = Command::new(env!("CARGO_BIN_EXE_scalana"))
            .args([
                "analyze",
                path.to_str().unwrap(),
                "--scales",
                "4,8,16,32",
                "--top",
                "3",
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "analyze --json failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("output is UTF-8")
    })
}

#[test]
fn json_document_has_every_promised_section() {
    let doc = parse(run_analyze_json().trim()).unwrap();
    for key in ["psg", "runs", "speedup", "report", "detect_seconds"] {
        assert!(doc.get(key).is_some(), "missing `{key}`");
    }
    let psg = doc.get("psg").unwrap();
    assert!(psg.get("vbc").unwrap().as_i64().unwrap() > 0);
    assert!(psg.get("vac").unwrap().as_i64().unwrap() > 0);

    let runs = doc.get("runs").unwrap().as_array().unwrap();
    assert_eq!(runs.len(), SCALES.len());
    for (run, &nprocs) in runs.iter().zip(&SCALES) {
        assert_eq!(run.get("nprocs").unwrap().as_i64(), Some(nprocs as i64));
        assert!(run.get("total_time").unwrap().as_f64().unwrap() > 0.0);
        assert!(run.get("storage_bytes").unwrap().as_i64().unwrap() > 0);
    }

    let speedup = doc.get("speedup").unwrap();
    let points = speedup.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), SCALES.len());
    assert_eq!(points[0].get("speedup").unwrap().as_f64(), Some(1.0));
    assert!(
        speedup.get("serial_fraction").unwrap().as_f64().unwrap() > 0.05,
        "the planted serial section must show up in the Amdahl fit"
    );
}

#[test]
fn json_report_backtracks_to_the_planted_serial_loop() {
    let doc = parse(run_analyze_json().trim()).unwrap();
    let report = doc.get("report").unwrap();
    let causes = report.get("root_causes").unwrap().as_array().unwrap();
    assert!(!causes.is_empty());
    let top = &causes[0];
    let location = top.get("location").unwrap().as_str().unwrap();
    assert!(
        location.ends_with("golden_json_quickstart.mmpi:9"),
        "top root cause at {location}"
    );
    assert_eq!(top.get("kind").unwrap().as_str(), Some("Loop"));
    let imbalance = top.get("time_imbalance").unwrap().as_f64().unwrap();
    assert!(
        (imbalance - 32.0).abs() < 1e-6,
        "rank-0 serial loop: expected ~32x imbalance, got {imbalance}"
    );
}

// ----- second snapshot: the LU app (pipelined wavefront sweeps, a -----
// ----- p2p-heavy workload unlike quickstart's collective pattern) -----

fn lu_tmp_path() -> std::path::PathBuf {
    std::env::temp_dir().join("golden_json_lu.mmpi")
}

const LU_SCALES: [usize; 3] = [4, 8, 16];

/// One shared CLI run over the LU app's rendered source.
fn run_analyze_json_lu() -> &'static str {
    static OUTPUT: OnceLock<String> = OnceLock::new();
    OUTPUT.get_or_init(|| {
        let app = scalana_apps::by_name("LU").expect("LU app exists");
        let path = lu_tmp_path();
        std::fs::write(&path, app.source()).unwrap();
        let out = Command::new(env!("CARGO_BIN_EXE_scalana"))
            .args([
                "analyze",
                path.to_str().unwrap(),
                "--scales",
                "4,8,16",
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "analyze --json failed on LU: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("output is UTF-8")
    })
}

#[test]
fn lu_json_document_has_every_promised_section() {
    let doc = parse(run_analyze_json_lu().trim()).unwrap();
    for key in ["psg", "runs", "speedup", "report", "detect_seconds"] {
        assert!(doc.get(key).is_some(), "missing `{key}`");
    }
    let runs = doc.get("runs").unwrap().as_array().unwrap();
    assert_eq!(runs.len(), LU_SCALES.len());
    for (run, &nprocs) in runs.iter().zip(&LU_SCALES) {
        assert_eq!(run.get("nprocs").unwrap().as_i64(), Some(nprocs as i64));
        assert!(run.get("total_time").unwrap().as_f64().unwrap() > 0.0);
    }
}

#[test]
fn lu_report_and_runs_bytes_match_a_direct_pipeline_run() {
    // Pins that the CLI/service serialization path and the library
    // pipeline agree byte-for-byte on a second app — a simulator
    // hot-path change that altered timing, matching order, or report
    // content would diverge here even if the quickstart snapshot
    // happened to survive it.
    let stdout = run_analyze_json_lu();
    let doc = parse(stdout.trim()).unwrap();

    let config = ScalAnaConfig::default();
    let path = lu_tmp_path();
    let source = std::fs::read_to_string(&path).unwrap();
    let program = parse_program(path.to_str().unwrap(), &source).unwrap();
    let analysis = pipeline::analyze(&program, &LU_SCALES, &config).unwrap();

    assert_eq!(
        doc.get("report").unwrap().render(),
        report_to_json(&analysis.report).render(),
        "CLI report bytes diverge from the library serialization on LU"
    );
    assert_eq!(
        doc.get("runs").unwrap().render(),
        Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()).render(),
        "CLI run summaries diverge from the library serialization on LU"
    );
}

#[test]
fn report_and_runs_bytes_match_a_direct_pipeline_run() {
    let stdout = run_analyze_json();
    let doc = parse(stdout.trim()).unwrap();

    // Same config the CLI used (only --top differs from defaults).
    let mut config = ScalAnaConfig::default();
    config.detect.top_k = 3;
    let path = tmp_path();
    let program = parse_program(path.to_str().unwrap(), QUICKSTART).unwrap();
    let analysis = pipeline::analyze(&program, &SCALES, &config).unwrap();

    assert_eq!(
        doc.get("report").unwrap().render(),
        report_to_json(&analysis.report).render(),
        "CLI report bytes diverge from the library serialization"
    );
    assert_eq!(
        doc.get("runs").unwrap().render(),
        Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()).render(),
        "CLI run summaries diverge from the library serialization"
    );
}
