//! Observability end-to-end: the `/v1/metrics` exposition shape, the
//! per-job trace timeline, and their agreement with `/v1/stats`.
//!
//! The contract under test:
//!
//! - `/v1/metrics` renders deterministically (family set and order are
//!   pinned) and its mirrored cache counters are computed from the same
//!   atomics `/v1/stats` reads — the two can never disagree;
//! - a terminal job's trace tiles the whole submit→terminal interval
//!   (top-level durations sum to `total_ns`), and its per-scale
//!   `cache` tags match the `/v1/stats` deltas exactly;
//! - two structurally identical submissions produce identical span
//!   trees, with the predicted `miss`→`hit` tag flips.

use scalana_api::{paths, ApiError, ErrorCode, TraceResponse, TraceSpan};
use scalana_service::client::Conn;
use scalana_service::json::Json;
use scalana_service::{client, Server, ServiceConfig};
use std::time::{Duration, Instant};

fn boot(workers: usize) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 32,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Unique programs per test so cache interactions are test-local.
fn program_text(work: u64) -> String {
    format!(
        "param WORK = {work};\n\
         fn main() {{\n\
             for it in 0 .. 3 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 6, ins = WORK / 6); }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
}

fn submit_body(text: &str, scales: &[usize], abnorm_thd: Option<f64>) -> String {
    let mut fields = vec![
        ("source", text.into()),
        ("name", "obs.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ];
    if let Some(thd) = abnorm_thd {
        fields.push(("abnorm_thd", thd.into()));
    }
    Json::obj(fields).render()
}

/// Submit + long-poll to terminal; returns the job key.
fn run_job(conn: &mut Conn, body: &str) -> String {
    let ack = conn.request_json("POST", paths::JOBS, body).unwrap();
    let key = ack.get("job").and_then(Json::as_str).unwrap().to_string();
    let last = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(last.get("status").and_then(Json::as_str), Some("done"));
    key
}

fn fetch_trace(conn: &mut Conn, key: &str) -> TraceResponse {
    let doc = conn
        .request_json("GET", &paths::job_trace(key), "")
        .unwrap();
    TraceResponse::from_json(&doc).expect("trace document decodes")
}

fn stats_doc(conn: &mut Conn) -> Json {
    conn.request_json("GET", paths::STATS, "").unwrap()
}

fn stat(doc: &Json, key: &str) -> i64 {
    doc.get(key).and_then(Json::as_i64).unwrap()
}

/// Exposition text → `(sample name, value)` pairs.
fn parse_exposition(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            Some((name.to_string(), value.parse::<u64>().ok()?))
        })
        .collect()
}

fn sample(samples: &[(String, u64)], name: &str) -> u64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no sample `{name}`"))
        .1
}

#[test]
fn metrics_exposition_has_the_golden_shape() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();
    let response = conn.request_full("GET", paths::METRICS, "").unwrap();
    assert_eq!(response.code, 200);
    assert!(
        response
            .header("Content-Type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "exposition is text, not JSON"
    );
    let text = String::from_utf8(response.body).unwrap();

    // Golden family list: names and order are the contract (sorted,
    // deterministic — scraping tools and the smoke script rely on it).
    let families: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .map(|l| l.split_whitespace().nth(2).unwrap())
        .collect();
    assert_eq!(
        families,
        vec![
            "scalana_accept_errors_total",
            "scalana_build_info",
            "scalana_cache_psg_hits_total",
            "scalana_cache_psg_misses_total",
            "scalana_cache_result_evicted_total",
            "scalana_cache_result_hits_total",
            "scalana_cache_result_misses_total",
            "scalana_cache_scale_evicted_total",
            "scalana_cache_scale_hits_total",
            "scalana_cache_scale_misses_total",
            "scalana_connections",
            "scalana_epoll_registered_fds",
            "scalana_http_requests_total",
            "scalana_job_ns",
            "scalana_jobs_completed_total",
            "scalana_jobs_executed_total",
            "scalana_jobs_failed_total",
            "scalana_jobs_rejected_total",
            "scalana_jobs_submitted_total",
            "scalana_longpoll_parked",
            "scalana_longpoll_parks_total",
            "scalana_longpoll_wakes_total",
            "scalana_peer_backlog",
            "scalana_peer_breaker_open",
            "scalana_peer_fetch_ns",
            "scalana_peer_hits_total",
            "scalana_peer_requests_total",
            "scalana_peer_ring_size",
            "scalana_profiles_cached",
            "scalana_programs_indexed",
            "scalana_queue_depth",
            "scalana_readiness_round_ns",
            "scalana_results_cached",
            "scalana_sim_events_total",
            "scalana_sim_inflight_ops_peak",
            "scalana_sim_run_ns",
            "scalana_sim_runs_total",
            "scalana_stage_assemble_ns",
            "scalana_stage_http_read_ns",
            "scalana_stage_parse_ns",
            "scalana_stage_queue_wait_ns",
            "scalana_stage_render_ns",
            "scalana_stage_resolve_ns",
            "scalana_stage_simulate_ns",
            "scalana_stage_write_ns",
            "scalana_store_bytes",
            "scalana_store_degraded",
            "scalana_store_entries",
            "scalana_store_evicted_total",
            "scalana_store_loaded_total",
            "scalana_store_quarantined_total",
            "scalana_store_skipped_total",
            "scalana_store_write_errors_total",
            "scalana_store_writes_total",
            "scalana_uptime_ms",
            "scalana_workers",
        ],
    );

    // A standalone daemon is a single-member ring with no peer traffic.
    let samples = parse_exposition(&text);
    assert_eq!(sample(&samples, "scalana_peer_ring_size"), 1);
    assert_eq!(sample(&samples, "scalana_peer_backlog"), 0);
    assert_eq!(sample(&samples, "scalana_peer_breaker_open"), 0);

    // Build info carries the crate version as a label, value 1.
    let version = env!("CARGO_PKG_VERSION");
    assert!(
        text.contains(&format!("scalana_build_info{{version=\"{version}\"}} 1")),
        "build info line present"
    );
    // Histograms render as summaries: quantiles + _max/_count/_sum.
    for suffix in [
        "{quantile=\"0.5\"}",
        "{quantile=\"0.9\"}",
        "{quantile=\"0.99\"}",
        "_max",
        "_count",
        "_sum",
    ] {
        assert!(
            text.contains(&format!("scalana_stage_simulate_ns{suffix} ")),
            "summary sample `{suffix}` present"
        );
    }
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn metrics_cache_counters_always_agree_with_stats() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let text = program_text(701_000);
    run_job(&mut conn, &submit_body(&text, &[2, 4], None));
    run_job(&mut conn, &submit_body(&text, &[2, 4, 8], None));

    let stats = stats_doc(&mut conn);
    let (code, exposition) = conn.request("GET", paths::METRICS, "").unwrap();
    assert_eq!(code, 200);
    let samples = parse_exposition(&exposition);

    // Mirrored families render from the same atomics `/stats` reads;
    // no job ran between the two requests, so equality is exact.
    for (family, stat_key) in [
        ("scalana_cache_result_hits_total", "cache_hits"),
        ("scalana_cache_result_misses_total", "cache_misses"),
        ("scalana_cache_result_evicted_total", "evicted"),
        ("scalana_cache_scale_hits_total", "scale_hits"),
        ("scalana_cache_scale_misses_total", "scale_misses"),
        ("scalana_cache_scale_evicted_total", "scale_evicted"),
        ("scalana_cache_psg_hits_total", "psg_hits"),
        ("scalana_cache_psg_misses_total", "psg_misses"),
        ("scalana_jobs_submitted_total", "submitted"),
        ("scalana_jobs_completed_total", "completed"),
        ("scalana_jobs_failed_total", "failed"),
        ("scalana_workers", "workers"),
    ] {
        assert_eq!(
            sample(&samples, family),
            stat(&stats, stat_key) as u64,
            "{family} must equal stats.{stat_key}"
        );
    }
    // The overlap really happened: 2 hits (scales 2, 4), 3 misses.
    assert_eq!(sample(&samples, "scalana_cache_scale_hits_total"), 2);
    assert_eq!(sample(&samples, "scalana_cache_scale_misses_total"), 3);
    // The simulator hook observed every simulated scale.
    assert_eq!(sample(&samples, "scalana_sim_runs_total"), 3);
    assert!(sample(&samples, "scalana_sim_events_total") > 0);
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn trace_tiles_the_whole_interval_and_tags_match_stats_deltas() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let text = program_text(901_000);

    let before = stats_doc(&mut conn);
    let started = Instant::now();
    let key = run_job(&mut conn, &submit_body(&text, &[2, 4, 8], None));
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    let after = stats_doc(&mut conn);

    let trace = fetch_trace(&mut conn, &key);
    assert_eq!(trace.job, key);

    // Top-level spans tile [arrival, terminal]: submit + queue_wait +
    // run, contiguous, durations summing exactly to total_ns.
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["submit", "queue_wait", "run"]);
    assert_eq!(trace.accounted_ns(), trace.total_ns, "spans tile exactly");
    let mut cursor = 0;
    for span in &trace.spans {
        assert_eq!(span.start_ns, cursor, "spans are contiguous");
        cursor += span.duration_ns;
    }

    // End-to-end accounting: the trace covers the interval the client
    // observed, minus client-side overhead (network round trips, JSON).
    // The long-poll answers at the terminal transition, so the gap is
    // small; 10% + a fixed floor keeps slow CI machines honest.
    assert!(
        trace.total_ns <= elapsed_ns,
        "trace cannot exceed wall time"
    );
    let slack = (elapsed_ns / 10).max(50_000_000);
    assert!(
        elapsed_ns - trace.total_ns <= slack,
        "unaccounted time {}ns exceeds slack {}ns (total {}ns, elapsed {}ns)",
        elapsed_ns - trace.total_ns,
        slack,
        trace.total_ns,
        elapsed_ns
    );

    // Per-scale cache verdicts match the /stats deltas *exactly*: a
    // cold job over three scales is three misses, zero hits.
    let scale_spans: Vec<&TraceSpan> = trace
        .flatten()
        .into_iter()
        .filter(|s| s.name == "scale")
        .collect();
    assert_eq!(scale_spans.len(), 3);
    let hits = scale_spans
        .iter()
        .filter(|s| s.tag("cache") == Some("hit"))
        .count() as i64;
    let misses = scale_spans
        .iter()
        .filter(|s| s.tag("cache") == Some("miss"))
        .count() as i64;
    assert_eq!(
        hits,
        stat(&after, "scale_hits") - stat(&before, "scale_hits"),
        "hit tags match the stats delta"
    );
    assert_eq!(
        misses,
        stat(&after, "scale_misses") - stat(&before, "scale_misses"),
        "miss tags match the stats delta"
    );
    // Scale spans carry their process count, ascending by construction
    // of the canonical child order.
    let nprocs: Vec<&str> = scale_spans
        .iter()
        .map(|s| s.tag("nprocs").unwrap())
        .collect();
    assert_eq!(nprocs, ["2", "4", "8"]);
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn identical_submissions_trace_identically_modulo_cache_verdicts() {
    let addr = boot(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let text = program_text(811_000);

    // Same program + scales, different detection threshold: a new job
    // key (detection is part of the job identity) over the *same*
    // per-scale profile keys (detection does not influence profiling) —
    // the second job's every scale hits the cache.
    let cold = run_job(&mut conn, &submit_body(&text, &[2, 4], None));
    let warm = run_job(&mut conn, &submit_body(&text, &[2, 4], Some(1.7)));
    assert_ne!(cold, warm);

    let trace_cold = fetch_trace(&mut conn, &cold);
    let trace_warm = fetch_trace(&mut conn, &warm);

    // Skeletons (timings erased) are identical once the predicted
    // verdict flips are applied: every cold `miss` became a warm `hit`.
    fn normalize(span: &TraceSpan) -> TraceSpan {
        let mut skeleton = span.skeleton();
        fn flip(span: &mut TraceSpan) {
            for tag in &mut span.tags {
                if tag.0 == "cache" {
                    tag.1 = "hit".to_string();
                }
                if tag.0 == "psg" {
                    tag.1 = "hit".to_string();
                }
            }
            for child in &mut span.children {
                flip(child);
            }
        }
        flip(&mut skeleton);
        skeleton
    }
    let cold_skeleton: Vec<TraceSpan> = trace_cold.spans.iter().map(normalize).collect();
    let warm_skeleton: Vec<TraceSpan> = trace_warm.spans.iter().map(normalize).collect();
    assert_eq!(
        cold_skeleton, warm_skeleton,
        "same span tree, same tags (after verdict normalization)"
    );

    // And the verdicts themselves are as predicted, not just equal.
    let verdicts = |trace: &TraceResponse| -> Vec<String> {
        trace
            .flatten()
            .into_iter()
            .filter(|s| s.name == "scale")
            .map(|s| s.tag("cache").unwrap().to_string())
            .collect()
    };
    assert_eq!(verdicts(&trace_cold), ["miss", "miss"]);
    assert_eq!(verdicts(&trace_warm), ["hit", "hit"]);
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn trace_of_unknown_or_pending_jobs_answers_structured_errors() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();

    let (code, body) = conn
        .request("GET", &paths::job_trace("doesnotexist"), "")
        .unwrap();
    assert_eq!(code, 404);
    let error = ApiError::from_body(&body).unwrap();
    assert_eq!(error.code, ErrorCode::UnknownJob);

    // A job that cannot have finished yet: its trace is pending, the
    // error is retryable, and the response carries `Retry-After`.
    let ack = conn
        .request_json(
            "POST",
            paths::JOBS,
            &submit_body(&program_text(5_000_000), &[2, 4, 8, 16], None),
        )
        .unwrap();
    let key = ack.get("job").and_then(Json::as_str).unwrap().to_string();
    let response = conn
        .request_full("GET", &paths::job_trace(&key), "")
        .unwrap();
    if response.code != 200 {
        let body = String::from_utf8(response.body.clone()).unwrap();
        let error = ApiError::from_body(&body).unwrap();
        assert_eq!(error.code, ErrorCode::JobPending);
        assert!(error.retryable);
        assert_eq!(response.header("Retry-After"), Some("1"));
    }
    let _ = conn.wait_for_job(&key, Duration::from_secs(120));
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn healthz_and_stats_report_version_and_uptime() {
    let addr = boot(1);
    let mut conn = Conn::connect(&addr).unwrap();

    let health = conn.request_json("GET", paths::HEALTHZ, "").unwrap();
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_ms").and_then(Json::as_i64).is_some());

    let stats = stats_doc(&mut conn);
    assert_eq!(
        stats.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let uptime = stat(&stats, "uptime_ms");
    assert!(uptime >= 0);
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}
