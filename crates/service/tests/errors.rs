//! The malformed-request matrix, table-driven: every way a request can
//! be wrong is pinned to its structured error `code` (and therefore its
//! HTTP status — [`ErrorCode::http_status`] is part of the contract)
//! and to its `retryable` flag.
//!
//! One daemon serves the whole table; none of these requests register
//! any work, so the rows are independent.

use scalana_api::{paths, ApiError, ErrorCode};
use scalana_service::client::{self, Conn};
use scalana_service::{Server, ServiceConfig};

fn boot() -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());
    addr
}

#[test]
fn malformed_requests_answer_their_pinned_error_codes() {
    let addr = boot();
    let mut conn = Conn::connect(&addr).unwrap();

    #[rustfmt::skip]
    let table: &[(&str, &str, &str, u16, ErrorCode)] = &[
        // -- body problems on submit ------------------------------------
        ("POST", "/v1/jobs", "not json",
            400, ErrorCode::BadJson),
        ("POST", "/v1/jobs", "{}",
            400, ErrorCode::BadRequest),
        ("POST", "/v1/jobs", r#"{"app":"CG","wat":1}"#,
            400, ErrorCode::UnknownField),
        ("POST", "/v1/jobs", r#"{"app":"CG","source":"x"}"#,
            400, ErrorCode::BadRequest),
        ("POST", "/v1/jobs", r#"{"app":"NOPE","scales":[2]}"#,
            400, ErrorCode::UnknownApp),
        ("POST", "/v1/jobs", r#"{"app":"CG","scales":[8,4]}"#,
            400, ErrorCode::BadRequest),
        ("POST", "/v1/jobs", r#"{"app":"CG","scales":[0]}"#,
            400, ErrorCode::BadRequest),
        ("POST", "/v1/jobs", r#"{"program_hash":"ffffffffffffffff"}"#,
            404, ErrorCode::UnknownProgramHash),
        ("POST", "/v1/jobs", "[]",
            400, ErrorCode::BadRequest),
        // -- version prefix ---------------------------------------------
        ("GET", "/v2/stats", "",
            400, ErrorCode::UnsupportedVersion),
        ("POST", "/v7/jobs", r#"{"app":"CG"}"#,
            400, ErrorCode::UnsupportedVersion),
        // -- paths and methods ------------------------------------------
        ("GET", "/v1/nope", "",
            404, ErrorCode::NotFound),
        ("GET", "/nope", "",
            404, ErrorCode::NotFound),
        ("DELETE", "/v1/jobs/abc", "",
            405, ErrorCode::MethodNotAllowed),
        // -- job lookups ------------------------------------------------
        ("GET", "/v1/jobs/doesnotexist", "",
            404, ErrorCode::UnknownJob),
        ("GET", "/v1/jobs/doesnotexist/result", "",
            404, ErrorCode::UnknownJob),
        ("GET", "/v1/jobs/doesnotexist/wait?timeout_ms=10", "",
            404, ErrorCode::UnknownJob),
        ("GET", "/v1/jobs/doesnotexist/profile/4", "",
            404, ErrorCode::UnknownJob),
        ("GET", "/v1/jobs/doesnotexist/profile/x", "",
            400, ErrorCode::BadRequest),
        // -- query problems ---------------------------------------------
        ("GET", "/v1/jobs?state=bogus", "",
            400, ErrorCode::BadRequest),
        ("GET", "/v1/jobs?limit=0", "",
            400, ErrorCode::BadRequest),
        ("GET", "/v1/jobs?wat=1", "",
            400, ErrorCode::UnknownField),
        ("GET", "/v1/jobs/abc/wait?timeout_ms=-1", "",
            400, ErrorCode::BadRequest),
        ("GET", "/v1/jobs/abc/wait?wat=1", "",
            400, ErrorCode::UnknownField),
        // -- diff -------------------------------------------------------
        ("POST", "/v1/diff", "not json",
            400, ErrorCode::BadJson),
        ("POST", "/v1/diff", r#"{"a":{"app":"CG"}}"#,
            400, ErrorCode::BadRequest),
        ("POST", "/v1/diff", r#"{"a":{"app":"CG"},"b":{"app":"CG"},"c":1}"#,
            400, ErrorCode::UnknownField),
        ("POST", "/v1/diff", r#"{"a":{"app":"CG","wat":1},"b":{"app":"CG"}}"#,
            400, ErrorCode::UnknownField),
        ("POST", "/v1/diff", r#"{"a":{"app":"NOPE","scales":[2]},"b":{"app":"CG","scales":[2]}}"#,
            400, ErrorCode::UnknownApp),
        // -- store endpoints on a memory-only daemon --------------------
        ("GET", "/v1/store", "",
            404, ErrorCode::NotFound),
        ("POST", "/v1/store/gc", "",
            404, ErrorCode::NotFound),
        ("DELETE", "/v1/store", "",
            405, ErrorCode::MethodNotAllowed),
    ];

    for &(method, target, body, expected_status, expected_code) in table {
        let (code, text) = conn.request(method, target, body).unwrap();
        assert_eq!(code, expected_status, "{method} {target} {body} -> {text}");
        let error = ApiError::from_body(&text)
            .unwrap_or_else(|| panic!("{method} {target}: unstructured error body {text}"));
        assert_eq!(
            error.code, expected_code,
            "{method} {target} {body} -> {text}"
        );
        assert_eq!(
            error.retryable,
            expected_code.retryable(),
            "{method} {target}: retryable flag must follow the code"
        );
        assert!(
            !error.message.is_empty(),
            "{method} {target}: empty message"
        );
    }

    // Batched submissions report per-item errors in place, with the
    // same structured shape, without voiding their siblings.
    let batch = r#"[{"app":"CG","scales":[2]},{"app":"NOPE"},{"wat":1}]"#;
    let (code, text) = conn.request("POST", "/v1/jobs", batch).unwrap();
    assert_eq!(code, 200, "{text}");
    let doc = scalana_service::json::parse(&text).unwrap();
    let items = doc.as_array().unwrap();
    assert_eq!(items.len(), 3);
    assert!(items[0].get("job").is_some(), "good item acknowledged");
    assert_eq!(
        ApiError::from_json(&items[1]).unwrap().code,
        ErrorCode::UnknownApp
    );
    assert_eq!(
        ApiError::from_json(&items[2]).unwrap().code,
        ErrorCode::UnknownField
    );

    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

#[test]
fn overloaded_daemon_drains_the_request_before_shedding() {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        max_connections: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());

    // Occupy the only serving slot. The request (not just the connect)
    // matters: it proves the connection is registered, not still in the
    // accept backlog.
    let mut occupier = Conn::connect(&addr).unwrap();
    let (code, _) = occupier.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(code, 200);

    // The next connection is over the cap. The daemon must *drain* its
    // request before answering: a 503 written over unread request bytes
    // makes the kernel reset the connection, and the client reads
    // ECONNRESET instead of the structured error this asserts on.
    let mut shed = Conn::connect(&addr).unwrap();
    let response = shed
        .request_full("POST", "/v1/jobs", r#"{"app":"CG","scales":[2]}"#)
        .unwrap();
    assert_eq!(response.code, 503);
    assert!(
        response.header("Retry-After").is_some(),
        "shed responses advertise when to retry"
    );
    let text = String::from_utf8(response.body).unwrap();
    let error = ApiError::from_body(&text).expect("shed response carries a structured error");
    assert_eq!(error.code, ErrorCode::TooManyConnections);
    assert!(error.retryable, "shedding is transient, so retryable");

    let _ = occupier.request("POST", paths::SHUTDOWN, "");
}
