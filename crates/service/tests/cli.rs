//! Integration tests for the `scalana` command-line tool.

use std::io::Write;
use std::process::Command;

fn scalana(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_scalana"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_demo(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "param N = 500_000;\n\
         fn main() {{\n\
             for it in 0 .. 6 {{\n\
                 comp(cycles = N / nprocs, ins = N / nprocs);\n\
                 if rank == 0 {{\n\
                     for s in 0 .. 2 {{ comp(cycles = N / 4, ins = N / 4); }}\n\
                 }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
    .unwrap();
    path
}

#[test]
fn static_command_prints_stats() {
    let path = write_demo("cli_static.mmpi");
    let (stdout, _, ok) = scalana(&["static", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("#VBC="), "{stdout}");
    assert!(stdout.contains("#MPI=2"), "{stdout}");
}

#[test]
fn static_respects_flags() {
    let path = write_demo("cli_flags.mmpi");
    let (with_dot, _, ok) = scalana(&[
        "static",
        path.to_str().unwrap(),
        "--max-loop-depth",
        "0",
        "--dot",
    ]);
    assert!(ok);
    assert!(with_dot.contains("digraph PSG"));
}

#[test]
fn analyze_finds_the_serial_loop() {
    let path = write_demo("cli_analyze.mmpi");
    let (stdout, _, ok) = scalana(&[
        "analyze",
        path.to_str().unwrap(),
        "--scales",
        "2,4,8",
        "--top",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Root causes"), "{stdout}");
    assert!(stdout.contains("Loop"), "{stdout}");
    assert!(stdout.contains("run @"), "{stdout}");
}

#[test]
fn analyze_param_override_changes_runtime() {
    let path = write_demo("cli_param.mmpi");
    let run = |n: &str| {
        let (stdout, _, ok) = scalana(&[
            "analyze",
            path.to_str().unwrap(),
            "--scales",
            "2,4",
            "--param",
            &format!("N={n}"),
        ]);
        assert!(ok);
        stdout
    };
    let small = run("100000");
    let large = run("5000000");
    // Crude but effective: the virtual-seconds figures must differ.
    assert_ne!(small, large);
}

#[test]
fn apps_list_and_run() {
    let (stdout, _, ok) = scalana(&["apps", "--list"]);
    assert!(ok);
    for name in ["BT", "CG", "ZMP", "SST", "NEK"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    let (stdout, _, ok) = scalana(&["apps", "--run", "SST", "--scales", "4,8,16"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("known root cause mirandaCPU.cc:247: FOUND"),
        "{stdout}"
    );
}

#[test]
fn analyze_json_emits_a_parsable_document() {
    let path = write_demo("cli_json.mmpi");
    let (stdout, _, ok) = scalana(&[
        "analyze",
        path.to_str().unwrap(),
        "--scales",
        "2,4",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    let doc = scalana_service::json::parse(stdout.trim()).expect("valid JSON");
    for key in ["psg", "runs", "speedup", "report", "detect_seconds"] {
        assert!(doc.get(key).is_some(), "missing `{key}` in {stdout}");
    }
    assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 2);
}

/// The serve/submit/status/result/shutdown loop, driven exactly the way
/// scripts/service_smoke.sh drives it — through the CLI binary only.
#[test]
fn serve_submit_status_result_shutdown() {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Command, Stdio};

    struct Daemon(Child);
    impl Drop for Daemon {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    let mut child = Command::new(env!("CARGO_BIN_EXE_scalana"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let stdout = child.stdout.take().unwrap();
    let mut daemon = Daemon(child);
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
        .to_string();

    let path = write_demo("cli_service.mmpi");
    let submit = |extra: &[&str]| {
        let mut args = vec![
            "submit",
            "--addr",
            &addr,
            path.to_str().unwrap(),
            "--scales",
            "2,4",
        ];
        args.extend_from_slice(extra);
        scalana(&args)
    };

    // First submission runs; --wait blocks until done.
    let (stdout, stderr, ok) = submit(&["--wait"]);
    assert!(ok, "submit failed: {stdout}{stderr}");
    assert!(stdout.contains("\"cached\":false"), "{stdout}");
    assert!(stdout.contains("\"status\":\"done\""), "{stdout}");
    let job = scalana_service::json::parse(stdout.lines().next().unwrap())
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Second identical submission is a cache hit.
    let (stdout, _, ok) = submit(&[]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"cached\":true"), "{stdout}");
    let program_hash = scalana_service::json::parse(stdout.lines().next().unwrap())
        .unwrap()
        .get("program_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // status <job>, status (stats), and result all answer.
    let (stdout, _, ok) = scalana(&["status", "--addr", &addr, &job]);
    assert!(ok && stdout.contains("\"status\":\"done\""), "{stdout}");
    let (stdout, _, ok) = scalana(&["status", "--addr", &addr]);
    assert!(ok && stdout.contains("\"cache_hits\":1"), "{stdout}");
    assert!(stdout.contains("\"executed\":1"), "{stdout}");
    let (stdout, _, ok) = scalana(&["result", "--addr", &addr, &job]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"report\""), "{stdout}");

    // The program is now addressable by content hash: submit new scales
    // without re-sending the source. The per-scale cache covers 2 and 4,
    // so only scale 8 is simulated.
    let (stdout, stderr, ok) = scalana(&[
        "submit",
        "--addr",
        &addr,
        "--program-hash",
        &program_hash,
        "--scales",
        "2,4,8",
        "--wait",
    ]);
    assert!(ok, "program-hash submit failed: {stdout}{stderr}");
    assert!(stdout.contains("\"status\":\"done\""), "{stdout}");
    let (stdout, _, ok) = scalana(&["status", "--addr", &addr]);
    assert!(ok && stdout.contains("\"scale_hits\":2"), "{stdout}");
    assert!(stdout.contains("\"scale_misses\":3"), "{stdout}");

    // An unknown hash is a clean 404, not a parse error.
    let (_, stderr, ok) = scalana(&[
        "submit",
        "--addr",
        &addr,
        "--program-hash",
        "ffffffffffffffff",
    ]);
    assert!(!ok);
    assert!(stderr.contains("404"), "{stderr}");

    // Graceful shutdown: the daemon exits on its own.
    let (_, _, ok) = scalana(&["shutdown", "--addr", &addr]);
    assert!(ok);
    let status = daemon.0.wait().expect("daemon exits after shutdown");
    assert!(status.success());
}

#[test]
fn bad_usage_reports_errors() {
    let (_, stderr, ok) = scalana(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));

    let (_, stderr, ok) = scalana(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = scalana(&["analyze", "/nonexistent.mmpi"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let path = write_demo("cli_badscales.mmpi");
    let (_, stderr, ok) = scalana(&["analyze", path.to_str().unwrap(), "--scales", "8,4"]);
    assert!(!ok);
    assert!(stderr.contains("ascending"));

    let (_, stderr, ok) = scalana(&["apps", "--run", "NOPE"]);
    assert!(!ok);
    assert!(stderr.contains("unknown app"));

    let (_, stderr, ok) = scalana(&["submit"]);
    assert!(!ok);
    assert!(
        stderr.contains("need exactly one of <file.mmpi>"),
        "{stderr}"
    );

    let (_, stderr, ok) = scalana(&["submit", "--app", "CG", "--program-hash", "abcd"]);
    assert!(!ok);
    assert!(
        stderr.contains("need exactly one of <file.mmpi>"),
        "{stderr}"
    );

    let (_, stderr, ok) = scalana(&["result", "--addr", "127.0.0.1:1"]);
    assert!(!ok);
    assert!(stderr.contains("exactly one JOB"), "{stderr}");

    // Port 1 is never listening: client commands fail with a clear
    // connection error rather than hanging.
    let (_, stderr, ok) = scalana(&["status", "--addr", "127.0.0.1:1"]);
    assert!(!ok);
    assert!(stderr.contains("cannot connect"), "{stderr}");
}
