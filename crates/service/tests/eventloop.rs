//! Event-loop regressions that the request/response test suites cannot
//! see: shutdown promptness on an *idle* daemon, and long-poll waiter
//! capacity beyond the old thread-per-connection cap.

use scalana_api::paths;
use scalana_service::client::{self, Conn};
use scalana_service::json::Json;
use scalana_service::{Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn boot(config: &ServiceConfig) -> (String, mpsc::Receiver<()>) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().to_string();
    let (exited_tx, exited) = mpsc::channel();
    std::thread::spawn(move || {
        let served = server.run();
        let _ = exited_tx.send(());
        served
    });
    (addr, exited)
}

/// The old accept loop only observed the shutdown flag when the *next*
/// connection was accepted, so an idle daemon hung after
/// `POST /v1/shutdown` until `trigger_shutdown`'s throwaway connection
/// poked it. The event loop must exit on its own wake signal: one
/// request carrying the shutdown, then silence.
#[test]
fn idle_daemon_exits_promptly_after_shutdown() {
    let (addr, exited) = boot(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    });

    let (code, _) = client::request(&addr, "POST", paths::SHUTDOWN, "").unwrap();
    assert_eq!(code, 200);
    exited
        .recv_timeout(Duration::from_secs(5))
        .expect("idle daemon must exit promptly after shutdown, with no further traffic");
}

/// Graceful shutdown must flush the store's write-behind queue: every
/// profile and PSG trace a worker enqueued before `POST /v1/shutdown`
/// has to be on disk by the time `Server::run` returns — a clean stop
/// that silently dropped queued writes would cold-start the successor.
#[test]
fn graceful_shutdown_flushes_pending_store_writes() {
    let dir = std::env::temp_dir().join(format!(
        "scalana-eventloop-flush-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, exited) = boot(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServiceConfig::default()
    });
    let mut conn = Conn::connect(&addr).unwrap();
    let body = Json::obj(vec![
        ("app", "CG".into()),
        ("scales", vec![2usize, 4usize].into()),
    ])
    .render();
    let ack = conn.request_json("POST", "/v1/jobs", &body).unwrap();
    let key = ack.get("job").unwrap().as_str().unwrap().to_string();
    let done = conn.wait_for_job(&key, Duration::from_secs(120)).unwrap();
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));

    // Shut down immediately — the write-behind thread may still hold
    // queued entries; run() must drain them before returning.
    let (code, _) = conn.request("POST", paths::SHUTDOWN, "").unwrap();
    assert_eq!(code, 200);
    exited
        .recv_timeout(Duration::from_secs(30))
        .expect("daemon exits after shutdown");

    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("store directory exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().is_ok_and(|t| t.is_file()))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    let profiles = names.iter().filter(|n| n.starts_with("profile-")).count();
    let traces = names.iter().filter(|n| n.starts_with("psg-")).count();
    assert_eq!(
        (profiles, traces),
        (2, 1),
        "2 profile images + 1 PSG trace must be flushed, found {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.ends_with(".tmp")),
        "no torn temp files after graceful shutdown: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--idle-timeout` drives the reactor's idle sweep: a connection that
/// goes silent for longer than the configured window is closed (EOF on
/// the client side), while a shorter silence survives. The default used
/// to be a hardcoded 30 s, which no test could afford to wait out.
#[test]
fn idle_connections_are_swept_after_the_configured_timeout() {
    let (addr, _exited) = boot(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        idle_timeout: Duration::from_secs(1),
        ..ServiceConfig::default()
    });

    // Prove the connection works, then go silent past the window.
    let mut socket = TcpStream::connect(&addr).unwrap();
    let request = "GET /v1/healthz HTTP/1.1\r\nHost: eventloop\r\n\r\n";
    socket.write_all(request.as_bytes()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1024];
    let n = socket.read(&mut buf).unwrap();
    assert!(buf[..n].starts_with(b"HTTP/1.1 200 "));

    // The sweep cadence is coarse; allow a couple of periods.
    let mut eof = Vec::new();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let swept = socket.read_to_end(&mut eof);
    assert!(
        matches!(swept, Ok(0)),
        "idle connection must be closed by the sweep, got {swept:?} ({eof:?})"
    );

    // A fresh connection is still served after the sweep.
    let (code, _) = client::request(&addr, "GET", paths::HEALTHZ, "").unwrap();
    assert_eq!(code, 200);
    let _ = client::request(&addr, "POST", paths::SHUTDOWN, "");
}

/// The motivating bug: every parked long-poll used to hold one of the
/// 256 connection threads, so 256 slow waiters starved every new submit
/// into a 503 shed. Park more waiters than that old cap and prove a
/// fresh submission still lands.
#[test]
fn parked_waiters_beyond_the_old_thread_cap_do_not_starve_submits() {
    // > 256, the retired thread-per-connection MAX_CONNECTIONS.
    const WAITERS: usize = 300;

    let (addr, _exited) = boot(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    let mut control = Conn::connect(&addr).unwrap();

    // One worker, one slow filler: the target job queues behind it and
    // stays pending for the whole parking phase. Sized for seconds of
    // runway even on a fast machine; the test never waits it out (the
    // shutdown below resolves the parked waiters first).
    let filler = "fn main() {\n\
                  \x20   for it in 0 .. 200000 { comp(cycles = 400); barrier(); allreduce(bytes = 8); }\n\
                  }";
    let body = Json::obj(vec![
        ("source", filler.into()),
        ("name", "filler.mmpi".into()),
        ("scales", vec![4usize].into()),
    ])
    .render();
    control.request_json("POST", "/v1/jobs", &body).unwrap();
    let target_body = Json::obj(vec![
        (
            "source",
            "fn main() { comp(cycles = 100); barrier(); }".into(),
        ),
        ("name", "target.mmpi".into()),
        ("scales", vec![2usize].into()),
    ])
    .render();
    let ack = control
        .request_json("POST", "/v1/jobs", &target_body)
        .unwrap();
    let target = ack.get("job").unwrap().as_str().unwrap().to_string();

    // Park the waiters: write each wait request, never read.
    let wait_request =
        format!("GET /v1/jobs/{target}/wait?timeout_ms=25000 HTTP/1.1\r\nHost: eventloop\r\n\r\n");
    let mut waiters: Vec<TcpStream> = (0..WAITERS)
        .map(|_| {
            let mut socket = TcpStream::connect(&addr).unwrap();
            socket.write_all(wait_request.as_bytes()).unwrap();
            socket
        })
        .collect();

    // All of them must actually park (the gauge is exact, not sampled).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = control.request("GET", paths::METRICS, "").unwrap().1;
        let parked = metrics
            .lines()
            .find_map(|l| l.strip_prefix("scalana_longpoll_parked "))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        if parked >= WAITERS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {parked}/{WAITERS} waiters parked (filler finished early, \
             or parked waiters are consuming serving capacity)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The point of the exercise: with every waiter parked, a brand-new
    // submission must still be served, not shed.
    let fresh = Json::obj(vec![
        (
            "source",
            "fn main() { comp(cycles = 50); barrier(); }".into(),
        ),
        ("name", "fresh.mmpi".into()),
        ("scales", vec![2usize].into()),
    ])
    .render();
    let response = control.request_json("POST", "/v1/jobs", &fresh).unwrap();
    assert!(
        response.get("job").is_some(),
        "submit alongside {WAITERS} parked waiters must succeed: {}",
        response.render()
    );

    // Shutdown resolves every parked waiter with its current status —
    // each socket must receive a complete HTTP 200, not a dropped
    // connection.
    let (code, _) = control.request("POST", paths::SHUTDOWN, "").unwrap();
    assert_eq!(code, 200);
    for (i, socket) in waiters.iter_mut().enumerate() {
        socket
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut response = Vec::new();
        socket
            .read_to_end(&mut response)
            .unwrap_or_else(|e| panic!("waiter {i}: daemon dropped the parked wait: {e}"));
        assert!(
            response.starts_with(b"HTTP/1.1 200 "),
            "waiter {i}: parked wait resolved with {:?}",
            String::from_utf8_lossy(&response[..response.len().min(64)])
        );
    }
}
