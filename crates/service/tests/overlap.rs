//! Property test for the per-scale profile cache: *any* split of a
//! scale set into two submissions yields a final report byte-identical
//! to the single cold submission, and `/stats` accounts the per-scale
//! hits and misses exactly.
//!
//! One daemon serves every case (the cache carrying state between
//! submissions is the point); each case uses a unique program, so its
//! cache interactions are fully predicted by the case itself and
//! asserted as `/stats` deltas.

use proptest::prelude::*;
use scalana_core::{pipeline, ScalAnaConfig};
use scalana_lang::parse_program;
use scalana_service::json::Json;
use scalana_service::jsonify::report_to_json;
use scalana_service::{client, Server, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The candidate scale pool. Small on purpose: each case runs real
/// simulations for the subset, the full set, and the local reference.
const POOL: [usize; 4] = [2, 3, 4, 6];

fn daemon_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::bind(&ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            queue_capacity: 32,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        // Runs until the test process exits; shutdown is not needed.
        std::thread::spawn(move || server.run());
        addr
    })
}

/// A unique program per case so cross-case cache hits cannot occur.
fn program_text(case: u64, work: u64) -> String {
    format!(
        "param WORK = {};\n\
         fn main() {{\n\
             for it in 0 .. 3 {{\n\
                 comp(cycles = WORK / nprocs, ins = WORK / nprocs);\n\
                 if rank == 0 {{ comp(cycles = WORK / 6, ins = WORK / 6); }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}",
        100_000 + case * 1_000 + work
    )
}

fn submit(addr: &str, conn: &mut client::Conn, text: &str, scales: &[usize]) -> Json {
    let body = Json::obj(vec![
        ("source", text.into()),
        ("name", "overlap.mmpi".into()),
        ("scales", scales.to_vec().into()),
    ])
    .render();
    let response = conn
        .request_json("POST", "/jobs", &body)
        .unwrap_or_else(|e| panic!("submit to {addr} failed: {e}"));
    let key = response.get("job").unwrap().as_str().unwrap();
    conn.wait_for_job(key, Duration::from_secs(120))
        .unwrap_or_else(|e| panic!("job never finished: {e}"));
    response
}

fn scale_stats(conn: &mut client::Conn) -> (i64, i64) {
    let stats = conn.request_json("GET", "/stats", "").unwrap();
    (
        stats.get("scale_hits").and_then(Json::as_i64).unwrap(),
        stats.get("scale_misses").and_then(Json::as_i64).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Split ⊢ first-part submission, then full-set submission: the
    /// full set's served report and profile images are byte-identical
    /// to a cold local run, and the second submission's per-scale
    /// hits/misses are exactly the overlap/remainder.
    #[test]
    fn any_split_is_byte_identical_to_cold_and_counted(
        subset_mask in 1u8..15,
        extra_mask in 1u8..16,
        work in 0u64..8,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);

        // full = subset ∪ extra (both non-empty, ascending by pool order).
        let pick = |mask: u8| -> Vec<usize> {
            POOL.iter().enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &s)| s)
                .collect()
        };
        let first = pick(subset_mask);
        let full = pick(subset_mask | extra_mask);
        let overlap = first.len() as i64;
        let fresh = (full.len() - first.len()) as i64;

        let addr = daemon_addr();
        let mut conn = client::Conn::connect(addr).unwrap();
        let text = program_text(case, work);

        // First submission: every scale is a miss (unique program).
        let (h0, m0) = scale_stats(&mut conn);
        submit(addr, &mut conn, &text, &first);
        let (h1, m1) = scale_stats(&mut conn);
        prop_assert_eq!(h1 - h0, 0, "first submission cannot hit");
        prop_assert_eq!(m1 - m0, overlap);

        // Second submission (the full set): hits exactly the overlap,
        // misses exactly the genuinely new scales. Two boundary shapes:
        // an identical scale set is answered by the *whole-job* cache
        // and never consults the per-scale cache at all, and a subset
        // that dropped the smallest scale changes the discovery scale —
        // the refined PSG differs, so *nothing* may be reused.
        let whole_job_hit = full == first;
        let same_discovery = first[0] == full[0];
        let (expected_hits, expected_misses) = if whole_job_hit {
            (0, 0)
        } else if same_discovery {
            (overlap, fresh)
        } else {
            (0, full.len() as i64)
        };
        let response = submit(addr, &mut conn, &text, &full);
        let key = response.get("job").unwrap().as_str().unwrap().to_string();
        let (h2, m2) = scale_stats(&mut conn);
        prop_assert_eq!(h2 - h1, expected_hits, "first {:?} full {:?}", first, full);
        prop_assert_eq!(m2 - m1, expected_misses, "first {:?} full {:?}", first, full);

        // Byte-identity against a cold local run of the full set.
        let program = parse_program("overlap.mmpi", &text).unwrap();
        let config = ScalAnaConfig::default();
        let runs = pipeline::profile_runs(&program, &full, &config).unwrap();
        let expected_images: Vec<bytes::Bytes> = runs
            .profiles
            .iter()
            .map(scalana_profile::store::save)
            .collect();
        let expected_report = report_to_json(&pipeline::assemble(runs, &config).report).render();

        let result = conn
            .request_json("GET", &format!("/jobs/{key}/result"), "")
            .unwrap();
        prop_assert_eq!(
            result.get("report").unwrap().render(),
            expected_report,
            "assembled-from-cache report diverges from cold run (first {:?}, full {:?})",
            first,
            full
        );
        for (&nprocs, expected) in full.iter().zip(&expected_images) {
            let (code, image) = conn
                .request_raw("GET", &format!("/jobs/{key}/profile/{nprocs}"), "")
                .unwrap();
            prop_assert_eq!(code, 200);
            prop_assert_eq!(
                &image[..], &expected[..],
                "profile image at {} scale diverges", nprocs
            );
        }
    }
}
