//! Minimal HTTP/1.1 framing over `std::net` streams.
//!
//! The service speaks a deliberately small subset: `Content-Length`
//! bodies only (no chunked encoding), but with real HTTP/1.1
//! **keep-alive**: a connection carries any number of sequential
//! requests (pipelining included — requests are answered strictly in
//! order), and either side can end it with `Connection: close`. Both the
//! server and the bundled client use these helpers, so the two ends
//! agree by construction.
//!
//! Byte budgets are enforced *per request*: each request may pull at
//! most [`MAX_HEAD`] + [`MAX_BODY`] fresh bytes off the socket
//! (responses get the larger [`MAX_RESPONSE_BODY`]), so a peer streaming
//! endless header lines — or endless pipelined garbage — exhausts its
//! allowance instead of the process heap.

use std::io::{self, BufRead, BufReader, Read, Take, Write};

/// Largest accepted request body (1 MiB) — inline programs are small.
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted *response* body (256 MiB). Results and profile
/// images can legitimately dwarf any request — a profile at hundreds of
/// ranks is tens of MiB — so the client's bound is separate from (and
/// far above) the server's request cap.
pub const MAX_RESPONSE_BODY: usize = 256 << 20;

/// Largest accepted head (request/status line + headers, 16 KiB).
pub const MAX_HEAD: usize = 16 << 10;

/// Error message of a declared body over the budget. The server's
/// connection loop matches on it exactly to classify the failure as
/// `body_too_large` (vs. generic `malformed_request`), so it is a
/// named constant rather than a literal that could silently drift.
pub const ERR_BODY_TOO_LARGE: &str = "body too large";

/// A parsed request head plus body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target, e.g. `/jobs/abc/result`.
    pub path: String,
    /// Decoded body.
    pub body: String,
    /// Whether the peer wants the connection kept open afterwards
    /// (HTTP/1.1 defaults to yes, HTTP/1.0 to no, `Connection:`
    /// overrides either way).
    pub keep_alive: bool,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Parsed `Connection`/`Content-Length` headers of one message, plus
/// every header verbatim (the `/v1` protocol carries routing metadata —
/// `Allow`, `Location`, `Deprecation` — that clients and tests inspect).
struct Head {
    content_length: usize,
    /// `Some(true)` = keep-alive, `Some(false)` = close, `None` = unset.
    connection: Option<bool>,
    /// `(name, value)` pairs in wire order.
    headers: Vec<(String, String)>,
}

/// A fully parsed response: status, headers, body, keep-alive.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub code: u16,
    /// Header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

impl HttpResponse {
    /// First header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a sequence of requests (or responses) off one stream, renewing
/// the per-request byte budget between messages.
#[derive(Debug)]
pub struct MessageReader<S: Read> {
    reader: BufReader<Take<S>>,
}

impl<S: Read> MessageReader<S> {
    /// Wrap a stream. No bytes are read until the first message is
    /// requested.
    pub fn new(stream: S) -> MessageReader<S> {
        MessageReader {
            reader: BufReader::new(stream.take(0)),
        }
    }

    /// Grant the next message its byte budget. Bytes already buffered
    /// (a pipelined next request) were paid for by the previous grant.
    fn grant(&mut self, budget: usize) {
        self.reader.get_mut().set_limit(budget as u64);
    }

    /// Read one request. `Ok(None)` on clean end-of-stream (the peer
    /// closed between requests); errors on malformed or truncated input.
    pub fn next_request(&mut self) -> io::Result<Option<Request>> {
        self.grant(MAX_HEAD + MAX_BODY);
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let (method, path, default_keep_alive) = parse_request_line(&line)?;
        let head = read_headers(&mut self.reader, MAX_BODY, line.len())?;
        let body = read_body(&mut self.reader, head.content_length)?;
        let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive: head.connection.unwrap_or(default_keep_alive),
        }))
    }

    /// Read one response: `(status, body, keep_alive)`.
    pub fn next_response(&mut self) -> io::Result<(u16, Vec<u8>, bool)> {
        let response = self.next_response_full()?;
        Ok((response.code, response.body, response.keep_alive))
    }

    /// Read one response with its headers.
    pub fn next_response_full(&mut self) -> io::Result<HttpResponse> {
        self.grant(MAX_HEAD + MAX_RESPONSE_BODY);
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed before response"));
        }
        let code: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("bad status line"))?;
        let head = read_headers(&mut self.reader, MAX_RESPONSE_BODY, line.len())?;
        let body = read_body(&mut self.reader, head.content_length)?;
        Ok(HttpResponse {
            code,
            keep_alive: head.connection.unwrap_or(true),
            headers: head.headers,
            body,
        })
    }
}

/// Parse a request line into `(method, path, default_keep_alive)`.
/// Shared by the blocking [`MessageReader`] and the incremental
/// [`RequestBuffer`] so both ends of the daemon accept exactly the same
/// request grammar.
fn parse_request_line(line: &str) -> io::Result<(String, String, bool)> {
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| invalid("missing request path"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    Ok((method.to_string(), path.to_string(), version == "HTTP/1.1"))
}

/// Incremental request parser for nonblocking connections: bytes are
/// [`fed`](RequestBuffer::feed) in whatever fragments the socket
/// yields, and [`try_next`](RequestBuffer::try_next) hands back each
/// complete request in order (`Ok(None)` = need more bytes).
///
/// It enforces the same per-request budgets as [`MessageReader`] —
/// heads at most [`MAX_HEAD`] bytes, declared bodies at most
/// [`MAX_BODY`] (rejected with [`ERR_BODY_TOO_LARGE`] verbatim, so the
/// server's error classification keeps working) — and accepts the same
/// grammar, because the head is parsed by the same helpers once it is
/// fully buffered. Pipelined requests simply stay in the buffer until
/// their turn.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
}

impl RequestBuffer {
    /// Empty buffer.
    pub fn new() -> RequestBuffer {
        RequestBuffer::default()
    }

    /// Append freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered (a clean point to close at EOF).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Position one past the head's terminating blank line, if the full
    /// head has arrived. The head ends at the first empty line — a bare
    /// `\n` or a `\r\n` — matching the line-based blocking parser.
    fn head_end(&self) -> Option<usize> {
        let buf = &self.buf;
        // A head that opens with its own blank line (empty request
        // line) terminates immediately; the parse then rejects it.
        if buf.starts_with(b"\n") {
            return Some(1);
        }
        if buf.starts_with(b"\r\n") {
            return Some(2);
        }
        let mut i = 0;
        while let Some(rel) = buf[i..].iter().position(|&b| b == b'\n') {
            let after = i + rel + 1;
            if buf[after..].starts_with(b"\n") {
                return Some(after + 1);
            }
            if buf[after..].starts_with(b"\r\n") {
                return Some(after + 2);
            }
            i = after;
        }
        None
    }

    /// Parse the next complete request out of the buffer, if one has
    /// fully arrived. Errors are sticky protocol violations (oversized
    /// head/body, bad framing) — the connection should answer `400` and
    /// close, exactly as with [`MessageReader`] failures.
    pub fn try_next(&mut self) -> io::Result<Option<Request>> {
        let Some(head_len) = self.head_end() else {
            // No terminator yet: any head this prefix could grow into
            // is already over budget once the prefix itself is.
            if self.buf.len() > MAX_HEAD {
                return Err(invalid("header section too large"));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD {
            return Err(invalid("header section too large"));
        }
        // The head is complete, so the line-based helpers parse it from
        // the slice without ever hitting a premature EOF.
        let mut head_slice = &self.buf[..head_len];
        let mut line = String::new();
        head_slice.read_line(&mut line)?;
        let (method, path, default_keep_alive) = parse_request_line(&line)?;
        let head = read_headers(&mut head_slice, MAX_BODY, line.len())?;
        let total = head_len + head.content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = String::from_utf8(self.buf[head_len..total].to_vec())
            .map_err(|_| invalid("body is not UTF-8"))?;
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive: head.connection.unwrap_or(default_keep_alive),
        }))
    }
}

/// Read headers until the blank line, rejecting bodies above `max_body`
/// and heads above [`MAX_HEAD`] (`consumed` counts the already-read
/// request/status line against the head budget).
fn read_headers<R: BufRead>(reader: &mut R, max_body: usize, consumed: usize) -> io::Result<Head> {
    let mut head = Head {
        content_length: 0,
        connection: None,
        headers: Vec::new(),
    };
    let mut head_bytes = consumed;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(invalid("connection closed mid-headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD {
            return Err(invalid("header section too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(head);
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            head.headers.push((name.to_string(), value.to_string()));
            if name.eq_ignore_ascii_case("content-length") {
                head.content_length = value.parse().map_err(|_| invalid("bad Content-Length"))?;
                if head.content_length > max_body {
                    return Err(invalid(ERR_BODY_TOO_LARGE));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    head.connection = Some(false);
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    head.connection = Some(true);
                }
            }
        }
    }
}

fn read_body<R: BufRead>(reader: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Read one request from a one-shot stream (compatibility helper; the
/// server's keep-alive loop uses [`MessageReader`] directly).
pub fn read_request<S: Read>(stream: S) -> io::Result<Request> {
    MessageReader::new(stream)
        .next_request()?
        .ok_or_else(|| invalid("connection closed before request"))
}

/// Standard reason phrases for the codes the service uses.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one complete response and flush. `keep_alive` picks the
/// `Connection:` header — the server echoes the client's wish except
/// when it is about to close (shutdown, protocol error).
///
/// Head and body go out as **one** write: a head segment followed by a
/// tiny body segment would trip the Nagle/delayed-ACK interaction on a
/// keep-alive connection (tens of milliseconds per exchange), which
/// would dwarf every cached-path saving this service exists to provide.
pub fn write_response_conn<S: Write>(
    stream: S,
    code: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_headers(stream, code, content_type, &[], body, keep_alive)
}

/// [`write_response_conn`] with extra response headers (`Allow:` on a
/// 405, `Location:` on a 308, `Deprecation:` on legacy aliases).
pub fn write_response_headers<S: Write>(
    mut stream: S,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut message = Vec::with_capacity(160 + body.len());
    render_response_into(
        &mut message,
        code,
        content_type,
        extra_headers,
        body,
        keep_alive,
    );
    stream.write_all(&message)?;
    stream.flush()
}

/// Render one complete response — head and body contiguous — into
/// `out`. The blocking writer above and the event loop's per-connection
/// output buffer both go through here, so their wire bytes are
/// identical by construction (and a batch of pipelined responses still
/// leaves in one write).
pub fn render_response_into(
    out: &mut Vec<u8>,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) {
    // Writes into a Vec cannot fail.
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        code,
        status_text(code),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// [`write_response_conn`] closing the connection (one-shot paths).
pub fn write_response<S: Write>(
    stream: S,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_conn(stream, code, content_type, body, false)
}

/// Parse a response (client side): returns `(status, body)`.
pub fn read_response<S: Read>(stream: S) -> io::Result<(u16, Vec<u8>)> {
    let (code, body, _keep_alive) = MessageReader::new(stream).next_response()?;
    Ok((code, body))
}

/// Write a request (client side). `keep_alive` picks the `Connection:`
/// header. One write per message, for the same Nagle reason as
/// [`write_response_conn`].
pub fn write_request_conn<S: Write>(
    mut stream: S,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut message = Vec::with_capacity(128 + body.len());
    write!(
        message,
        "{method} {path} HTTP/1.1\r\nHost: scalana\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    message.extend_from_slice(body);
    stream.write_all(&message)?;
    stream.flush()
}

/// [`write_request_conn`] closing after one exchange.
pub fn write_request<S: Write>(stream: S, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    write_request_conn(stream, method, path, body, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/jobs", b"{\"app\":\"CG\"}").unwrap();
        let req = read_request(&wire[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"app\":\"CG\"}");
        assert!(!req.keep_alive, "write_request closes");
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "application/json", b"{\"error\":\"nope\"}").unwrap();
        let (code, body) = read_response(&wire[..]).unwrap();
        assert_eq!(code, 404);
        assert_eq!(body, b"{\"error\":\"nope\"}");
    }

    #[test]
    fn pipelined_requests_parse_in_order_with_renewed_budgets() {
        let mut wire = Vec::new();
        write_request_conn(&mut wire, "GET", "/stats", b"", true).unwrap();
        write_request_conn(&mut wire, "POST", "/jobs", b"{\"app\":\"CG\"}", true).unwrap();
        write_request_conn(&mut wire, "GET", "/healthz", b"", false).unwrap();
        let mut reader = MessageReader::new(&wire[..]);
        let first = reader.next_request().unwrap().unwrap();
        assert_eq!((first.method.as_str(), first.keep_alive), ("GET", true));
        let second = reader.next_request().unwrap().unwrap();
        assert_eq!(second.body, "{\"app\":\"CG\"}");
        assert!(second.keep_alive);
        let third = reader.next_request().unwrap().unwrap();
        assert_eq!(third.path, "/healthz");
        assert!(!third.keep_alive, "explicit close honored");
        assert!(reader.next_request().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn keep_alive_defaults_follow_http_version() {
        let req = read_request(&b"GET /x HTTP/1.1\r\n\r\n"[..]).unwrap();
        assert!(req.keep_alive, "1.1 defaults to keep-alive");
        let req = read_request(&b"GET /x HTTP/1.0\r\n\r\n"[..]).unwrap();
        assert!(!req.keep_alive, "1.0 defaults to close");
        let req = read_request(&b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"[..]).unwrap();
        assert!(req.keep_alive, "header overrides the version default");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let wire = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(wire.as_bytes()).is_err());
        assert!(read_request(&b"NOT-HTTP\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET /x SPDY/3\r\n\r\n"[..]).is_err());
        // Truncated body.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&wire[..]).is_err());
    }

    #[test]
    fn responses_above_the_request_cap_are_readable() {
        // Results / profile images can exceed MAX_BODY; the client's
        // budget is separate.
        let big = vec![b'x'; MAX_BODY + 1];
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/octet-stream", &big).unwrap();
        let (code, body) = read_response(&wire[..]).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body.len(), MAX_BODY + 1);
    }

    #[test]
    fn unbounded_header_streams_are_rejected() {
        // A peer streaming endless headers must hit a bound, not grow
        // the heap until the read timeout.
        let mut wire = b"POST / HTTP/1.1\r\n".to_vec();
        for _ in 0..4096 {
            wire.extend_from_slice(b"X-Spam: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(read_request(&wire[..]).is_err());
    }

    #[test]
    fn budget_renews_per_request_not_per_connection() {
        // Two near-head-limit requests back to back: a per-connection
        // budget would starve the second, a per-request budget admits
        // both and still rejects a single oversized head.
        let filler = "X-Pad: ".to_string() + &"a".repeat(8 << 10) + "\r\n";
        let one = format!("GET /a HTTP/1.1\r\n{filler}\r\n");
        let wire = format!("{one}{one}");
        let mut reader = MessageReader::new(wire.as_bytes());
        assert_eq!(reader.next_request().unwrap().unwrap().path, "/a");
        assert_eq!(reader.next_request().unwrap().unwrap().path, "/a");
    }

    #[test]
    fn extra_headers_are_written_and_read_back() {
        let mut wire = Vec::new();
        write_response_headers(
            &mut wire,
            405,
            "application/json",
            &[("Allow", "GET, POST".to_string())],
            b"{}",
            true,
        )
        .unwrap();
        let response = MessageReader::new(&wire[..]).next_response_full().unwrap();
        assert_eq!(response.code, 405);
        assert_eq!(response.header("allow"), Some("GET, POST"));
        assert_eq!(response.header("ALLOW"), Some("GET, POST"));
        assert!(response.header("location").is_none());
        assert!(response.keep_alive);
        assert_eq!(response.body, b"{}");
    }

    #[test]
    fn headers_are_case_insensitive() {
        let wire = b"POST / HTTP/1.0\r\ncOnTeNt-LeNgTh: 2\r\nX-Other: 1\r\n\r\nok";
        let req = read_request(&wire[..]).unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn request_buffer_parses_across_arbitrary_fragments() {
        let mut wire = Vec::new();
        write_request_conn(&mut wire, "POST", "/jobs", b"{\"app\":\"CG\"}", true).unwrap();
        // Feed one byte at a time: a request must appear exactly once,
        // at the final byte, never early and never corrupted.
        let mut parser = RequestBuffer::new();
        for (i, byte) in wire.iter().enumerate() {
            parser.feed(std::slice::from_ref(byte));
            let parsed = parser.try_next().unwrap();
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "complete request after {} bytes", i + 1);
            } else {
                let req = parsed.expect("request at final byte");
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/jobs");
                assert_eq!(req.body, "{\"app\":\"CG\"}");
                assert!(req.keep_alive);
            }
        }
        assert!(parser.is_empty());
        assert!(parser.try_next().unwrap().is_none());
    }

    #[test]
    fn request_buffer_yields_pipelined_requests_in_order() {
        let mut wire = Vec::new();
        write_request_conn(&mut wire, "GET", "/stats", b"", true).unwrap();
        write_request_conn(&mut wire, "POST", "/jobs", b"{\"app\":\"CG\"}", true).unwrap();
        write_request_conn(&mut wire, "GET", "/healthz", b"", false).unwrap();
        let mut parser = RequestBuffer::new();
        parser.feed(&wire);
        assert_eq!(parser.try_next().unwrap().unwrap().path, "/stats");
        let second = parser.try_next().unwrap().unwrap();
        assert_eq!(second.body, "{\"app\":\"CG\"}");
        let third = parser.try_next().unwrap().unwrap();
        assert_eq!(third.path, "/healthz");
        assert!(!third.keep_alive, "explicit close honored");
        assert!(parser.try_next().unwrap().is_none());
        assert!(parser.is_empty());
    }

    #[test]
    fn request_buffer_enforces_the_message_reader_budgets() {
        // Declared body over budget: the exact ERR_BODY_TOO_LARGE
        // message, so the server's 400 classification holds.
        let mut parser = RequestBuffer::new();
        parser.feed(
            format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        );
        assert_eq!(
            parser.try_next().unwrap_err().to_string(),
            ERR_BODY_TOO_LARGE
        );

        // Endless header stream: rejected once the head budget is
        // exhausted, even though no terminator ever arrives.
        let mut parser = RequestBuffer::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let mut rejected = false;
        for _ in 0..4096 {
            parser.feed(b"X-Spam: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
            if let Err(e) = parser.try_next() {
                assert!(e.to_string().contains("header section too large"), "{e}");
                rejected = true;
                break;
            }
        }
        assert!(rejected, "oversized head must be rejected");

        // A complete head over MAX_HEAD is rejected too.
        let mut parser = RequestBuffer::new();
        let filler = "X-Pad: ".to_string() + &"a".repeat(MAX_HEAD) + "\r\n";
        parser.feed(format!("GET /a HTTP/1.1\r\n{filler}\r\n").as_bytes());
        assert!(parser.try_next().is_err());

        // Two near-limit requests back to back: the budget is per
        // request, exactly like MessageReader's.
        let mut parser = RequestBuffer::new();
        let filler = "X-Pad: ".to_string() + &"a".repeat(8 << 10) + "\r\n";
        let one = format!("GET /a HTTP/1.1\r\n{filler}\r\n");
        parser.feed(format!("{one}{one}").as_bytes());
        assert_eq!(parser.try_next().unwrap().unwrap().path, "/a");
        assert_eq!(parser.try_next().unwrap().unwrap().path, "/a");
    }

    #[test]
    fn request_buffer_rejects_the_same_garbage_as_message_reader() {
        for wire in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"\r\n\r\n"[..],
        ] {
            let mut parser = RequestBuffer::new();
            parser.feed(wire);
            let incremental = parser.try_next().err().map(|e| e.to_string());
            let blocking = read_request(wire).err().map(|e| e.to_string());
            assert_eq!(incremental, blocking, "wire {wire:?}");
            assert!(incremental.is_some(), "wire {wire:?} must be rejected");
        }
    }

    #[test]
    fn render_response_into_matches_the_blocking_writer() {
        let mut written = Vec::new();
        write_response_headers(
            &mut written,
            200,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{\"ok\":true}",
            true,
        )
        .unwrap();
        let mut rendered = Vec::new();
        render_response_into(
            &mut rendered,
            200,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{\"ok\":true}",
            true,
        );
        assert_eq!(written, rendered);
    }
}
