//! Minimal HTTP/1.1 framing over `std::net` streams.
//!
//! The service speaks a deliberately small subset: one request per
//! connection (`Connection: close`), `Content-Length` bodies only, no
//! chunked encoding, no keep-alive. Both the server and the bundled
//! client use these helpers, so the two ends agree by construction.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Largest accepted request body (1 MiB) — inline programs are small.
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted *response* body (256 MiB). Results and profile
/// images can legitimately dwarf any request — a profile at hundreds of
/// ranks is tens of MiB — so the client's bound is separate from (and
/// far above) the server's request cap.
pub const MAX_RESPONSE_BODY: usize = 256 << 20;

/// Largest accepted head (request/status line + headers, 16 KiB). The
/// whole stream is clamped to head + body budget before buffering, so a
/// peer streaming endless header lines exhausts its allowance instead
/// of the process heap.
const MAX_HEAD: usize = 16 << 10;

/// A parsed request (or response) head plus body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target, e.g. `/jobs/abc/result`.
    pub path: String,
    /// Decoded body.
    pub body: String,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one request from a stream.
pub fn read_request<S: Read>(stream: S) -> io::Result<Request> {
    // Hard byte budget: a request can never usefully exceed its head
    // plus the body cap, so clamp the stream itself. Past the budget,
    // reads see EOF and the framing below turns that into an error.
    let mut reader = BufReader::new(stream.take((MAX_HEAD + MAX_BODY) as u64));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| invalid("missing request path"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let content_length = read_headers(&mut reader, MAX_BODY)?;
    let body = read_body(&mut reader, content_length)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Read headers until the blank line; returns `Content-Length` (0 when
/// absent), rejecting bodies above `max_body`. Bounded: at most
/// [`MAX_HEAD`] header bytes and one `read_line` allocation at a time.
fn read_headers<R: BufRead>(reader: &mut R, max_body: usize) -> io::Result<usize> {
    let mut content_length = 0usize;
    let mut head_bytes = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(invalid("connection closed mid-headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD {
            return Err(invalid("header section too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(content_length);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad Content-Length"))?;
                if content_length > max_body {
                    return Err(invalid("body too large"));
                }
            }
        }
    }
}

fn read_body<R: BufRead>(reader: &mut R, len: usize) -> io::Result<String> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))
}

/// Standard reason phrases for the codes the service uses.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response and flush.
pub fn write_response<S: Write>(
    mut stream: S,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Parse a response (client side): returns `(status, body)`. Responses
/// get their own, much larger body budget ([`MAX_RESPONSE_BODY`]):
/// results and profile images legitimately exceed the request cap.
pub fn read_response<S: Read>(stream: S) -> io::Result<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream.take((MAX_HEAD + MAX_RESPONSE_BODY) as u64));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let content_length = read_headers(&mut reader, MAX_RESPONSE_BODY)?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((code, body))
}

/// Write a request (client side).
pub fn write_request<S: Write>(
    mut stream: S,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: scalana\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/jobs", b"{\"app\":\"CG\"}").unwrap();
        let req = read_request(&wire[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"app\":\"CG\"}");
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "application/json", b"{\"error\":\"nope\"}").unwrap();
        let (code, body) = read_response(&wire[..]).unwrap();
        assert_eq!(code, 404);
        assert_eq!(body, b"{\"error\":\"nope\"}");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let wire = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(wire.as_bytes()).is_err());
        assert!(read_request(&b"NOT-HTTP\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET /x SPDY/3\r\n\r\n"[..]).is_err());
        // Truncated body.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&wire[..]).is_err());
    }

    #[test]
    fn responses_above_the_request_cap_are_readable() {
        // Results / profile images can exceed MAX_BODY; the client's
        // budget is separate.
        let big = vec![b'x'; MAX_BODY + 1];
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/octet-stream", &big).unwrap();
        let (code, body) = read_response(&wire[..]).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body.len(), MAX_BODY + 1);
    }

    #[test]
    fn unbounded_header_streams_are_rejected() {
        // A peer streaming endless headers must hit a bound, not grow
        // the heap until the read timeout.
        let mut wire = b"POST / HTTP/1.1\r\n".to_vec();
        for _ in 0..4096 {
            wire.extend_from_slice(b"X-Spam: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(read_request(&wire[..]).is_err());
    }

    #[test]
    fn headers_are_case_insensitive() {
        let wire = b"POST / HTTP/1.0\r\ncOnTeNt-LeNgTh: 2\r\nX-Other: 1\r\n\r\nok";
        let req = read_request(&wire[..]).unwrap();
        assert_eq!(req.body, "ok");
    }
}
