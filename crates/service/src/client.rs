//! Tiny blocking HTTP client for the daemon.
//!
//! Used by the `scalana submit`/`status`/`result` subcommands, the
//! integration tests, and the benches — the same framing code as the
//! server ([`crate::http`]), so both ends agree by construction.

use crate::json::{parse, Json};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One request; returns `(status code, raw body)`.
pub fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, Vec<u8>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    crate::http::write_request(&stream, method, path, body.as_bytes())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    crate::http::read_response(&stream).map_err(|e| format!("response from {addr} failed: {e}"))
}

/// One request with a UTF-8 body.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let (code, bytes) = request_raw(addr, method, path, body)?;
    let text = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
    Ok((code, text))
}

/// One request, parsed as JSON; non-2xx responses become errors carrying
/// the server's `error` message.
pub fn request_json(addr: &str, method: &str, path: &str, body: &str) -> Result<Json, String> {
    let (code, text) = request(addr, method, path, body)?;
    let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
    if !(200..300).contains(&code) {
        let message = doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed");
        return Err(format!("{method} {path}: {code} {message}"));
    }
    Ok(doc)
}

/// Poll `GET /jobs/<key>` until the job leaves the queue/running states
/// or `timeout` elapses. Returns the final status document.
///
/// Polling backs off exponentially (200µs doubling to a 25ms cap): fast
/// jobs — the common cached or small-scale case — are observed within a
/// poll or two of completion instead of having their latency quantized
/// to a fixed sleep interval, while long-running jobs converge to the
/// old 25ms cadence.
pub fn wait_for_job(addr: &str, key: &str, timeout: Duration) -> Result<Json, String> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_micros(200);
    let cap = Duration::from_millis(25);
    loop {
        let doc = request_json(addr, "GET", &format!("/jobs/{key}"), "")?;
        match doc.get("status").and_then(Json::as_str) {
            Some("queued") | Some("running") => {}
            Some(_) => return Ok(doc),
            None => return Err("status response missing `status`".to_string()),
        }
        if Instant::now() >= deadline {
            return Err(format!("job {key} still pending after {timeout:?}"));
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(cap);
    }
}
