//! Tiny blocking HTTP client for the daemon.
//!
//! Used by the `scalana submit`/`status`/`result` subcommands, the
//! integration tests, and the benches — the same framing code as the
//! server ([`crate::http`]), so both ends agree by construction.
//!
//! [`Conn`] is the primary interface: one TCP connection carrying any
//! number of sequential requests (HTTP/1.1 keep-alive), so a
//! submit → poll → result interaction costs one TCP handshake, not one
//! per round trip. The free functions remain as one-shot conveniences.

use crate::http::MessageReader;
use crate::json::{parse, Json};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A persistent client connection to the daemon.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    reader: MessageReader<TcpStream>,
    addr: String,
    /// Cleared when the server announces `Connection: close`.
    alive: bool,
}

impl Conn {
    /// Connect to `addr` with a 60 s read timeout.
    pub fn connect(addr: &str) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        // Small request/response exchanges; don't let Nagle batch them.
        let _ = stream.set_nodelay(true);
        let reader = MessageReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Conn {
            stream,
            reader,
            addr: addr.to_string(),
            alive: true,
        })
    }

    /// The daemon address this connection talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the server has announced it will close the connection.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// One request; returns `(status code, raw body)`. Reuses the
    /// connection; after the server answers `Connection: close`,
    /// further requests fail and the caller should reconnect.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, Vec<u8>), String> {
        if !self.alive {
            return Err(format!(
                "connection to {} was closed by the server",
                self.addr
            ));
        }
        crate::http::write_request_conn(&self.stream, method, path, body.as_bytes(), true)
            .map_err(|e| format!("request to {} failed: {e}", self.addr))?;
        let (code, body, keep_alive) = self
            .reader
            .next_response()
            .map_err(|e| format!("response from {} failed: {e}", self.addr))?;
        self.alive = keep_alive;
        Ok((code, body))
    }

    /// One request with a UTF-8 body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), String> {
        let (code, bytes) = self.request_raw(method, path, body)?;
        let text = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
        Ok((code, text))
    }

    /// One request, parsed as JSON; non-2xx responses become errors
    /// carrying the server's `error` message.
    pub fn request_json(&mut self, method: &str, path: &str, body: &str) -> Result<Json, String> {
        let (code, text) = self.request(method, path, body)?;
        let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
        if !(200..300).contains(&code) {
            let message = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed");
            return Err(format!("{method} {path}: {code} {message}"));
        }
        Ok(doc)
    }

    /// Poll `GET /jobs/<key>` on this connection until the job leaves
    /// the queued/running states or `timeout` elapses. Returns the final
    /// status document.
    ///
    /// Polling backs off exponentially (200µs doubling to a 25ms cap):
    /// fast jobs — the common cached or small-scale case — are observed
    /// within a poll or two of completion instead of having their
    /// latency quantized to a fixed sleep interval, while long-running
    /// jobs converge to the old 25ms cadence. Every poll rides the same
    /// keep-alive connection: no TCP handshake per round.
    pub fn wait_for_job(&mut self, key: &str, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_micros(200);
        let cap = Duration::from_millis(25);
        loop {
            let doc = self.request_json("GET", &format!("/jobs/{key}"), "")?;
            match doc.get("status").and_then(Json::as_str) {
                Some("queued") | Some("running") => {}
                Some(_) => return Ok(doc),
                None => return Err("status response missing `status`".to_string()),
            }
            if Instant::now() >= deadline {
                return Err(format!("job {key} still pending after {timeout:?}"));
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cap);
        }
    }
}

/// One request on a fresh connection; returns `(status code, raw body)`.
pub fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, Vec<u8>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    crate::http::write_request(&stream, method, path, body.as_bytes())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    crate::http::read_response(&stream).map_err(|e| format!("response from {addr} failed: {e}"))
}

/// One request with a UTF-8 body.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let (code, bytes) = request_raw(addr, method, path, body)?;
    let text = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
    Ok((code, text))
}

/// One request, parsed as JSON; non-2xx responses become errors carrying
/// the server's `error` message.
pub fn request_json(addr: &str, method: &str, path: &str, body: &str) -> Result<Json, String> {
    let (code, text) = request(addr, method, path, body)?;
    let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
    if !(200..300).contains(&code) {
        let message = doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed");
        return Err(format!("{method} {path}: {code} {message}"));
    }
    Ok(doc)
}

/// Poll `GET /jobs/<key>` until the job leaves the queue/running states
/// or `timeout` elapses, reusing one keep-alive connection for every
/// poll. Returns the final status document.
pub fn wait_for_job(addr: &str, key: &str, timeout: Duration) -> Result<Json, String> {
    Conn::connect(addr)?.wait_for_job(key, timeout)
}
