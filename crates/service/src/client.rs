//! Tiny blocking HTTP client for the daemon.
//!
//! Used by the `scalana submit`/`status`/`result`/`diff` subcommands,
//! the integration tests, and the benches — the same framing code as
//! the server ([`crate::http`]) and the same wire contract
//! ([`scalana_api`]), so both ends agree by construction.
//!
//! [`Conn`] is the primary interface: one TCP connection carrying any
//! number of sequential requests (HTTP/1.1 keep-alive), so a
//! submit → wait → result interaction costs one TCP handshake, not one
//! per round trip. The free functions remain as one-shot conveniences.
//!
//! Waiting for a job uses the server-side long-poll
//! (`GET /v1/jobs/<id>/wait`): the daemon parks the request until the
//! job completes, so the client observes completion at the transition
//! instead of a poll interval later. Against a pre-`/v1` daemon — which
//! answers 404 *without a structured error code* on the wait path — the
//! client falls back to one plain fixed-cadence status poll loop.

use crate::http::{HttpResponse, MessageReader};
use crate::json::{parse, Json};
use scalana_api::{paths, ApiError, ErrorCode, JobState};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cadence of the fallback status poll used against servers that do not
/// serve the long-poll endpoint. One fixed short interval (in place of
/// PR 4's 200µs→25ms exponential backoff, which the long-poll
/// obsoleted): fast jobs on a legacy server are observed within ~1ms of
/// completion, and the poll rides a keep-alive connection either way.
const FALLBACK_POLL: Duration = Duration::from_millis(1);

/// A persistent client connection to the daemon.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    reader: MessageReader<TcpStream>,
    addr: String,
    /// Cleared when the server announces `Connection: close`.
    alive: bool,
}

impl Conn {
    /// Connect to `addr` with a 60 s read timeout.
    pub fn connect(addr: &str) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        Conn::from_stream(stream, addr, Duration::from_secs(60))
    }

    /// Connect with explicit connect/read budgets — the federation peer
    /// pool uses short budgets so one slow peer stalls a job by at most
    /// a bounded interval before the local-simulation fallback engages.
    /// `TcpStream::connect_timeout` wants a resolved address, so `addr`
    /// is resolved first (the first resolution is used).
    pub fn connect_with_timeout(
        addr: &str,
        connect: Duration,
        read: Duration,
    ) -> Result<Conn, String> {
        use std::net::ToSocketAddrs;
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("{addr} resolves to no address"))?;
        let stream = TcpStream::connect_timeout(&resolved, connect)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        Conn::from_stream(stream, addr, read)
    }

    fn from_stream(stream: TcpStream, addr: &str, read: Duration) -> Result<Conn, String> {
        stream
            .set_read_timeout(Some(read))
            .map_err(|e| e.to_string())?;
        // Small request/response exchanges; don't let Nagle batch them.
        let _ = stream.set_nodelay(true);
        let reader = MessageReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Conn {
            stream,
            reader,
            addr: addr.to_string(),
            alive: true,
        })
    }

    /// The daemon address this connection talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the server has announced it will close the connection.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// One request; returns the full response (status, headers, body).
    /// Reuses the connection; after the server answers
    /// `Connection: close`, further requests fail and the caller should
    /// reconnect.
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<HttpResponse, String> {
        if !self.alive {
            return Err(format!(
                "connection to {} was closed by the server",
                self.addr
            ));
        }
        crate::http::write_request_conn(&self.stream, method, path, body.as_bytes(), true)
            .map_err(|e| format!("request to {} failed: {e}", self.addr))?;
        let response = self
            .reader
            .next_response_full()
            .map_err(|e| format!("response from {} failed: {e}", self.addr))?;
        self.alive = response.keep_alive;
        Ok(response)
    }

    /// One request; returns `(status code, raw body)`.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, Vec<u8>), String> {
        let response = self.request_full(method, path, body)?;
        Ok((response.code, response.body))
    }

    /// One request with a UTF-8 body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), String> {
        let (code, bytes) = self.request_raw(method, path, body)?;
        let text = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
        Ok((code, text))
    }

    /// One request, parsed as JSON; non-2xx responses become errors
    /// carrying the server's `error` message.
    pub fn request_json(&mut self, method: &str, path: &str, body: &str) -> Result<Json, String> {
        let (code, text) = self.request(method, path, body)?;
        let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
        if !(200..300).contains(&code) {
            return Err(request_error(method, path, code, &doc));
        }
        Ok(doc)
    }

    /// Wait until the job reaches a terminal state or `timeout`
    /// elapses; returns the final status document.
    ///
    /// Primary path: the server-side long-poll
    /// ([`paths::job_wait`]) — the daemon answers at the completion
    /// transition, so no client-side sleep quantizes the observed
    /// latency, and each round trip covers up to
    /// [`scalana_api::dto::MAX_WAIT_MS`] of waiting. Fallback: a server
    /// that 404s the wait path *without* a structured
    /// [`ErrorCode::UnknownJob`] body predates `/v1`; the client drops
    /// to [`wait_for_job_polling`](Conn::wait_for_job_polling) against
    /// the legacy status path (forward compatibility with old daemons).
    pub fn wait_for_job(&mut self, key: &str, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(format!("job {key} still pending after {timeout:?}"));
            }
            let budget_ms = (remaining.as_millis() as u64).clamp(1, scalana_api::dto::MAX_WAIT_MS);
            let path = paths::job_wait(key, budget_ms);
            let response = self.request_full("GET", &path, "")?;
            let backoff = response
                .header("Retry-After")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_secs);
            let code = response.code;
            let text = String::from_utf8(response.body)
                .map_err(|_| "response is not UTF-8".to_string())?;
            let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
            if (200..300).contains(&code) {
                match doc.get("status").and_then(Json::as_str) {
                    Some(status) if JobState::parse(status).is_some_and(JobState::is_terminal) => {
                        return Ok(doc)
                    }
                    // Non-terminal 200: the server's budget elapsed
                    // first — re-issue with the remaining client budget.
                    Some(_) => continue,
                    None => return Err("status response missing `status`".to_string()),
                }
            }
            if code == 404 {
                match ApiError::from_json(&doc) {
                    // A /v1 server that genuinely does not know the job.
                    Some(error) if error.code == ErrorCode::UnknownJob => {
                        return Err(request_error("GET", &path, code, &doc));
                    }
                    Some(error) => return Err(error.to_string()),
                    // Legacy 404 body — the wait endpoint itself does
                    // not exist on this server; poll instead.
                    None => {
                        return self.wait_for_job_polling(
                            key,
                            deadline.saturating_duration_since(Instant::now()),
                        )
                    }
                }
            }
            // A retryable structured error (`store_degraded` while the
            // daemon runs memory-only, a backpressure shed) is not
            // fatal mid-wait: honor the server's `Retry-After` and
            // re-issue within the remaining budget.
            if ApiError::from_json(&doc).is_some_and(|e| e.retryable) {
                let backoff = backoff.unwrap_or(FALLBACK_POLL);
                std::thread::sleep(backoff.min(deadline.saturating_duration_since(Instant::now())));
                if !self.alive {
                    let addr = self.addr.clone();
                    *self = Conn::connect(&addr)?;
                }
                continue;
            }
            return Err(request_error("GET", &path, code, &doc));
        }
    }

    /// Plain status polling at a fixed `FALLBACK_POLL` cadence against
    /// the *legacy* (unversioned) status path — the compatibility path
    /// for daemons without the long-poll endpoint, and the comparison
    /// baseline for the `wait_longpoll` bench. Every poll rides this
    /// keep-alive connection: no TCP handshake per round.
    ///
    /// A *retryable* structured error mid-poll (backpressure shed, a
    /// transient state) is not fatal: the client honors the server's
    /// `Retry-After` header before the next attempt. Ordinary pending
    /// responses are 200s and keep the fixed cadence — the backoff
    /// only engages when the server explicitly asks for it.
    pub fn wait_for_job_polling(&mut self, key: &str, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        let path = format!("/jobs/{key}");
        loop {
            let response = self.request_full("GET", &path, "")?;
            let backoff = response
                .header("Retry-After")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_secs);
            let code = response.code;
            let text = String::from_utf8(response.body)
                .map_err(|_| "response is not UTF-8".to_string())?;
            let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
            if (200..300).contains(&code) {
                match doc.get("status").and_then(Json::as_str) {
                    Some("queued") | Some("running") => {}
                    Some(_) => return Ok(doc),
                    None => return Err("status response missing `status`".to_string()),
                }
                if Instant::now() >= deadline {
                    return Err(format!("job {key} still pending after {timeout:?}"));
                }
                std::thread::sleep(FALLBACK_POLL);
                continue;
            }
            let retryable = ApiError::from_json(&doc).is_some_and(|e| e.retryable);
            if !retryable || Instant::now() >= deadline {
                return Err(request_error("GET", &path, code, &doc));
            }
            let backoff = backoff.unwrap_or(FALLBACK_POLL);
            std::thread::sleep(backoff.min(deadline.saturating_duration_since(Instant::now())));
            // A shed response announces `Connection: close`; reconnect
            // so the retry actually reaches the server.
            if !self.alive {
                let addr = self.addr.clone();
                *self = Conn::connect(&addr)?;
            }
        }
    }
}

/// Error message for a non-2xx response: prefers the structured
/// message, falls back to the legacy `error` member.
fn request_error(method: &str, path: &str, code: u16, doc: &Json) -> String {
    let message = doc
        .get("error")
        .or_else(|| doc.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("request failed");
    format!("{method} {path}: {code} {message}")
}

/// One request on a fresh connection; returns `(status code, raw body)`.
pub fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, Vec<u8>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    crate::http::write_request(&stream, method, path, body.as_bytes())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    crate::http::read_response(&stream).map_err(|e| format!("response from {addr} failed: {e}"))
}

/// One request with a UTF-8 body.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let (code, bytes) = request_raw(addr, method, path, body)?;
    let text = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
    Ok((code, text))
}

/// One request, parsed as JSON; non-2xx responses become errors carrying
/// the server's `error` message.
pub fn request_json(addr: &str, method: &str, path: &str, body: &str) -> Result<Json, String> {
    let (code, text) = request(addr, method, path, body)?;
    let doc = parse(&text).map_err(|e| format!("bad response JSON: {e}"))?;
    if !(200..300).contains(&code) {
        return Err(request_error(method, path, code, &doc));
    }
    Ok(doc)
}

/// Wait for a job on a fresh keep-alive connection (long-poll, with the
/// legacy-server polling fallback). Returns the final status document.
pub fn wait_for_job(addr: &str, key: &str, timeout: Duration) -> Result<Json, String> {
    Conn::connect(addr)?.wait_for_job(key, timeout)
}
