//! Content-addressed caches for the artifacts *inside* a job.
//!
//! The paper's workflow splits profiling (one run per scale) from
//! detection precisely so profiles are reusable artifacts; the whole-job
//! result cache in [`crate::cache`] cannot exploit that — a submission
//! whose scale set merely overlaps a previous one re-simulates every
//! scale. These caches operate one level down:
//!
//! - [`ProfileCache`] — per-scale profile images (the exact
//!   `scalana_profile::store` bytes `ScalAna-prof` persists), keyed by
//!   FNV(program, profile-relevant config, discovery scale, scale). A
//!   job resolves each requested scale here first and simulates only the
//!   misses, so `submit([2,4,8,16])` after `submit([2,4,8])` runs the
//!   simulator exactly once.
//! - [`PsgCache`] — refined PSGs (static graph + indirect-call
//!   discovery), keyed by FNV(program, PSG options, discovery scale).
//!   Shared by reference; a fully cache-hit job skips even the discovery
//!   run.
//! - [`ProgramIndex`] — previously seen programs by content hash, so
//!   `submit --program-hash` can re-reference an uploaded program
//!   without re-sending its source.
//!
//! All three are sharded ([`crate::sharded`]) and FIFO-bounded; the
//! per-scale hit/miss/eviction counters feed `/stats`.

use crate::job::JobProgram;
use crate::sharded::ShardedMap;
use bytes::Bytes;
use scalana_graph::Psg;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shard count shared by the daemon's content-addressed maps. Keys are
/// uniform content hashes, so this just has to exceed the plausible
/// number of simultaneously contending threads.
pub const CACHE_SHARDS: usize = 16;

/// Per-scale profile image cache with hit/miss accounting.
#[derive(Debug)]
pub struct ProfileCache {
    images: ShardedMap<Bytes>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    /// Mirror of the total entry count, so `/stats` reads it without
    /// touching the shard locks.
    entries: AtomicU64,
}

/// `/stats` snapshot of a [`ProfileCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileCacheStats {
    /// Requested scales answered from the cache (no simulation).
    pub hits: u64,
    /// Requested scales that had to be simulated.
    pub misses: u64,
    /// Images evicted to respect the capacity bound.
    pub evicted: u64,
    /// Images currently held.
    pub entries: usize,
}

impl ProfileCache {
    /// Cache holding at most ~`capacity` profile images (0 = unbounded).
    pub fn new(capacity: usize) -> ProfileCache {
        ProfileCache {
            images: ShardedMap::new(CACHE_SHARDS, capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    /// Look one scale up, counting the outcome. A `Bytes` clone shares
    /// the underlying image allocation.
    pub fn lookup(&self, key: &str) -> Option<Bytes> {
        let image = self.images.get(key);
        match image {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        image
    }

    /// Look one scale up *without* counting the outcome. The federation
    /// serve path uses this: a peer's read-through probe must not skew
    /// this daemon's own hit/miss accounting.
    pub fn peek(&self, key: &str) -> Option<Bytes> {
        self.images.get(key)
    }

    /// Reclassify the most recent miss as a hit: the scale was absent
    /// locally but a federation peer supplied it, so no simulation ran —
    /// which is what the hit/miss split measures.
    pub fn redeem_miss(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// Insert a freshly simulated scale's image.
    pub fn store(&self, key: String, image: Bytes) {
        let outcome = self.images.insert(key, image);
        if outcome.added {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.evicted > 0 {
            self.evicted
                .fetch_add(outcome.evicted as u64, Ordering::Relaxed);
            self.entries
                .fetch_sub(outcome.evicted as u64, Ordering::Relaxed);
        }
    }

    /// Drop an image that failed to deserialize (counts as eviction).
    pub fn invalidate(&self, key: &str) {
        if self.images.remove(key) {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot for `/stats` — all lock-free.
    pub fn stats(&self) -> ProfileCacheStats {
        ProfileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Refined-PSG cache (values shared by `Arc`, never copied).
#[derive(Debug)]
pub struct PsgCache {
    psgs: ShardedMap<Arc<Psg>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PsgCache {
    /// Cache holding at most ~`capacity` refined PSGs (0 = unbounded).
    pub fn new(capacity: usize) -> PsgCache {
        PsgCache {
            psgs: ShardedMap::new(CACHE_SHARDS, capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look a refined PSG up, counting the outcome.
    pub fn lookup(&self, key: &str) -> Option<Arc<Psg>> {
        let psg = self.psgs.get(key);
        match psg {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        psg
    }

    /// Insert a freshly refined PSG.
    pub fn store(&self, key: String, psg: Arc<Psg>) {
        self.psgs.insert(key, psg);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Programs previously seen by the daemon, addressable by content hash.
#[derive(Debug)]
pub struct ProgramIndex {
    programs: ShardedMap<JobProgram>,
    /// Mirror of the entry count (lock-free `/stats`).
    entries: AtomicU64,
}

impl ProgramIndex {
    /// Index retaining at most ~`capacity` programs (0 = unbounded).
    pub fn new(capacity: usize) -> ProgramIndex {
        ProgramIndex {
            programs: ShardedMap::new(CACHE_SHARDS, capacity),
            entries: AtomicU64::new(0),
        }
    }

    /// Remember `program` under its content hash; returns the hash (the
    /// handle echoed back to clients). The key is a content address —
    /// equal hash means equal program — so an already-indexed program is
    /// left untouched: no source-sized clone, no shard write, and its
    /// FIFO eviction position is unchanged (re-insertion would not
    /// refresh it either).
    pub fn remember(&self, program: &JobProgram) -> String {
        let hash = program.content_hash();
        if self.programs.get(&hash).is_none() {
            let outcome = self.programs.insert(hash.clone(), program.clone());
            if outcome.added {
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
            if outcome.evicted > 0 {
                self.entries
                    .fetch_sub(outcome.evicted as u64, Ordering::Relaxed);
            }
        }
        hash
    }

    /// Resolve a previously seen program. `None` means never seen or
    /// since evicted — the server answers 404 and the client must
    /// re-send the source.
    pub fn resolve(&self, hash: &str) -> Option<JobProgram> {
        self.programs.get(hash)
    }

    /// Programs currently indexed (lock-free).
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// No programs indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_cache_counts_hits_misses_evictions() {
        let cache = ProfileCache::new(0);
        assert!(cache.lookup("k").is_none());
        cache.store("k".to_string(), Bytes::from_static(b"image"));
        assert_eq!(cache.lookup("k").as_deref(), Some(&b"image"[..]));
        cache.invalidate("k");
        assert!(cache.lookup("k").is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn program_index_round_trips_by_content_hash() {
        let index = ProgramIndex::new(0);
        let program = JobProgram::Source {
            name: "x.mmpi".to_string(),
            text: "fn main() { }".to_string(),
        };
        let hash = index.remember(&program);
        assert_eq!(hash, program.content_hash());
        let resolved = index.resolve(&hash).expect("indexed");
        assert_eq!(resolved.content_hash(), hash);
        assert!(index.resolve("0000000000000000").is_none());
        assert_eq!(index.len(), 1);
    }
}
